// gpd::service::Engine — admission control, the overload ladder, budgets,
// idle sweep, protocol-error taxonomy, and manifest round-trips.
#include "service/engine.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"

namespace gpd::service {
namespace {

std::vector<std::string> pumpAll(Engine& eng,
                                 const std::vector<std::string>& cmds,
                                 par::Pool* pool = nullptr) {
  for (const std::string& c : cmds) eng.submit(c);
  std::vector<Response> out;
  eng.pump(out, pool);
  std::vector<std::string> payloads;
  payloads.reserve(out.size());
  for (Response& r : out) payloads.push_back(std::move(r.payload));
  return payloads;
}

bool anyStartsWith(const std::vector<std::string>& v, const std::string& p) {
  for (const std::string& s : v) {
    if (s.rfind(p, 0) == 0) return true;
  }
  return false;
}

// A tiny deterministic 2-process session that detects: both processes post
// one concurrent notification.
std::vector<std::string> detectingSession(const std::string& t,
                                          const std::string& s) {
  return {
      "OPEN " + t + " " + s + " 2",
      "EV " + t + " " + s + " 0 0 1 0",
      "EV " + t + " " + s + " 1 0 0 1",
      "END " + t + " " + s + " 0 1",
      "END " + t + " " + s + " 1 1",
  };
}

TEST(Engine, OpenDeliverDetectClose) {
  Engine eng;
  auto out = pumpAll(eng, detectingSession("t0", "s0"));
  EXPECT_TRUE(anyStartsWith(out, "OK OPEN t0 s0"));
  EXPECT_TRUE(anyStartsWith(out, "DETECT t0 s0"));
  out = pumpAll(eng, {"CLOSE t0 s0"});
  ASSERT_TRUE(anyStartsWith(out, "VERDICT t0 s0 detected 1 closed"));
  EXPECT_EQ(eng.openSessions(), 0u);
  EXPECT_EQ(eng.stats().detections, 1u);
}

TEST(Engine, DetectEmittedExactlyOnce) {
  Engine eng;
  pumpAll(eng, detectingSession("t0", "s0"));
  // More traffic after detection must not re-announce.
  const auto out = pumpAll(eng, {"EV t0 s0 0 1 2 0", "QUERY t0 s0"});
  EXPECT_FALSE(anyStartsWith(out, "DETECT"));
  EXPECT_TRUE(anyStartsWith(out, "VERDICT t0 s0 detected 1 open"));
}

TEST(Engine, NotDetectedWhenCausallyOrdered) {
  Engine eng;
  // p1's notification knows a p0 event *beyond* p0's notification
  // (clock [2,1] vs [1,0]): succ(e) ≤ f, so e is eliminated — no witness.
  const auto out = pumpAll(eng, {
                                    "OPEN t0 s0 2",
                                    "EV t0 s0 0 0 1 0",
                                    "EV t0 s0 1 0 2 1",
                                    "END t0 s0 0 1",
                                    "END t0 s0 1 1",
                                    "CLOSE t0 s0",
                                });
  EXPECT_FALSE(anyStartsWith(out, "DETECT"));
  EXPECT_TRUE(anyStartsWith(out, "VERDICT t0 s0 not-detected 0 closed"));
}

TEST(Engine, GapTriggersNackAndRetransmitHeals) {
  EngineOptions opt;
  opt.session.retryTimeout = 4;
  Engine eng(opt);
  auto out = pumpAll(eng, {
                              "OPEN t0 s0 2",
                              "EV t0 s0 0 1 2 0",  // seq 0 missing: gap
                              "TICK t0 s0 8",
                          });
  ASSERT_TRUE(anyStartsWith(out, "NACK t0 s0 0 0 0"));
  out = pumpAll(eng, {"EV t0 s0 0 0 1 0", "END t0 s0 0 2", "END t0 s0 1 0",
                      "CLOSE t0 s0"});
  // Retransmission healed the gap: the verdict is exact, not degraded.
  EXPECT_TRUE(anyStartsWith(out, "VERDICT t0 s0 not-detected 0 closed"));
}

TEST(Engine, ProtocolErrorTaxonomy) {
  Engine eng;
  auto out = pumpAll(eng, {"FROB x y"});
  EXPECT_TRUE(anyStartsWith(out, "ERR bad-command"));
  out = pumpAll(eng, {"OPEN bad!id s 2"});
  EXPECT_TRUE(anyStartsWith(out, "ERR bad-argument"));
  out = pumpAll(eng, {"EV t0 nope 0 0 1 1"});
  EXPECT_TRUE(anyStartsWith(out, "ERR unknown-session"));
  out = pumpAll(eng, {"OPEN t0 s0 2", "OPEN t0 s0 2"});
  EXPECT_TRUE(anyStartsWith(out, "ERR duplicate-session"));
  out = pumpAll(eng, {"EV t0 s0 0 notanumber 1 1"});
  EXPECT_TRUE(anyStartsWith(out, "ERR bad-argument"));
  out = pumpAll(eng, {"EV t0 s0 9 0 1 1"});  // process out of range
  EXPECT_TRUE(anyStartsWith(out, "ERR bad-argument"));
  // Errors never kill the session: it still answers.
  out = pumpAll(eng, {"QUERY t0 s0"});
  EXPECT_TRUE(anyStartsWith(out, "VERDICT t0 s0"));
  EXPECT_GE(eng.stats().protocolErrors, 5u);
}

TEST(Engine, HostileClockPayloadIsQuarantinedNotFatal) {
  Engine eng;
  // Sequence numbers say "first notification" twice with own-component
  // clocks that contradict each other — internally inconsistent input that
  // drives the monitor's invariants. The service must answer with a shed
  // (Degraded) session, not die.
  auto out = pumpAll(eng, {
                              "OPEN t0 s0 2",
                              "EV t0 s0 0 0 5 0",
                              "EV t0 s0 0 1 2 0",  // own clock goes backwards
                          });
  EXPECT_TRUE(anyStartsWith(out, "SHED t0 s0 internal-error") ||
              anyStartsWith(out, "ERR bad-argument"));
  EXPECT_EQ(eng.openSessions(), 0u);
}

TEST(Engine, GlobalAndTenantCaps) {
  EngineOptions opt;
  opt.maxSessions = 2;
  opt.maxSessionsPerTenant = 1;
  Engine eng(opt);
  auto out = pumpAll(eng, {"OPEN a s0 2", "OPEN a s1 2"});
  EXPECT_TRUE(anyStartsWith(out, "OK OPEN a s0"));
  EXPECT_TRUE(anyStartsWith(out, "ERR admission-tenant-cap"));
  out = pumpAll(eng, {"OPEN b s0 2", "OPEN c s0 2"});
  EXPECT_TRUE(anyStartsWith(out, "OK OPEN b s0"));
  EXPECT_TRUE(anyStartsWith(out, "ERR admission-global-cap"));
  EXPECT_EQ(eng.stats().admissionRejects, 2u);
}

TEST(Engine, RateLimitRejectsExcessBytesPerPump) {
  EngineOptions opt;
  opt.tenantRateBytesPerPump = 40;
  Engine eng(opt);
  pumpAll(eng, {"OPEN t0 s0 2"});
  const std::string ev0 = "EV t0 s0 0 0 1 0";   // ~16 bytes
  const std::string ev1 = "EV t0 s0 0 1 2 0";
  const std::string ev2 = "EV t0 s0 0 2 3 0";
  auto out = pumpAll(eng, {ev0, ev1, ev2});
  EXPECT_TRUE(anyStartsWith(out, "ERR rate-limited"));
  EXPECT_GE(eng.stats().rateLimited, 1u);
  // Next pump the meter resets: the refused frame goes through on retry.
  out = pumpAll(eng, {ev2});
  EXPECT_FALSE(anyStartsWith(out, "ERR rate-limited"));
}

TEST(Engine, BudgetExhaustionShedsWithDegradedVerdict) {
  EngineOptions opt;
  opt.sessionMaxCombinations = 3;
  Engine eng(opt);
  auto out = pumpAll(eng, {
                              "OPEN t0 s0 2",
                              "EV t0 s0 0 0 1 0",
                              "EV t0 s0 0 1 2 0",
                              "EV t0 s0 0 2 3 0",
                              "EV t0 s0 0 3 4 0",  // 4th delivery: over budget
                          });
  EXPECT_TRUE(anyStartsWith(out, "SHED t0 s0 budget-"));
  EXPECT_TRUE(anyStartsWith(out, "VERDICT t0 s0 degraded"));
  EXPECT_EQ(eng.openSessions(), 0u);
  EXPECT_EQ(eng.stats().sessionsShedBudget, 1u);
}

TEST(Engine, IdleSessionsAreSwept) {
  EngineOptions opt;
  opt.idleTimeoutPumps = 2;
  Engine eng(opt);
  pumpAll(eng, {"OPEN t0 s0 2"});
  pumpAll(eng, {});  // idle pump 1
  const auto out = pumpAll(eng, {});  // idle pump 2: swept
  EXPECT_TRUE(anyStartsWith(out, "SHED t0 s0 idle"));
  EXPECT_TRUE(anyStartsWith(out, "VERDICT t0 s0"));
  EXPECT_EQ(eng.openSessions(), 0u);
  EXPECT_EQ(eng.stats().sessionsShedIdle, 1u);
}

TEST(Engine, MemoryLadderEscalatesRejectDegradeShed) {
  EngineOptions opt;
  // Tiny watermark: a handful of sessions arms every rung.
  opt.memWatermarkBytes = 4000;
  Engine eng(opt);
  std::vector<std::string> opens;
  for (int i = 0; i < 8; ++i) {
    opens.push_back("OPEN t" + std::to_string(i) + " s 2 prio " +
                    std::to_string(i));
  }
  auto out = pumpAll(eng, opens);
  // Sessions opened until the books crossed the watermark at pump end;
  // the ladder then shed the lowest-priority ones back under 0.85·W.
  EXPECT_TRUE(anyStartsWith(out, "OK OPEN t0 s"));
  EXPECT_TRUE(anyStartsWith(out, "SHED"));
  EXPECT_LT(eng.estimatedBytes(), opt.memWatermarkBytes);
  // Next pump, usage still ≥ 0.70·W rejects new admissions...
  if (eng.memLevel() >= 1) {
    out = pumpAll(eng, {"OPEN fresh s 2"});
    EXPECT_TRUE(anyStartsWith(out, "ERR admission-mem"));
  }
  EXPECT_GT(eng.stats().sessionsShedMem, 0u);
}

TEST(Engine, MemoryLadderDegradesInPlaceBeforeShedding) {
  EngineOptions opt;
  opt.memWatermarkBytes = 16000;
  Engine eng(opt);
  // One heavy tenant: lots of out-of-order traffic parks in reorder
  // buffers, which is exactly the memory the degrade rung reclaims.
  std::vector<std::string> cmds = {"OPEN heavy s 2"};
  for (int i = 0; i < 400; ++i) {
    cmds.push_back("EV heavy s 0 " + std::to_string(i + 1) + " " +
                   std::to_string(i + 2) + " 0");  // seq 0 never sent
  }
  auto out = pumpAll(eng, cmds);
  EXPECT_TRUE(anyStartsWith(out, "DEGRADE heavy s memory") ||
              anyStartsWith(out, "SHED heavy s memory"));
  EXPECT_LT(eng.estimatedBytes(), opt.memWatermarkBytes);
}

TEST(Engine, SyncAnswersAfterFullPumpEffect) {
  Engine eng;
  auto out = pumpAll(eng, {"OPEN t0 s0 2", "SYNC tok-1"});
  // SYNC is last even though it was submitted after OPEN in the same pump.
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), "SYNC tok-1");
  out = pumpAll(eng, {"SYNC bad!token"});
  EXPECT_TRUE(anyStartsWith(out, "ERR bad-argument"));
}

TEST(Engine, CentralCommands) {
  Engine eng;
  auto out = pumpAll(eng, {"STATS"});
  ASSERT_TRUE(anyStartsWith(out, "STATS {"));
  EXPECT_NE(out[0].find("\"pumps\":"), std::string::npos);
  out = pumpAll(eng, {"CHECKPOINT"});
  EXPECT_TRUE(anyStartsWith(out, "OK CHECKPOINT"));
  EXPECT_TRUE(eng.consumeCheckpointRequest());
  EXPECT_FALSE(eng.consumeCheckpointRequest());
  out = pumpAll(eng, {"SHUTDOWN"});
  EXPECT_TRUE(anyStartsWith(out, "OK SHUTDOWN draining"));
  EXPECT_TRUE(eng.shutdownRequested());
}

TEST(Engine, DrainClosesEverythingWithVerdicts) {
  Engine eng;
  pumpAll(eng, {"OPEN t0 s0 2", "OPEN t1 s1 3"});
  std::vector<Response> out;
  eng.drain(out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(eng.openSessions(), 0u);
  EXPECT_EQ(eng.estimatedBytes(), 0u);
}

TEST(Engine, ManifestRoundTripIsByteIdentical) {
  EngineOptions opt;
  opt.sessionMaxCombinations = 100;
  Engine eng(opt);
  pumpAll(eng, detectingSession("t0", "s0"));
  pumpAll(eng, {"OPEN t1 s1 3", "EV t1 s1 0 1 2 0 0", "TICK t1 s1 3"});
  std::ostringstream m1;
  eng.writeManifest(m1);
  std::istringstream in(m1.str());
  auto restored = Engine::restoreManifest(in, opt);
  std::ostringstream m2;
  restored->writeManifest(m2);
  EXPECT_EQ(m1.str(), m2.str());
  EXPECT_EQ(restored->openSessions(), eng.openSessions());
  EXPECT_EQ(restored->estimatedBytes(), eng.estimatedBytes());
  EXPECT_EQ(restored->stats().pumps, eng.stats().pumps);
}

TEST(Engine, RestoredSessionDoesNotReannounceDetect) {
  Engine eng;
  // Detect from the two concurrent notifications alone (no END yet), so the
  // restored session can keep receiving events.
  pumpAll(eng, {"OPEN t0 s0 2", "EV t0 s0 0 0 1 0", "EV t0 s0 1 0 0 1"});
  std::ostringstream m;
  eng.writeManifest(m);
  std::istringstream in(m.str());
  auto restored = Engine::restoreManifest(in, {});
  const auto out = pumpAll(*restored, {"EV t0 s0 0 1 2 0", "QUERY t0 s0"});
  EXPECT_FALSE(anyStartsWith(out, "DETECT"));
  EXPECT_TRUE(anyStartsWith(out, "VERDICT t0 s0 detected"));
}

TEST(Engine, CorruptManifestsThrowInputError) {
  const auto restore = [](const std::string& text) {
    std::istringstream in(text);
    return Engine::restoreManifest(in, {});
  };
  EXPECT_THROW(restore("not-a-manifest 2"), gpd::InputError);
  EXPECT_THROW(restore("gpdd-manifest 99\nkind full"), gpd::InputError);
  // v1 manifests (no kind/epoch headers) are refused, not misread.
  EXPECT_THROW(restore("gpdd-manifest 1\n"
                       "stats 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n"
                       "sessions 0\nmanifest-end\n"),
               gpd::InputError);
  EXPECT_THROW(restore("gpdd-manifest 2\nkind sideways\nepoch 0"),
               gpd::InputError);
  EXPECT_THROW(restore("gpdd-manifest 2\nkind full\nepoch 0\nstats 0 0 0"),
               gpd::InputError);
  EXPECT_THROW(
      restore("gpdd-manifest 2\nkind full\nepoch 0\n"
              "stats 0 0 0 0 0 0 0 0 0 0 0 0 0 0\n"
              "last-sync 0\ntenants 0\n"
              "sessions 1\n"
              "session bad!tenant s 0 2 0 0 0\n"),
      gpd::InputError);
  // A delta can never seed a restore: it needs the full parent.
  Engine fresh;
  const CheckpointCapture full = fresh.captureCheckpoint(false);
  const CheckpointCapture delta = fresh.captureCheckpoint(true);
  ASSERT_TRUE(delta.delta);
  EXPECT_THROW(restore(delta.text), gpd::InputError);
  // Truncated mid-session.
  Engine eng;
  for (const std::string& c : detectingSession("t0", "s0")) eng.submit(c);
  std::vector<Response> out;
  eng.pump(out);
  std::ostringstream m;
  eng.writeManifest(m);
  const std::string whole = m.str();
  EXPECT_THROW(restore(whole.substr(0, whole.size() / 2)), gpd::InputError);
}

TEST(Engine, DeltaCaptureRestoresByteIdentically) {
  EngineOptions opt;
  opt.sessionMaxCombinations = 100;
  Engine eng(opt);
  pumpAll(eng, detectingSession("t0", "s0"));
  const CheckpointCapture full = eng.captureCheckpoint(true);
  EXPECT_FALSE(full.delta);  // nothing to chain from yet
  EXPECT_EQ(full.epoch, 1u);
  EXPECT_EQ(eng.dirtySessions(), 0u);
  // Touch one session, open another, close nothing.
  pumpAll(eng, {"OPEN t1 s1 3", "EV t0 s0 0 1 2 0"});
  EXPECT_EQ(eng.dirtySessions(), 2u);
  const CheckpointCapture delta = eng.captureCheckpoint(true);
  EXPECT_TRUE(delta.delta);
  EXPECT_EQ(delta.epoch, 2u);
  EXPECT_EQ(delta.sessions, 2u);
  // full + delta restores to the same bytes as a fresh full capture.
  auto restored = Engine::restoreManifestText(full.text, opt);
  restored->applyDeltaText(delta.text);
  std::ostringstream a;
  restored->writeManifest(a);
  std::ostringstream b;
  eng.writeManifest(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(restored->checkpointEpoch(), eng.checkpointEpoch());
}

TEST(Engine, DeltaRecordsRemovedSessions) {
  Engine eng;
  pumpAll(eng, detectingSession("t0", "s0"));
  pumpAll(eng, {"OPEN t1 s1 2"});
  const CheckpointCapture full = eng.captureCheckpoint(false);
  pumpAll(eng, {"CLOSE t0 s0"});
  const CheckpointCapture delta = eng.captureCheckpoint(true);
  ASSERT_TRUE(delta.delta);
  EXPECT_NE(delta.text.find("gone t0 s0"), std::string::npos);
  auto restored = Engine::restoreManifestText(full.text, {});
  EXPECT_EQ(restored->openSessions(), 2u);
  restored->applyDeltaText(delta.text);
  EXPECT_EQ(restored->openSessions(), 1u);
  std::ostringstream a;
  restored->writeManifest(a);
  std::ostringstream b;
  eng.writeManifest(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Engine, DeltaChainRefusesWrongParent) {
  Engine eng;
  pumpAll(eng, {"OPEN t0 s0 2"});
  const CheckpointCapture full = eng.captureCheckpoint(false);
  pumpAll(eng, {"EV t0 s0 0 0 1 0"});
  const CheckpointCapture d1 = eng.captureCheckpoint(true);
  pumpAll(eng, {"EV t0 s0 1 0 0 1"});
  const CheckpointCapture d2 = eng.captureCheckpoint(true);
  ASSERT_TRUE(d1.delta);
  ASSERT_TRUE(d2.delta);
  // Skipping the middle link is refused...
  auto skip = Engine::restoreManifestText(full.text, {});
  EXPECT_THROW(skip->applyDeltaText(d2.text), gpd::InputError);
  // ...a corrupted middle link is refused (flip one payload byte)...
  std::string corrupt = d1.text;
  const std::size_t at = corrupt.find("session t0");
  ASSERT_NE(at, std::string::npos);
  corrupt[at] = 'x';
  auto bad = Engine::restoreManifestText(full.text, {});
  EXPECT_THROW(bad->applyDeltaText(corrupt), gpd::InputError);
  // ...and the intact chain applies clean.
  auto good = Engine::restoreManifestText(full.text, {});
  good->applyDeltaText(d1.text);
  good->applyDeltaText(d2.text);
  std::ostringstream a;
  good->writeManifest(a);
  std::ostringstream b;
  eng.writeManifest(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(Engine, PerTenantStatsTrackAndPersist) {
  EngineOptions opt;
  opt.maxSessionsPerTenant = 1;
  Engine eng(opt);
  pumpAll(eng, detectingSession("alpha", "s0"));
  pumpAll(eng, {"OPEN alpha s1 2", "OPEN beta s0 2", "CLOSE alpha s0"});
  const auto& ts = eng.tenantStats();
  ASSERT_EQ(ts.count("alpha"), 1u);
  ASSERT_EQ(ts.count("beta"), 1u);
  EXPECT_EQ(ts.at("alpha").sessionsOpened, 1u);
  EXPECT_EQ(ts.at("alpha").sessionsClosed, 1u);
  EXPECT_EQ(ts.at("alpha").admissionRejects, 1u);  // the s1 tenant-cap hit
  EXPECT_GT(ts.at("alpha").evBytes, 0u);
  EXPECT_EQ(ts.at("beta").sessionsOpened, 1u);
  // The tenants block renders last in the JSON and survives a round trip.
  const std::string json = eng.statsJson();
  const std::size_t tenantsAt = json.find("\"tenants\":{");
  ASSERT_NE(tenantsAt, std::string::npos);
  EXPECT_GT(tenantsAt, json.find("\"shed_mem\":"));
  EXPECT_NE(json.find("\"alpha\":{"), std::string::npos);
  // A capture clears the dirty set on both sides, so the rendered stats
  // (including dirty_sessions) agree exactly after restore.
  const CheckpointCapture cap = eng.captureCheckpoint(false);
  auto restored = Engine::restoreManifestText(cap.text, opt);
  EXPECT_EQ(restored->tenantStats().at("alpha").admissionRejects, 1u);
  EXPECT_EQ(restored->statsJson(), eng.statsJson());
}

TEST(Engine, StatsJsonSchemaGolden) {
  // Pins the top-level STATS JSON schema the telemetry consumers depend on:
  // every key present, in this order, with the optional "build" object
  // rendered after "last_sync" and "tenants" always last (gpdd_loadgen's
  // counter() helper scans for the first occurrence of each counter key, so
  // nothing may render tenant counters before the top-level ones).
  EngineOptions opt;
  opt.buildInfo = {{"version", "v1.2"}, {"obs", "on"}};
  Engine eng(opt);
  pumpAll(eng, {"OPEN t0 s0 2", "SYNC mark"});
  const std::string json = eng.statsJson();
  const char* keysInOrder[] = {
      "\"frames_accepted\":", "\"sessions_open\":",  "\"sessions_opened\":",
      "\"sessions_closed\":", "\"shed_mem\":",       "\"shed_budget\":",
      "\"shed_idle\":",       "\"degraded_mem\":",   "\"admission_rejects\":",
      "\"rate_limited\":",    "\"protocol_errors\":", "\"notifications\":",
      "\"nacks\":",           "\"detections\":",     "\"pumps\":",
      "\"estimated_bytes\":", "\"mem_level\":",      "\"epoch\":",
      "\"dirty_sessions\":",  "\"last_sync\":",      "\"slice_sessions\":",
      "\"slice_notifications\":",                    "\"slice_resolved\":",
      "\"slice_pending\":",   "\"slice_degraded\":", "\"build\":",
      "\"tenants\":",
  };
  std::size_t prev = 0;
  for (const char* key : keysInOrder) {
    const std::size_t at = json.find(key, prev);
    ASSERT_NE(at, std::string::npos) << key << " missing or out of order in "
                                     << json;
    prev = at;
  }
  // The build object renders the fields verbatim, in insertion order.
  EXPECT_NE(json.find("\"build\":{\"version\":\"v1.2\",\"obs\":\"on\"}"),
            std::string::npos)
      << json;
  // Without buildInfo the "build" key is absent entirely — engine tests and
  // pre-telemetry scrapers see the original schema.
  Engine bare;
  EXPECT_EQ(bare.statsJson().find("\"build\""), std::string::npos);
}

TEST(Engine, SliceEnabledSessionsAggregateInStats) {
  EngineOptions opt;
  opt.session.enableSlice = true;
  Engine eng(opt);
  pumpAll(eng, {"OPEN t0 s0 2", "EV t0 s0 0 0 1 0", "EV t0 s0 1 0 0 1"});
  const SliceStats sl = eng.sliceStats();
  EXPECT_EQ(sl.sessions, 1u);
  EXPECT_EQ(sl.notifications, 2u);
  EXPECT_EQ(sl.resolved, 2u);
  EXPECT_EQ(sl.pending, 0u);
  EXPECT_EQ(sl.degraded, 0u);
  const std::string json = eng.statsJson();
  EXPECT_NE(json.find("\"slice_sessions\":1"), std::string::npos);
  EXPECT_NE(json.find("\"slice_notifications\":2"), std::string::npos);
  // A sliceless engine still renders the keys, as zeros — scrapers see the
  // same schema either way.
  Engine bare;
  EXPECT_NE(bare.statsJson().find("\"slice_sessions\":0"), std::string::npos);
  const std::string text = eng.statsText();
  EXPECT_NE(text.find("  slice-sessions 1\n"), std::string::npos);
  EXPECT_NE(text.find("  slice-resolved 2\n"), std::string::npos);
}

TEST(Engine, StatsTextRendersTenantLines) {
  Engine eng;
  pumpAll(eng, {"OPEN t0 s0 2"});
  auto out = pumpAll(eng, {"STATS text"});
  ASSERT_TRUE(anyStartsWith(out, "STATS gpdd stats"));
  EXPECT_NE(out[0].find("tenant t0 "), std::string::npos);
  out = pumpAll(eng, {"STATS sideways"});
  EXPECT_TRUE(anyStartsWith(out, "ERR bad-argument"));
  out = pumpAll(eng, {"STATS json"});
  EXPECT_TRUE(anyStartsWith(out, "STATS {"));
}

TEST(Engine, LastSyncTokenPersistsAcrossManifest) {
  Engine eng;
  pumpAll(eng, {"OPEN t0 s0 2", "SYNC barrier-7"});
  EXPECT_EQ(eng.lastSyncToken(), "barrier-7");
  std::ostringstream m;
  eng.writeManifest(m);
  std::istringstream in(m.str());
  auto restored = Engine::restoreManifest(in, {});
  EXPECT_EQ(restored->lastSyncToken(), "barrier-7");
  EXPECT_NE(restored->statsJson().find("\"last_sync\":\"barrier-7\""),
            std::string::npos);
}

TEST(Engine, PoolAndSequentialPumpsAreBitIdentical) {
  const auto runWith = [](par::Pool* pool) {
    EngineOptions opt;
    opt.shards = 8;
    Engine eng(opt);
    std::vector<std::string> all;
    for (int i = 0; i < 12; ++i) {
      std::string t = "t";
      t += std::to_string(i % 3);
      std::string s = "s";
      s += std::to_string(i);
      for (const std::string& c : detectingSession(t, s)) all.push_back(c);
      all.push_back("CLOSE " + t + " " + s);
    }
    std::string transcript;
    for (const std::string& c : all) eng.submit(c);
    std::vector<Response> out;
    eng.pump(out, pool);
    for (const Response& r : out) {
      transcript += r.payload;
      transcript += '\n';
    }
    std::ostringstream m;
    eng.writeManifest(m);
    transcript += m.str();
    return transcript;
  };
  const std::string seq = runWith(nullptr);
  par::Pool pool(4);
  const std::string par4 = runWith(&pool);
  EXPECT_EQ(seq, par4);
}

}  // namespace
}  // namespace gpd::service
