// End-to-end gpdd front-end behavior that only shows up with a real process
// and real UNIX sockets (binary path injected by CMake as GPDD_PATH):
//
//  * two clients interleaving commands each receive exactly their own
//    responses — routing is by connection, not by accident of scheduling;
//  * a client that disconnects and is replaced by a new connection reusing
//    the same file descriptor number must not inherit the old connection's
//    responses (regression: responses were once routed by fd, so a VERDICT
//    for the dead client could leak into whoever got its fd next);
//  * SIGTERM drains: in-flight commands are answered, VERDICTs reach the
//    socket, the final checkpoint manifest is written and recoverable, and
//    the exit code is 0.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "service/frame.h"

namespace gpd::service {
namespace {

// Memoized so the forked server child (whose getpid() differs) sees the
// same path the parent computed; sockets live in /tmp to stay inside the
// sockaddr_un sun_path limit.
const std::string& sockPath() {
  static const std::string path =
      "/tmp/gpd_srv_" + std::to_string(::getpid()) + ".sock";
  return path;
}
const std::string& ckptPath() {
  static const std::string path = ::testing::TempDir() + "gpd_srv_" +
                                  std::to_string(::getpid()) + ".manifest";
  return path;
}

// A gpdd child process. stdin is held open on a pipe so the server stays up
// until we SIGTERM it (EOF on stdin also triggers a drain, which these
// tests want to control explicitly).
class Server {
 public:
  void start(const std::vector<std::string>& extraArgs) {
    const std::string sock = sockPath();  // memoize pre-fork
    int fds[2] = {-1, -1};
    ASSERT_EQ(0, ::pipe(fds));
    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      ::dup2(fds[0], 0);
      ::close(fds[0]);
      ::close(fds[1]);
      const int devnull = ::open("/dev/null", O_WRONLY);
      ::dup2(devnull, 1);
      ::dup2(devnull, 2);
      std::vector<std::string> args = {GPDD_PATH, "--socket", sock};
      for (const std::string& a : extraArgs) args.push_back(a);
      std::vector<char*> argv;
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(GPDD_PATH, argv.data());
      ::_exit(127);
    }
    ::close(fds[0]);
    stdinFd_ = fds[1];
  }

  void sigterm() const { ::kill(pid_, SIGTERM); }

  // Reaps the child and returns its exit code; -1 if killed by a signal.
  int wait() {
    if (stdinFd_ >= 0) ::close(stdinFd_);
    stdinFd_ = -1;
    int status = 0;
    EXPECT_EQ(pid_, ::waitpid(pid_, &status, 0));
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  ~Server() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    if (stdinFd_ >= 0) ::close(stdinFd_);
    ::unlink(sockPath().c_str());
  }

 private:
  pid_t pid_ = -1;
  int stdinFd_ = -1;
};

// One framed UNIX-socket client.
class Client {
 public:
  // Connects, retrying until the server has bound the socket.
  void connect() {
    for (int attempt = 0; attempt < 2000; ++attempt) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      ASSERT_GE(fd_, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      const std::string path = sockPath();
      ASSERT_LT(path.size(), sizeof(addr.sun_path));
      std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                    path.c_str());
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return;
      }
      ::close(fd_);
      fd_ = -1;
      ::poll(nullptr, 0, 5);
    }
    FAIL() << "could not connect to " << sockPath();
  }

  void send(const std::string& payload) const {
    const std::string wire = encodeFrame(payload);
    ASSERT_EQ(static_cast<ssize_t>(wire.size()),
              ::write(fd_, wire.data(), wire.size()));
  }

  // Reads until `n` frames have arrived (10s cap). Appends to received.
  void expectFrames(std::size_t n) {
    while (received.size() < n) {
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, 10000);
      ASSERT_GT(rc, 0) << "timed out waiting for frame "
                       << received.size() + 1 << " of " << n;
      char buf[4096];
      const ssize_t got = ::read(fd_, buf, sizeof(buf));
      ASSERT_GT(got, 0) << "server closed the connection early";
      decoder_.feed(std::string_view(buf, static_cast<std::size_t>(got)));
      while (auto payload = decoder_.pop()) received.push_back(*payload);
    }
  }

  // Reads frames until one arrives containing `needle` (10s cap).
  void waitFor(const std::string& needle) {
    std::size_t scanned = 0;
    for (;;) {
      for (; scanned < received.size(); ++scanned) {
        if (received[scanned].find(needle) != std::string::npos) return;
      }
      expectFrames(received.size() + 1);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // Reads frames until the server closes the connection.
  void drainUntilEof() {
    for (;;) {
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, 10000);
      ASSERT_GT(rc, 0) << "timed out waiting for EOF";
      char buf[4096];
      const ssize_t got = ::read(fd_, buf, sizeof(buf));
      if (got <= 0) return;
      decoder_.feed(std::string_view(buf, static_cast<std::size_t>(got)));
      while (auto payload = decoder_.pop()) received.push_back(*payload);
    }
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  ~Client() { close(); }

  std::vector<std::string> received;

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

// Every response names the session it belongs to, so cross-talk is
// detectable: a frame for session `mine` must never land on a connection
// that only ever spoke about another session.
void expectAllMention(const Client& c, const std::string& mine) {
  for (const std::string& payload : c.received) {
    EXPECT_NE(payload.find(mine), std::string::npos)
        << "foreign response leaked onto this connection: " << payload;
  }
}

TEST(GpddServerTest, TwoInterleavedClientsGetOnlyTheirOwnResponses) {
  Server server;
  server.start({});
  Client a;
  Client b;
  a.connect();
  b.connect();

  // Interleave: both open, both notify, both query, both close. Each step
  // waits for the response so the interleaving actually reaches the engine
  // in this order rather than racing in socket buffers.
  a.send("OPEN ta sa 2");
  b.send("OPEN tb sb 2");
  a.expectFrames(1);  // OK OPEN ta sa
  b.expectFrames(1);
  for (int e = 0; e < 3; ++e) {
    a.send("EV ta sa 0 " + std::to_string(e) + " " + std::to_string(e + 1) +
           " 0");
    b.send("EV tb sb 0 " + std::to_string(e) + " " + std::to_string(e + 1) +
           " 0");
  }
  a.send("QUERY ta sa");
  b.send("QUERY tb sb");
  a.expectFrames(2);
  b.expectFrames(2);
  a.send("CLOSE ta sa");
  b.send("CLOSE tb sb");
  a.expectFrames(3);
  b.expectFrames(3);

  expectAllMention(a, " sa");
  expectAllMention(b, " sb");
  EXPECT_NE(a.received.back().find("VERDICT ta sa"), std::string::npos)
      << a.received.back();
  EXPECT_NE(b.received.back().find("VERDICT tb sb"), std::string::npos)
      << b.received.back();

  server.sigterm();
  EXPECT_EQ(0, server.wait());
}

TEST(GpddServerTest, FdReuseDoesNotAliasConnections) {
  Server server;
  server.start({});
  Client a;
  a.connect();
  a.send("OPEN ta sa 2");
  a.expectFrames(1);
  // Leave a response in flight that the server will only produce later (a
  // NACK retry would be one; QUERY is simpler) and vanish without reading.
  a.send("EV ta sa 0 0 1 0");
  a.send("QUERY ta sa");
  a.close();

  // The very next connection typically reuses a's file descriptor number.
  // Under fd-keyed routing, sa's QUERY verdict could land here.
  Client c;
  c.connect();
  c.send("OPEN tc sc 2");
  c.send("EV tc sc 0 0 1 0");
  c.send("EV tc sc 1 0 0 1");
  c.send("QUERY tc sc");
  c.expectFrames(2);
  expectAllMention(c, " sc");

  server.sigterm();
  EXPECT_EQ(0, server.wait());
}

TEST(GpddServerTest, SigtermDrainsVerdictsAndWritesRecoverableManifest) {
  const std::string ck = ckptPath();
  std::remove(ck.c_str());
  Server server;
  server.start({"--checkpoint", ck, "--checkpoint-every", "1000000"});
  Client a;
  a.connect();
  a.send("OPEN ta sa 2");
  a.send("EV ta sa 0 0 1 0");
  a.send("EV ta sa 1 0 0 1");
  a.send("END ta sa 0 1");
  a.send("END ta sa 1 1");
  a.send("CLOSE ta sa");
  a.send("OPEN ta keep 2");  // left open: must survive into the manifest
  // The OK for the trailing OPEN proves every earlier command reached the
  // engine; only then does SIGTERM race the final pump and drain ordering.
  a.waitFor("OK OPEN ta keep");
  server.sigterm();
  a.drainUntilEof();
  EXPECT_EQ(0, server.wait());

  bool sawVerdict = false;
  for (const std::string& payload : a.received) {
    if (payload.rfind("VERDICT ta sa", 0) == 0) sawVerdict = true;
  }
  EXPECT_TRUE(sawVerdict) << "CLOSE verdict lost in drain";

  // The checkpoint-every cadence (1e6 pumps) never fired during the run, so
  // the manifest on disk can only have come from the drain path. It must be
  // complete enough for a successor to boot from.
  Server successor;
  successor.start({"--recover", "--checkpoint", ck});
  Client q;
  q.connect();
  q.send("QUERY ta keep");
  q.expectFrames(1);
  EXPECT_NE(q.received[0].find("keep"), std::string::npos) << q.received[0];
  successor.sigterm();
  EXPECT_EQ(0, successor.wait());
}

}  // namespace
}  // namespace gpd::service
