// Seeded gpdd-protocol workload generator shared by the service property
// suites (recovery, delta manifests, replication). Each seed yields a few
// sessions with monotone own-clock components (the one invariant honest
// clients keep), adjacent reorderings to open gaps, EVB batches, stray
// commands for sessions that never opened, TICKs to run retry timers, ENDs,
// QUERYs, and a mix of closed and left-open sessions so the final manifest
// is non-empty — interleaved and split at random pump boundaries.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "service/engine.h"
#include "util/rng.h"

namespace gpd::service {

using Batch = std::vector<std::string>;

inline std::vector<Batch> makeWorkload(std::uint64_t seed) {
  Rng rng(seed);
  const int nSessions = 3 + static_cast<int>(rng.index(4));
  std::vector<std::vector<std::string>> perSession(
      static_cast<std::size_t>(nSessions));
  for (int i = 0; i < nSessions; ++i) {
    std::string ts = "t";
    ts += std::to_string(rng.index(3));
    ts += " s";
    ts += std::to_string(i);
    const int n = 2 + static_cast<int>(rng.index(2));
    const int events = 2 + static_cast<int>(rng.index(5));
    auto& ops = perSession[static_cast<std::size_t>(i)];
    std::string open = "OPEN " + ts + " " + std::to_string(n);
    if (rng.chance(0.5)) open += " prio " + std::to_string(rng.index(4));
    ops.push_back(open);
    const bool evb = rng.chance(0.3);
    for (int p = 0; p < n; ++p) {
      if (evb && p == 0) {
        std::ostringstream os;
        os << "EVB " << ts << " 0 0 " << events;
        for (int e = 0; e < events; ++e) {
          os << '\n';
          for (int q = 0; q < n; ++q) {
            os << (q == 0 ? e + 1 : static_cast<int>(rng.index(
                                        static_cast<std::size_t>(events) + 2)))
               << (q + 1 < n ? " " : "");
          }
        }
        ops.push_back(os.str());
        continue;
      }
      for (int e = 0; e < events; ++e) {
        std::ostringstream os;
        os << "EV " << ts << ' ' << p << ' ' << e;
        for (int q = 0; q < n; ++q) {
          os << ' '
             << (q == p ? e + 1
                        : static_cast<int>(
                              rng.index(static_cast<std::size_t>(events) + 2)));
        }
        ops.push_back(os.str());
      }
    }
    // Delay some notifications behind their successors: gaps open, NACKs
    // fire once the TICKs below run the retry timer, the late arrival heals.
    for (std::size_t k = 1; k + 1 < ops.size(); ++k) {
      if (rng.chance(0.25)) std::swap(ops[k], ops[k + 1]);
    }
    if (rng.chance(0.15)) {  // unknown-session ERR
      std::string ghost = "EV t0 ghost";
      ghost += std::to_string(i);
      ghost += " 0 0 1 1";
      ops.push_back(std::move(ghost));
    }
    ops.push_back("TICK " + ts + " " + std::to_string(4 + rng.index(12)));
    for (int p = 0; p < n; ++p) {
      ops.push_back("END " + ts + " " + std::to_string(p) + " " +
                    std::to_string(events));
    }
    ops.push_back("TICK " + ts + " 8");
    if (rng.chance(0.5)) ops.push_back("QUERY " + ts);
    if (rng.chance(0.7)) ops.push_back("CLOSE " + ts);
  }

  // Interleave the sessions' command streams, then split at random batch
  // boundaries (a batch = one pump = one possible crash point).
  std::vector<std::string> flat;
  std::vector<std::size_t> cursor(static_cast<std::size_t>(nSessions), 0);
  std::vector<int> live;
  for (int i = 0; i < nSessions; ++i) live.push_back(i);
  while (!live.empty()) {
    const std::size_t pick = rng.index(live.size());
    const auto s = static_cast<std::size_t>(live[pick]);
    const std::size_t take = 1 + rng.index(3);
    for (std::size_t k = 0; k < take && cursor[s] < perSession[s].size(); ++k) {
      flat.push_back(perSession[s][cursor[s]++]);
    }
    if (cursor[s] == perSession[s].size()) {
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  const std::size_t nBatches = 4 + rng.index(4);
  std::vector<Batch> batches(nBatches);
  for (std::size_t k = 0; k < flat.size(); ++k) {
    batches[std::min(nBatches - 1, k * nBatches / std::max<std::size_t>(
                                                      1, flat.size()))]
        .push_back(std::move(flat[k]));
  }
  return batches;
}

// Budgets / the memory ladder / idle sweeps on rotating subsets of seeds so
// properties are exercised across every shedding path, not just the happy
// one.
inline EngineOptions optionsForSeed(std::uint64_t seed) {
  EngineOptions opt;
  opt.shards = 4;
  opt.session.retryTimeout = 4;
  opt.session.maxRetries = 2;
  if (seed % 2 == 0) opt.sessionMaxCombinations = 12;
  if (seed % 3 == 0) opt.memWatermarkBytes = 9000;
  if (seed % 5 == 0) opt.idleTimeoutPumps = 3;
  return opt;
}

inline std::size_t countOccurrences(const std::string& hay,
                                    const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(pat); at != std::string::npos;
       at = hay.find(pat, at + pat.size())) {
    ++n;
  }
  return n;
}

}  // namespace gpd::service
