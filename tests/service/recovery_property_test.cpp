// Crash-equivalence property: an Engine manifest written at any pump
// boundary, restored, and driven with the same remaining batches produces
// byte-identical responses and a byte-identical final manifest — the
// contract documented in service/engine.h that makes gpdd's kill-and-restart
// recovery testable. 200 seeded workloads, each cut at a random batch, with
// budgets / the memory ladder / idle sweeps enabled on rotating subsets so
// recovery is exercised across every shedding path, not just the happy one.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "service/engine.h"
#include "util/rng.h"

namespace gpd::service {
namespace {

using Batch = std::vector<std::string>;

// A seeded mini-workload in the gpdd protocol: several sessions with
// monotone own-clock components (the one invariant honest clients keep),
// adjacent reorderings to open gaps, EVB batches, stray commands for
// sessions that never opened, TICKs to run retry timers, ENDs, QUERYs, and
// a mix of closed and left-open sessions so the final manifest is non-empty.
std::vector<Batch> makeWorkload(std::uint64_t seed) {
  Rng rng(seed);
  const int nSessions = 3 + static_cast<int>(rng.index(4));
  std::vector<std::vector<std::string>> perSession(
      static_cast<std::size_t>(nSessions));
  for (int i = 0; i < nSessions; ++i) {
    const std::string ts = "t" + std::to_string(rng.index(3)) + " s" +
                           std::to_string(i);
    const int n = 2 + static_cast<int>(rng.index(2));
    const int events = 2 + static_cast<int>(rng.index(5));
    auto& ops = perSession[static_cast<std::size_t>(i)];
    std::string open = "OPEN " + ts + " " + std::to_string(n);
    if (rng.chance(0.5)) open += " prio " + std::to_string(rng.index(4));
    ops.push_back(open);
    const bool evb = rng.chance(0.3);
    for (int p = 0; p < n; ++p) {
      if (evb && p == 0) {
        std::ostringstream os;
        os << "EVB " << ts << " 0 0 " << events;
        for (int e = 0; e < events; ++e) {
          os << '\n';
          for (int q = 0; q < n; ++q) {
            os << (q == 0 ? e + 1 : static_cast<int>(rng.index(
                                        static_cast<std::size_t>(events) + 2)))
               << (q + 1 < n ? " " : "");
          }
        }
        ops.push_back(os.str());
        continue;
      }
      for (int e = 0; e < events; ++e) {
        std::ostringstream os;
        os << "EV " << ts << ' ' << p << ' ' << e;
        for (int q = 0; q < n; ++q) {
          os << ' '
             << (q == p ? e + 1
                        : static_cast<int>(
                              rng.index(static_cast<std::size_t>(events) + 2)));
        }
        ops.push_back(os.str());
      }
    }
    // Delay some notifications behind their successors: gaps open, NACKs
    // fire once the TICKs below run the retry timer, the late arrival heals.
    for (std::size_t k = 1; k + 1 < ops.size(); ++k) {
      if (rng.chance(0.25)) std::swap(ops[k], ops[k + 1]);
    }
    if (rng.chance(0.15)) ops.push_back("EV t0 ghost" + std::to_string(i) +
                                        " 0 0 1 1");  // unknown-session ERR
    ops.push_back("TICK " + ts + " " + std::to_string(4 + rng.index(12)));
    for (int p = 0; p < n; ++p) {
      ops.push_back("END " + ts + " " + std::to_string(p) + " " +
                    std::to_string(events));
    }
    ops.push_back("TICK " + ts + " 8");
    if (rng.chance(0.5)) ops.push_back("QUERY " + ts);
    if (rng.chance(0.7)) ops.push_back("CLOSE " + ts);
  }

  // Interleave the sessions' command streams, then split at random batch
  // boundaries (a batch = one pump = one possible crash point).
  std::vector<std::string> flat;
  std::vector<std::size_t> cursor(static_cast<std::size_t>(nSessions), 0);
  std::vector<int> live;
  for (int i = 0; i < nSessions; ++i) live.push_back(i);
  while (!live.empty()) {
    const std::size_t pick = rng.index(live.size());
    const auto s = static_cast<std::size_t>(live[pick]);
    const std::size_t take = 1 + rng.index(3);
    for (std::size_t k = 0; k < take && cursor[s] < perSession[s].size(); ++k) {
      flat.push_back(perSession[s][cursor[s]++]);
    }
    if (cursor[s] == perSession[s].size()) {
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  const std::size_t nBatches = 4 + rng.index(4);
  std::vector<Batch> batches(nBatches);
  for (std::size_t k = 0; k < flat.size(); ++k) {
    batches[std::min(nBatches - 1, k * nBatches / std::max<std::size_t>(
                                                      1, flat.size()))]
        .push_back(std::move(flat[k]));
  }
  return batches;
}

struct RunResult {
  std::string transcript;
  std::string manifest;
};

// Drives the batches through an Engine; with cutAt >= 0, simulates a crash
// at that pump boundary by serializing the manifest and resuming on a
// freshly restored Engine.
RunResult run(const std::vector<Batch>& batches, int cutAt,
              const EngineOptions& opt, par::Pool* pool = nullptr) {
  auto eng = std::make_unique<Engine>(opt);
  RunResult r;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    if (cutAt >= 0 && static_cast<std::size_t>(cutAt) == b) {
      std::ostringstream m;
      eng->writeManifest(m);
      std::istringstream in(m.str());
      eng = Engine::restoreManifest(in, opt);
    }
    for (const std::string& c : batches[b]) eng->submit(c);
    std::vector<Response> out;
    eng->pump(out, pool);
    for (const Response& resp : out) {
      r.transcript += resp.payload;
      r.transcript += '\n';
    }
  }
  std::ostringstream m;
  eng->writeManifest(m);
  r.manifest = m.str();
  return r;
}

std::size_t countOccurrences(const std::string& hay, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(pat); at != std::string::npos;
       at = hay.find(pat, at + pat.size())) {
    ++n;
  }
  return n;
}

EngineOptions optionsForSeed(std::uint64_t seed) {
  EngineOptions opt;
  opt.shards = 4;
  opt.session.retryTimeout = 4;
  opt.session.maxRetries = 2;
  if (seed % 2 == 0) opt.sessionMaxCombinations = 12;
  if (seed % 3 == 0) opt.memWatermarkBytes = 9000;
  if (seed % 5 == 0) opt.idleTimeoutPumps = 3;
  return opt;
}

TEST(RecoveryProperty, CutRestoreResumeIsByteIdentical) {
  std::size_t detects = 0, nacks = 0, sheds = 0, errs = 0, verdicts = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto batches = makeWorkload(seed);
    const EngineOptions opt = optionsForSeed(seed);
    Rng cutRng(seed * 7919 + 13);
    const int cut = static_cast<int>(cutRng.index(batches.size()));
    const RunResult base = run(batches, /*cutAt=*/-1, opt);
    const RunResult cutRun = run(batches, cut, opt);
    ASSERT_EQ(base.transcript, cutRun.transcript)
        << "seed " << seed << " cut at batch " << cut;
    ASSERT_EQ(base.manifest, cutRun.manifest)
        << "seed " << seed << " cut at batch " << cut;
    detects += countOccurrences(base.transcript, "DETECT ");
    nacks += countOccurrences(base.transcript, "NACK ");
    sheds += countOccurrences(base.transcript, "SHED ");
    errs += countOccurrences(base.transcript, "ERR ");
    verdicts += countOccurrences(base.transcript, "VERDICT ");
  }
  // The property must not hold vacuously: across 200 seeds the workloads
  // have to exercise detection, gap recovery, shedding, and the error path.
  EXPECT_GT(detects, 0u);
  EXPECT_GT(nacks, 0u);
  EXPECT_GT(sheds, 0u);
  EXPECT_GT(errs, 0u);
  EXPECT_GT(verdicts, 100u);
}

TEST(RecoveryProperty, DoubleCrashStillByteIdentical) {
  // Crash, recover, crash again: manifests compose.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto batches = makeWorkload(seed);
    const EngineOptions opt = optionsForSeed(seed);
    const RunResult base = run(batches, -1, opt);
    auto eng = std::make_unique<Engine>(opt);
    RunResult twice;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      std::ostringstream m;  // crash at *every* pump boundary
      eng->writeManifest(m);
      std::istringstream in(m.str());
      eng = Engine::restoreManifest(in, opt);
      for (const std::string& c : batches[b]) eng->submit(c);
      std::vector<Response> out;
      eng->pump(out);
      for (const Response& resp : out) {
        twice.transcript += resp.payload;
        twice.transcript += '\n';
      }
    }
    std::ostringstream m;
    eng->writeManifest(m);
    twice.manifest = m.str();
    ASSERT_EQ(base.transcript, twice.transcript) << "seed " << seed;
    ASSERT_EQ(base.manifest, twice.manifest) << "seed " << seed;
  }
}

TEST(RecoveryProperty, PoolEquivalenceUnderCuts) {
  par::Pool pool(4);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto batches = makeWorkload(seed);
    const EngineOptions opt = optionsForSeed(seed);
    Rng cutRng(seed * 104729 + 7);
    const int cut = static_cast<int>(cutRng.index(batches.size()));
    const RunResult seq = run(batches, cut, opt, nullptr);
    const RunResult par4 = run(batches, cut, opt, &pool);
    ASSERT_EQ(seq.transcript, par4.transcript)
        << "seed " << seed << " cut at batch " << cut;
    ASSERT_EQ(seq.manifest, par4.manifest)
        << "seed " << seed << " cut at batch " << cut;
  }
}

}  // namespace
}  // namespace gpd::service
