// Crash-equivalence property: an Engine manifest written at any pump
// boundary, restored, and driven with the same remaining batches produces
// byte-identical responses and a byte-identical final manifest — the
// contract documented in service/engine.h that makes gpdd's kill-and-restart
// recovery testable. 200 seeded workloads, each cut at a random batch, with
// budgets / the memory ladder / idle sweeps enabled on rotating subsets so
// recovery is exercised across every shedding path, not just the happy one.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "service/engine.h"
#include "util/rng.h"

#include "workload_gen.h"

namespace gpd::service {
namespace {

// Workload and per-seed option generation live in workload_gen.h, shared
// with the delta-manifest / replication property suite.

struct RunResult {
  std::string transcript;
  std::string manifest;
};

// Drives the batches through an Engine; with cutAt >= 0, simulates a crash
// at that pump boundary by serializing the manifest and resuming on a
// freshly restored Engine.
RunResult run(const std::vector<Batch>& batches, int cutAt,
              const EngineOptions& opt, par::Pool* pool = nullptr) {
  auto eng = std::make_unique<Engine>(opt);
  RunResult r;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    if (cutAt >= 0 && static_cast<std::size_t>(cutAt) == b) {
      std::ostringstream m;
      eng->writeManifest(m);
      std::istringstream in(m.str());
      eng = Engine::restoreManifest(in, opt);
    }
    for (const std::string& c : batches[b]) eng->submit(c);
    std::vector<Response> out;
    eng->pump(out, pool);
    for (const Response& resp : out) {
      r.transcript += resp.payload;
      r.transcript += '\n';
    }
  }
  std::ostringstream m;
  eng->writeManifest(m);
  r.manifest = m.str();
  return r;
}

TEST(RecoveryProperty, CutRestoreResumeIsByteIdentical) {
  std::size_t detects = 0, nacks = 0, sheds = 0, errs = 0, verdicts = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto batches = makeWorkload(seed);
    const EngineOptions opt = optionsForSeed(seed);
    Rng cutRng(seed * 7919 + 13);
    const int cut = static_cast<int>(cutRng.index(batches.size()));
    const RunResult base = run(batches, /*cutAt=*/-1, opt);
    const RunResult cutRun = run(batches, cut, opt);
    ASSERT_EQ(base.transcript, cutRun.transcript)
        << "seed " << seed << " cut at batch " << cut;
    ASSERT_EQ(base.manifest, cutRun.manifest)
        << "seed " << seed << " cut at batch " << cut;
    detects += countOccurrences(base.transcript, "DETECT ");
    nacks += countOccurrences(base.transcript, "NACK ");
    sheds += countOccurrences(base.transcript, "SHED ");
    errs += countOccurrences(base.transcript, "ERR ");
    verdicts += countOccurrences(base.transcript, "VERDICT ");
  }
  // The property must not hold vacuously: across 200 seeds the workloads
  // have to exercise detection, gap recovery, shedding, and the error path.
  EXPECT_GT(detects, 0u);
  EXPECT_GT(nacks, 0u);
  EXPECT_GT(sheds, 0u);
  EXPECT_GT(errs, 0u);
  EXPECT_GT(verdicts, 100u);
}

TEST(RecoveryProperty, DoubleCrashStillByteIdentical) {
  // Crash, recover, crash again: manifests compose.
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const auto batches = makeWorkload(seed);
    const EngineOptions opt = optionsForSeed(seed);
    const RunResult base = run(batches, -1, opt);
    auto eng = std::make_unique<Engine>(opt);
    RunResult twice;
    for (std::size_t b = 0; b < batches.size(); ++b) {
      std::ostringstream m;  // crash at *every* pump boundary
      eng->writeManifest(m);
      std::istringstream in(m.str());
      eng = Engine::restoreManifest(in, opt);
      for (const std::string& c : batches[b]) eng->submit(c);
      std::vector<Response> out;
      eng->pump(out);
      for (const Response& resp : out) {
        twice.transcript += resp.payload;
        twice.transcript += '\n';
      }
    }
    std::ostringstream m;
    eng->writeManifest(m);
    twice.manifest = m.str();
    ASSERT_EQ(base.transcript, twice.transcript) << "seed " << seed;
    ASSERT_EQ(base.manifest, twice.manifest) << "seed " << seed;
  }
}

TEST(RecoveryProperty, PoolEquivalenceUnderCuts) {
  par::Pool pool(4);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const auto batches = makeWorkload(seed);
    const EngineOptions opt = optionsForSeed(seed);
    Rng cutRng(seed * 104729 + 7);
    const int cut = static_cast<int>(cutRng.index(batches.size()));
    const RunResult seq = run(batches, cut, opt, nullptr);
    const RunResult par4 = run(batches, cut, opt, &pool);
    ASSERT_EQ(seq.transcript, par4.transcript)
        << "seed " << seed << " cut at batch " << cut;
    ASSERT_EQ(seq.manifest, par4.manifest)
        << "seed " << seed << " cut at batch " << cut;
  }
}

}  // namespace
}  // namespace gpd::service
