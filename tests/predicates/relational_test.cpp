#include "predicates/relational.h"

#include <gtest/gtest.h>

namespace gpd {
namespace {

Computation twoProc() {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(0);
  b.appendEvent(1);
  return std::move(b).build();
}

TEST(SumPredicateTest, SumAtCut) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.define(0, "x", {1, 2, 3});
  t.define(1, "y", {10, 20});
  SumPredicate pred{{{0, "x"}, {1, "y"}}, Relop::Equal, 22};
  EXPECT_EQ(pred.sumAtCut(t, Cut(std::vector<int>{0, 0})), 11);
  EXPECT_EQ(pred.sumAtCut(t, Cut(std::vector<int>{1, 1})), 22);
  EXPECT_TRUE(pred.holdsAtCut(t, Cut(std::vector<int>{1, 1})));
  EXPECT_FALSE(pred.holdsAtCut(t, Cut(std::vector<int>{0, 1})));
}

TEST(SumPredicateTest, DeltaBounds) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.define(0, "x", {0, 1, 0});
  t.define(0, "x2", {0, 1, 2});
  t.define(1, "y", {0, 5});
  SumPredicate small{{{0, "x"}}, Relop::Equal, 0};
  EXPECT_EQ(small.deltaBound(t), 1);
  EXPECT_EQ(small.eventDeltaBound(t), 1);

  SumPredicate big{{{0, "x"}, {1, "y"}}, Relop::Equal, 0};
  EXPECT_EQ(big.deltaBound(t), 5);

  // Two bounded variables on one process accumulate at the event level.
  SumPredicate stacked{{{0, "x"}, {0, "x2"}}, Relop::Equal, 0};
  EXPECT_EQ(stacked.deltaBound(t), 1);
  EXPECT_EQ(stacked.eventDeltaBound(t), 2);
}

TEST(SumPredicateTest, ToStringReadable) {
  SumPredicate pred{{{0, "x"}, {2, "y"}}, Relop::GreaterEq, 3};
  EXPECT_EQ(pred.toString(), "x@p0 + y@p2 >= 3");
}

TEST(SumPredicateTest, MultipleTermsSameProcess) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.define(0, "a", {1, 1, 1});
  t.define(0, "b", {2, 2, 2});
  SumPredicate pred{{{0, "a"}, {0, "b"}}, Relop::Equal, 3};
  EXPECT_EQ(pred.sumAtCut(t, Cut(std::vector<int>{2, 0})), 3);
}

}  // namespace
}  // namespace gpd
