#include "predicates/boolean_expr.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd {
namespace {

Computation flat(int procs, int events) {
  ComputationBuilder b(procs);
  for (ProcessId p = 0; p < procs; ++p) {
    for (int i = 0; i < events; ++i) b.appendEvent(p);
  }
  return std::move(b).build();
}

// Evaluate a DNF against a trace/cut.
bool evalDnf(const std::vector<DnfTerm>& dnf, const VariableTrace& trace,
             const Cut& cut) {
  for (const DnfTerm& term : dnf) {
    bool all = true;
    for (const BoolLiteral& lit : term) {
      if (!lit.holds(trace, cut.last[lit.process])) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

BoolExprPtr randomExpr(int procs, int depth, Rng& rng) {
  if (depth == 0 || rng.chance(0.35)) {
    return BoolExpr::var(static_cast<ProcessId>(rng.index(procs)), "x");
  }
  switch (rng.index(3)) {
    case 0:
      return BoolExpr::negate(randomExpr(procs, depth - 1, rng));
    case 1: {
      std::vector<BoolExprPtr> kids;
      const int n = 2 + static_cast<int>(rng.index(2));
      for (int i = 0; i < n; ++i) kids.push_back(randomExpr(procs, depth - 1, rng));
      return BoolExpr::conjunction(std::move(kids));
    }
    default: {
      std::vector<BoolExprPtr> kids;
      const int n = 2 + static_cast<int>(rng.index(2));
      for (int i = 0; i < n; ++i) kids.push_back(randomExpr(procs, depth - 1, rng));
      return BoolExpr::disjunction(std::move(kids));
    }
  }
}

TEST(BoolExprTest, EvaluateBasics) {
  const Computation c = flat(2, 1);
  VariableTrace t(c);
  t.defineBool(0, "x", {true, false});
  t.defineBool(1, "x", {false, true});
  const auto x0 = BoolExpr::var(0, "x");
  const auto x1 = BoolExpr::var(1, "x");
  const Cut cut(std::vector<int>{0, 0});
  EXPECT_TRUE(x0->evaluate(t, cut));
  EXPECT_FALSE(x1->evaluate(t, cut));
  EXPECT_FALSE(BoolExpr::conjunction({x0, x1})->evaluate(t, cut));
  EXPECT_TRUE(BoolExpr::disjunction({x0, x1})->evaluate(t, cut));
  EXPECT_FALSE(BoolExpr::negate(x0)->evaluate(t, cut));
}

TEST(BoolExprTest, ToStringReadable) {
  const auto e = BoolExpr::disjunction(
      {BoolExpr::negate(BoolExpr::var(0, "a")),
       BoolExpr::conjunction({BoolExpr::var(1, "b"), BoolExpr::var(2, "c")})});
  EXPECT_EQ(e->toString(), "(!(a@p0) | (b@p1 & c@p2))");
}

TEST(BoolExprTest, DnfOfVariable) {
  const auto dnf = toDnf(*BoolExpr::var(3, "x"));
  ASSERT_EQ(dnf.size(), 1u);
  ASSERT_EQ(dnf[0].size(), 1u);
  EXPECT_EQ(dnf[0][0].process, 3);
  EXPECT_TRUE(dnf[0][0].positive);
}

TEST(BoolExprTest, DnfPrunesContradictions) {
  // x ∧ ¬x: unsatisfiable → empty DNF.
  const auto x = BoolExpr::var(0, "x");
  const auto contradiction = BoolExpr::conjunction({x, BoolExpr::negate(x)});
  EXPECT_TRUE(toDnf(*contradiction).empty());
}

TEST(BoolExprTest, DeMorganNormalization) {
  // ¬(a ∨ b) = ¬a ∧ ¬b: one term with two negative literals.
  const auto e = BoolExpr::negate(BoolExpr::disjunction(
      {BoolExpr::var(0, "a"), BoolExpr::var(1, "b")}));
  const auto dnf = toDnf(*e);
  ASSERT_EQ(dnf.size(), 1u);
  ASSERT_EQ(dnf[0].size(), 2u);
  EXPECT_FALSE(dnf[0][0].positive);
  EXPECT_FALSE(dnf[0][1].positive);
}

TEST(BoolExprTest, DoubleNegationCancels) {
  const auto e = BoolExpr::negate(BoolExpr::negate(BoolExpr::var(0, "x")));
  const auto dnf = toDnf(*e);
  ASSERT_EQ(dnf.size(), 1u);
  EXPECT_TRUE(dnf[0][0].positive);
}

// CNF-shaped expression: And of `clauses` two-variable Ors. Its DNF has
// 2^clauses terms — the exponential distribution the budget must bound.
BoolExprPtr wideCnf(int clauses) {
  std::vector<BoolExprPtr> ands;
  for (int i = 0; i < clauses; ++i) {
    ands.push_back(BoolExpr::disjunction(
        {BoolExpr::var(2 * i, "x"), BoolExpr::var(2 * i + 1, "x")}));
  }
  return BoolExpr::conjunction(std::move(ands));
}

TEST(BoolExprTest, BudgetedExpansionRunsToCompletionWhenRoomy) {
  control::Budget roomy;  // unlimited
  const DnfExpansion full = toDnfBudgeted(*wideCnf(6), &roomy);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.terms.size(), 64u);  // 2^6
  // Identical to the unbudgeted convenience form.
  EXPECT_EQ(toDnf(*wideCnf(6)).size(), 64u);
}

TEST(BoolExprTest, CancelledBudgetStopsTheExpansionEarly) {
  // A pre-cancelled token trips keepGoing() at its first amortized poll;
  // the 2^10-term distribution makes far more than one poll period of
  // expansion steps, so the run must come back incomplete and truncated.
  control::CancelToken cancel;
  cancel.requestCancel();
  control::Budget budget(control::BudgetLimits{}, &cancel);
  const DnfExpansion partial = toDnfBudgeted(*wideCnf(10), &budget);
  EXPECT_FALSE(partial.complete);
  EXPECT_LT(partial.terms.size(), 1024u);
}

TEST(BoolExprTest, DnfEquivalentOnRandomExpressions) {
  Rng rng(11235);
  for (int trial = 0; trial < 60; ++trial) {
    const Computation c = flat(3, 2);
    VariableTrace t(c);
    defineRandomBools(t, "x", 0.5, rng);
    const auto expr = randomExpr(3, 3, rng);
    const auto dnf = toDnf(*expr);
    // Compare at every grid point.
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        for (int d = 0; d < 3; ++d) {
          const Cut cut(std::vector<int>{a, b, d});
          EXPECT_EQ(expr->evaluate(t, cut), evalDnf(dnf, t, cut))
              << "trial " << trial << " expr " << expr->toString();
        }
      }
    }
  }
}

}  // namespace
}  // namespace gpd
