#include "predicates/variable_trace.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace gpd {
namespace {

Computation twoProc() {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(0);
  b.appendEvent(1);
  return std::move(b).build();  // p0: 3 events, p1: 2 events
}

TEST(VariableTraceTest, DefineAndRead) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.define(0, "x", {5, 7, 2});
  EXPECT_EQ(t.value(0, "x", 0), 5);
  EXPECT_EQ(t.value(0, "x", 2), 2);
  EXPECT_TRUE(t.has(0, "x"));
  EXPECT_FALSE(t.has(1, "x"));
}

TEST(VariableTraceTest, ValueAtCutUsesLastEvent) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.define(0, "x", {1, 2, 3});
  t.define(1, "y", {10, 20});
  const Cut cut(std::vector<int>{1, 0});
  EXPECT_EQ(t.valueAtCut(cut, 0, "x"), 2);
  EXPECT_EQ(t.valueAtCut(cut, 1, "y"), 10);
}

TEST(VariableTraceTest, WrongLengthRejected) {
  const Computation c = twoProc();
  VariableTrace t(c);
  EXPECT_THROW(t.define(0, "x", {1, 2}), CheckFailure);
}

TEST(VariableTraceTest, RedefinitionRejected) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.define(0, "x", {1, 2, 3});
  EXPECT_THROW(t.define(0, "x", {0, 0, 0}), CheckFailure);
}

TEST(VariableTraceTest, UndefinedVariableRejected) {
  const Computation c = twoProc();
  VariableTrace t(c);
  EXPECT_THROW(t.value(0, "nope", 0), CheckFailure);
}

TEST(VariableTraceTest, SameNameOnDifferentProcesses) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.define(0, "x", {1, 1, 1});
  t.define(1, "x", {2, 2});
  EXPECT_EQ(t.value(0, "x", 0), 1);
  EXPECT_EQ(t.value(1, "x", 0), 2);
}

TEST(VariableTraceTest, MaxAbsDelta) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.define(0, "x", {0, 3, 2});
  EXPECT_EQ(t.maxAbsDelta(0, "x"), 3);
  t.define(0, "y", {5, 5, 5});
  EXPECT_EQ(t.maxAbsDelta(0, "y"), 0);
}

TEST(VariableTraceTest, TrueEventIndices) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.defineBool(0, "b", {false, true, true});
  EXPECT_EQ(t.trueEventIndices(0, "b"), (std::vector<int>{1, 2}));
}

TEST(VariableTraceTest, DefineBoolStoresZeroOne) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.defineBool(1, "b", {true, false});
  EXPECT_EQ(t.value(1, "b", 0), 1);
  EXPECT_EQ(t.value(1, "b", 1), 0);
}

}  // namespace
}  // namespace gpd
