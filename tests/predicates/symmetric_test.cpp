#include "predicates/symmetric.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace gpd {
namespace {

std::vector<SumTerm> vars(int n) {
  std::vector<SumTerm> out;
  for (int p = 0; p < n; ++p) out.push_back({p, "x"});
  return out;
}

Computation flatComputation(int n, int events) {
  ComputationBuilder b(n);
  for (ProcessId p = 0; p < n; ++p) {
    for (int i = 0; i < events; ++i) b.appendEvent(p);
  }
  return std::move(b).build();
}

TEST(SymmetricTest, ExclusiveOrCounts) {
  const auto p = exclusiveOr(vars(4));
  EXPECT_EQ(p.trueCounts, (std::vector<int>{1, 3}));
}

TEST(SymmetricTest, AbsenceOfSimpleMajority) {
  EXPECT_EQ(absenceOfSimpleMajority(vars(4)).trueCounts, (std::vector<int>{2}));
  // Odd arity: one side always has a strict majority — unsatisfiable.
  EXPECT_TRUE(absenceOfSimpleMajority(vars(5)).trueCounts.empty());
}

TEST(SymmetricTest, AbsenceOfTwoThirdsMajority) {
  // n = 6: true counts strictly between 2 and 4.
  EXPECT_EQ(absenceOfTwoThirdsMajority(vars(6)).trueCounts,
            (std::vector<int>{3}));
  // n = 9: counts strictly between 3 and 6.
  EXPECT_EQ(absenceOfTwoThirdsMajority(vars(9)).trueCounts,
            (std::vector<int>{4, 5}));
}

TEST(SymmetricTest, ExactlyKAndBounds) {
  EXPECT_EQ(exactlyK(vars(5), 2).trueCounts, (std::vector<int>{2}));
  EXPECT_THROW(exactlyK(vars(3), 4), CheckFailure);
}

TEST(SymmetricTest, NotAllEqualAndAllEqual) {
  EXPECT_EQ(notAllEqual(vars(3)).trueCounts, (std::vector<int>{1, 2}));
  EXPECT_EQ(allEqual(vars(3)).trueCounts, (std::vector<int>{0, 3}));
}

TEST(SymmetricTest, HoldsAtCutCountsTrueVars) {
  const Computation c = flatComputation(3, 1);
  VariableTrace t(c);
  t.defineBool(0, "x", {false, true});
  t.defineBool(1, "x", {false, false});
  t.defineBool(2, "x", {true, true});
  const auto pred = exactlyK(vars(3), 2);
  EXPECT_FALSE(pred.holdsAtCut(t, Cut(std::vector<int>{0, 0, 0})));  // 1 true
  EXPECT_TRUE(pred.holdsAtCut(t, Cut(std::vector<int>{1, 0, 0})));   // 2 true
}

TEST(SymmetricTest, AsExactSumsMirrorsCounts) {
  const auto pred = notAllEqual(vars(4));
  const auto sums = pred.asExactSums();
  ASSERT_EQ(sums.size(), 3u);
  for (std::size_t i = 0; i < sums.size(); ++i) {
    EXPECT_EQ(sums[i].relop, Relop::Equal);
    EXPECT_EQ(sums[i].k, pred.trueCounts[i]);
    EXPECT_EQ(sums[i].terms.size(), 4u);
  }
}

TEST(SymmetricTest, XorEquivalentToParityAtEveryCut) {
  const Computation c = flatComputation(3, 2);
  VariableTrace t(c);
  t.defineBool(0, "x", {false, true, false});
  t.defineBool(1, "x", {true, true, false});
  t.defineBool(2, "x", {false, false, true});
  const auto pred = exclusiveOr(vars(3));
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int d = 0; d < 3; ++d) {
        const Cut cut(std::vector<int>{a, b, d});
        int count = 0;
        for (int p = 0; p < 3; ++p) count += t.valueAtCut(cut, p, "x") != 0;
        EXPECT_EQ(pred.holdsAtCut(t, cut), count % 2 == 1);
      }
    }
  }
}

}  // namespace
}  // namespace gpd
