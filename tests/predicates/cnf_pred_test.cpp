#include "predicates/cnf.h"

#include <gtest/gtest.h>

#include "computation/computation.h"

namespace gpd {
namespace {

Computation fourProc() {
  ComputationBuilder b(4);
  for (ProcessId p = 0; p < 4; ++p) {
    b.appendEvent(p);
    b.appendEvent(p);
  }
  return std::move(b).build();
}

TEST(CnfPredicateTest, SingularDetection) {
  CnfPredicate singular;
  singular.clauses = {{{0, "x", true}, {1, "y", false}},
                      {{2, "z", true}, {3, "w", true}}};
  EXPECT_TRUE(singular.isSingular());

  CnfPredicate shared;
  shared.clauses = {{{0, "x", true}, {1, "y", true}},
                    {{1, "z", true}, {2, "w", true}}};  // p1 in both clauses
  EXPECT_FALSE(shared.isSingular());
}

TEST(CnfPredicateTest, SameProcessTwiceInOneClauseIsStillSingular) {
  // The definition only forbids *two clauses* sharing a process.
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {0, "y", true}}};
  EXPECT_TRUE(pred.isSingular());
  EXPECT_EQ(pred.clauseProcesses(0), (std::vector<ProcessId>{0}));
}

TEST(CnfPredicateTest, IsKCnf) {
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {1, "y", true}},
                  {{2, "z", true}, {3, "w", true}}};
  EXPECT_TRUE(pred.isKCnf(2));
  EXPECT_FALSE(pred.isKCnf(3));
  pred.clauses.push_back({{2, "q", true}});
  EXPECT_FALSE(pred.isKCnf(2));
}

TEST(CnfPredicateTest, HoldsAtCutEvaluatesClauses) {
  const Computation c = fourProc();
  VariableTrace t(c);
  t.defineBool(0, "x", {false, true, false});
  t.defineBool(1, "y", {false, false, true});
  t.defineBool(2, "z", {true, true, true});
  t.defineBool(3, "w", {false, false, false});
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {1, "y", true}},
                  {{2, "z", true}, {3, "w", true}}};
  // x true at (0,1) satisfies clause 1; z always satisfies clause 2.
  EXPECT_TRUE(pred.holdsAtCut(t, Cut(std::vector<int>{1, 0, 0, 0})));
  // Neither x@2 nor y@0 true: clause 1 fails.
  EXPECT_FALSE(pred.holdsAtCut(t, Cut(std::vector<int>{2, 0, 0, 0})));
  // Negative literal: !w is always true here.
  CnfPredicate neg;
  neg.clauses = {{{3, "w", false}}};
  EXPECT_TRUE(neg.holdsAtCut(t, Cut(std::vector<int>{0, 0, 0, 2})));
}

TEST(CnfPredicateTest, ToStringReadable) {
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {1, "y", false}}};
  EXPECT_EQ(pred.toString(), "(x@p0 | !y@p1)");
}

TEST(CnfPredicateTest, EmptyPredicateHoldsEverywhere) {
  const Computation c = fourProc();
  VariableTrace t(c);
  CnfPredicate pred;
  EXPECT_TRUE(pred.isSingular());
  EXPECT_TRUE(pred.holdsAtCut(t, initialCut(c)));
}

}  // namespace
}  // namespace gpd
