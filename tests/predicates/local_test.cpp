#include "predicates/local.h"

#include <gtest/gtest.h>

namespace gpd {
namespace {

Computation twoProc() {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(0);
  b.appendEvent(1);
  return std::move(b).build();
}

TEST(RelopTest, CompareAllOperators) {
  EXPECT_TRUE(compare(1, Relop::Less, 2));
  EXPECT_FALSE(compare(2, Relop::Less, 2));
  EXPECT_TRUE(compare(2, Relop::LessEq, 2));
  EXPECT_TRUE(compare(3, Relop::Greater, 2));
  EXPECT_TRUE(compare(2, Relop::GreaterEq, 2));
  EXPECT_TRUE(compare(2, Relop::Equal, 2));
  EXPECT_TRUE(compare(1, Relop::NotEqual, 2));
  EXPECT_FALSE(compare(2, Relop::NotEqual, 2));
}

TEST(RelopTest, ToStringAll) {
  EXPECT_EQ(toString(Relop::Less), "<");
  EXPECT_EQ(toString(Relop::LessEq), "<=");
  EXPECT_EQ(toString(Relop::Greater), ">");
  EXPECT_EQ(toString(Relop::GreaterEq), ">=");
  EXPECT_EQ(toString(Relop::Equal), "==");
  EXPECT_EQ(toString(Relop::NotEqual), "!=");
}

TEST(LocalPredicateTest, VarTrueAndFalse) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.defineBool(0, "x", {false, true, false});
  const LocalPredicate pt = varTrue(0, "x");
  const LocalPredicate pf = varFalse(0, "x");
  EXPECT_FALSE(pt.holds(t, 0));
  EXPECT_TRUE(pt.holds(t, 1));
  EXPECT_TRUE(pf.holds(t, 0));
  EXPECT_FALSE(pf.holds(t, 1));
  EXPECT_EQ(trueEvents(t, pt), (std::vector<int>{1}));
  EXPECT_EQ(trueEvents(t, pf), (std::vector<int>{0, 2}));
}

TEST(LocalPredicateTest, VarCompare) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.define(0, "n", {0, 5, 3});
  const LocalPredicate p = varCompare(0, "n", Relop::GreaterEq, 4);
  EXPECT_EQ(trueEvents(t, p), (std::vector<int>{1}));
  EXPECT_EQ(p.label, "n >= 4");
}

TEST(LocalPredicateTest, HoldsAtCut) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.defineBool(0, "x", {false, true, false});
  const LocalPredicate p = varTrue(0, "x");
  EXPECT_TRUE(p.holdsAtCut(t, Cut(std::vector<int>{1, 0})));
  EXPECT_FALSE(p.holdsAtCut(t, Cut(std::vector<int>{2, 0})));
}

TEST(ConjunctivePredicateTest, HoldsAtCutConjunction) {
  const Computation c = twoProc();
  VariableTrace t(c);
  t.defineBool(0, "x", {false, true, true});
  t.defineBool(1, "y", {true, false});
  ConjunctivePredicate pred{{varTrue(0, "x"), varTrue(1, "y")}};
  EXPECT_TRUE(pred.holdsAtCut(t, Cut(std::vector<int>{1, 0})));
  EXPECT_FALSE(pred.holdsAtCut(t, Cut(std::vector<int>{1, 1})));
  EXPECT_FALSE(pred.holdsAtCut(t, Cut(std::vector<int>{0, 0})));
}

}  // namespace
}  // namespace gpd
