#include "predicates/inequality.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd {
namespace {

TEST(IneqPredicateTest, SingularCheck) {
  IneqClausePredicate ok;
  ok.clauses = {{{0, "x", Relop::Less, 3}, {1, "y", Relop::GreaterEq, 2}},
                {{2, "z", Relop::NotEqual, 0}}};
  EXPECT_TRUE(ok.isSingular());

  IneqClausePredicate bad = ok;
  bad.clauses.push_back({{1, "w", Relop::Less, 9}});
  EXPECT_FALSE(bad.isSingular());
}

TEST(IneqPredicateTest, HoldsAtCut) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(1);
  const Computation c = std::move(b).build();
  VariableTrace t(c);
  t.define(0, "x", {0, 5});
  t.define(1, "y", {7, 1});
  IneqClausePredicate pred;
  pred.clauses = {{{0, "x", Relop::Greater, 3}, {1, "y", Relop::Less, 2}}};
  EXPECT_FALSE(pred.holdsAtCut(t, Cut(std::vector<int>{0, 0})));  // 0>3? 7<2? no
  EXPECT_TRUE(pred.holdsAtCut(t, Cut(std::vector<int>{1, 0})));   // 5>3
  EXPECT_TRUE(pred.holdsAtCut(t, Cut(std::vector<int>{0, 1})));   // 1<2
}

TEST(IneqPredicateTest, LoweringRejectsEquality) {
  ComputationBuilder b(1);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  VariableTrace t(c);
  t.define(0, "x", {0, 1});
  IneqClausePredicate pred;
  pred.clauses = {{{0, "x", Relop::Equal, 1}}};
  EXPECT_THROW(lowerToCnf(t, pred), CheckFailure);
}

TEST(IneqPredicateTest, LoweredCnfIsSingularPositive) {
  ComputationBuilder b(4);
  for (ProcessId p = 0; p < 4; ++p) b.appendEvent(p);
  const Computation c = std::move(b).build();
  VariableTrace t(c);
  for (ProcessId p = 0; p < 4; ++p) t.define(p, "x", {0, p});
  IneqClausePredicate pred;
  pred.clauses = {{{0, "x", Relop::Less, 1}, {1, "x", Relop::GreaterEq, 1}},
                  {{2, "x", Relop::NotEqual, 5}, {3, "x", Relop::LessEq, 2}}};
  const CnfPredicate cnf = lowerToCnf(t, pred);
  EXPECT_TRUE(cnf.isSingular());
  EXPECT_TRUE(cnf.isKCnf(2));
  for (const auto& clause : cnf.clauses) {
    for (const auto& lit : clause) EXPECT_TRUE(lit.positive);
  }
}

// Corollary 2's transformation preserves truth at every cut.
TEST(IneqPredicateTest, LoweringEquivalentOnRandomTraces) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 4;
    opt.eventsPerProcess = 4;
    const Computation c = randomComputation(opt, rng);
    VariableTrace t(c);
    defineRandomCounters(t, "v", 0, 2, rng);
    IneqClausePredicate pred;
    const Relop ops[] = {Relop::Less, Relop::LessEq, Relop::Greater,
                         Relop::GreaterEq, Relop::NotEqual};
    pred.clauses = {
        {{0, "v", ops[rng.index(5)], rng.uniform(-3, 3)},
         {1, "v", ops[rng.index(5)], rng.uniform(-3, 3)}},
        {{2, "v", ops[rng.index(5)], rng.uniform(-3, 3)},
         {3, "v", ops[rng.index(5)], rng.uniform(-3, 3)}}};
    const CnfPredicate cnf = lowerToCnf(t, pred);
    // Compare at every grid point (consistency is irrelevant to evaluation).
    std::vector<int> idx(c.processCount(), 0);
    while (true) {
      const Cut cut{std::vector<int>(idx)};
      EXPECT_EQ(pred.holdsAtCut(t, cut), cnf.holdsAtCut(t, cut))
          << "trial " << trial << " cut " << cut.toString();
      int p = 0;
      while (p < c.processCount() && idx[p] + 1 >= c.eventCount(p)) {
        idx[p] = 0;
        ++p;
      }
      if (p == c.processCount()) break;
      ++idx[p];
    }
  }
}

}  // namespace
}  // namespace gpd
