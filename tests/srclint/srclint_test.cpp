// End-to-end tests of the srclint analyzer, exercised by spawning the real
// binary (SRCLINT_PATH, injected by CMake) over the fixture files in
// tests/srclint/fixtures (SRCLINT_FIXTURES).
//
// Contract under test, per DESIGN.md §14:
//   - every check fires on its bad fixture (exit 1, check name in output)
//     and stays silent on the good twin (exit 0, empty output);
//   - `// srclint: allow(<check>)` silences a finding on its own line and
//     the next — counted in --stats, exit stays 0;
//   - an unknown check name inside allow(), or a malformed srclint: control
//     comment, is itself a diagnostic (code srclint-allow);
//   - exit taxonomy: 0 clean, 1 findings, 2 bad input/usage.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

namespace gpd {
namespace {

struct RunResult {
  int exitCode = -1;
  std::string output;  // stdout + stderr, interleaved
};

// Runs srclint with `args`, capturing combined output. The capture file is
// keyed by pid: ctest runs each discovered test as its own process, and a
// shared path would race (one process truncating or removing the file while
// another reads it back).
RunResult runLint(const std::string& args) {
  const std::string outPath = ::testing::TempDir() + "srclint_test_out." +
                              std::to_string(::getpid()) + ".txt";
  const std::string cmd = std::string(SRCLINT_PATH) + " " + args + " > " +
                          outPath + " 2>&1";
  const int status = std::system(cmd.c_str());
  RunResult r;
  EXPECT_NE(status, -1) << "failed to spawn " << cmd;
  EXPECT_TRUE(WIFEXITED(status)) << "srclint killed by signal: " << cmd;
  r.exitCode = WEXITSTATUS(status);
  std::ifstream in(outPath);
  std::ostringstream buf;
  buf << in.rdbuf();
  r.output = buf.str();
  std::remove(outPath.c_str());
  return r;
}

std::string fixture(const std::string& name) {
  return std::string(SRCLINT_FIXTURES) + "/" + name;
}

// One firing fixture and one silent twin per check.
struct CheckFixture {
  const char* check;
  const char* bad;
  const char* good;
};

const CheckFixture kCheckFixtures[] = {
    {"gpd-budget-charge", "src/detect/budget_bad.cpp",
     "src/detect/budget_good.cpp"},
    {"gpd-budget-charge", "src/detect/slice_bad.cpp",
     "src/detect/slice_good.cpp"},
    {"gpd-clock-discipline", "clock_bad.cpp", "clock_good.cpp"},
    {"gpd-span-raii", "span_bad.cpp", "span_good.cpp"},
    {"gpd-pool-capture", "pool_bad.cpp", "pool_good.cpp"},
    {"gpd-checkpoint-symmetry", "ckpt_bad.cpp", "ckpt_good.cpp"},
    {"gpd-checkpoint-symmetry", "ckpt_apply_bad.cpp", "ckpt_apply_good.cpp"},
    {"gpd-log-discipline", "src/service/log_bad.cpp",
     "src/service/log_good.cpp"},
};

TEST(SrclintChecks, EveryCheckFiresOnItsBadFixture) {
  for (const CheckFixture& cf : kCheckFixtures) {
    const RunResult r = runLint(fixture(cf.bad));
    EXPECT_EQ(r.exitCode, 1) << cf.check << " did not fire on " << cf.bad
                             << "\n" << r.output;
    EXPECT_NE(r.output.find(cf.check), std::string::npos)
        << cf.check << " missing from output for " << cf.bad << "\n"
        << r.output;
  }
}

TEST(SrclintChecks, EveryCheckIsSilentOnTheGoodTwin) {
  for (const CheckFixture& cf : kCheckFixtures) {
    const RunResult r = runLint(fixture(cf.good));
    EXPECT_EQ(r.exitCode, 0) << cf.check << " misfired on " << cf.good
                             << "\n" << r.output;
    EXPECT_TRUE(r.output.empty()) << r.output;
  }
}

TEST(SrclintChecks, CheckFilterRestrictsTheRun) {
  // The clock fixture is dirty, but only the span check is enabled.
  const RunResult r =
      runLint("--checks gpd-span-raii " + fixture("clock_bad.cpp"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
}

TEST(SrclintChecks, JsonOutputCarriesFileAndCode) {
  const RunResult r = runLint("-f json " + fixture("clock_bad.cpp"));
  EXPECT_EQ(r.exitCode, 1);
  EXPECT_NE(r.output.find("\"code\": \"gpd-clock-discipline\""),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("clock_bad.cpp"), std::string::npos) << r.output;
}

TEST(SrclintSuppression, AllowedFindingExitsZeroButCountsInStats) {
  const RunResult r = runLint("--stats " + fixture("allow_ok.cpp"));
  EXPECT_EQ(r.exitCode, 0) << r.output;
  // The finding is still counted: 1 found, 1 allowed.
  EXPECT_NE(r.output.find("gpd-clock-discipline: 1 finding(s), 1 allowed"),
            std::string::npos)
      << r.output;
}

TEST(SrclintSuppression, UnknownCheckNameInAllowIsADiagnostic) {
  const RunResult r = runLint(fixture("allow_unknown.cpp"));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("srclint-allow"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("gpd-no-such-check"), std::string::npos) << r.output;
}

TEST(SrclintSuppression, MalformedControlCommentIsADiagnostic) {
  const RunResult r = runLint(fixture("allow_malformed.cpp"));
  EXPECT_EQ(r.exitCode, 1) << r.output;
  EXPECT_NE(r.output.find("srclint-allow"), std::string::npos) << r.output;
}

TEST(SrclintCli, ListChecksNamesEveryCheck) {
  const RunResult r = runLint("--list-checks");
  EXPECT_EQ(r.exitCode, 0);
  for (const CheckFixture& cf : kCheckFixtures) {
    EXPECT_NE(r.output.find(cf.check), std::string::npos) << r.output;
  }
}

TEST(SrclintCli, UsageErrorsExitTwo) {
  EXPECT_EQ(runLint("").exitCode, 2);                        // no inputs
  EXPECT_EQ(runLint("--checks no-such-check .").exitCode, 2);
  EXPECT_EQ(runLint("-f yaml .").exitCode, 2);
  EXPECT_EQ(runLint("/nonexistent/gpd-src").exitCode, 2);
}

TEST(SrclintCli, DirectoryScanCoversBothFixtureTrees) {
  // Scanning the whole fixtures directory finds every bad fixture at once;
  // the per-check stats line proves each check ran (and only allow_ok.cpp's
  // finding was suppressed).
  const RunResult r = runLint("--stats " + std::string(SRCLINT_FIXTURES));
  EXPECT_EQ(r.exitCode, 1);
  // clock_bad.cpp + allow_ok.cpp = 2 found, 1 allowed.
  EXPECT_NE(r.output.find("gpd-clock-discipline: 2 finding(s), 1 allowed"),
            std::string::npos)
      << r.output;
  for (const CheckFixture& cf : kCheckFixtures) {
    EXPECT_EQ(r.output.find(std::string(cf.check) + ": 0 finding(s)"),
              std::string::npos)
        << cf.check << " found nothing across the fixture tree\n" << r.output;
  }
}

}  // namespace
}  // namespace gpd
