// srclint fixture — the allow() below names a check that does not exist;
// srclint must report that as its own diagnostic (code srclint-allow).
namespace fx {

// srclint: allow(gpd-no-such-check)
int zero() { return 0; }

}  // namespace fx
