// srclint fixture — silent twin of clock_bad.cpp: time is read through the
// sanctioned steadyNowNanos() funnel, never from the clock directly.
#include <cstdint>

namespace fx {

std::uint64_t steadyNowNanos();

std::uint64_t elapsed(std::uint64_t startNs) {
  return steadyNowNanos() - startNs;
}

}  // namespace fx
