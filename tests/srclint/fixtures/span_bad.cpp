// srclint fixture — gpd-span-raii MUST fire here: the Span is a discarded
// temporary that closes at the ';', recording a zero-length span instead of
// covering the work below it.
namespace obs {
struct Span {
  explicit Span(const char* name);
  ~Span();
};
}  // namespace obs

namespace fx {

int work();

int tracedWork() {
  obs::Span("fx.traced_work");
  return work();
}

}  // namespace fx
