// srclint fixture — gpd-checkpoint-symmetry MUST fire here: writeThing
// emits the "beta" field but the paired readThing never matches it, so a
// checkpoint written today silently loses the field on restore.
#include <istream>
#include <ostream>
#include <string>

namespace fx {

void writeThing(std::ostream& os, int a, int b) {
  os << "alpha " << a << "\n";
  os << "beta " << b << "\n";
}

void readThing(std::istream& is, int& a) {
  std::string key;
  while (is >> key) {
    if (key == "alpha") is >> a;
  }
}

}  // namespace fx
