// srclint fixture — gpd-checkpoint-symmetry MUST fire here via the
// capture*/apply* pairing (the replication-record shape): captureState
// emits the "cursor" key but the paired applyState never reads it, so a
// replica applying this record silently drops the field.
#include <istream>
#include <ostream>
#include <string>

namespace fx {

void captureState(std::ostream& os, int epoch, int cursor) {
  os << "epoch " << epoch << "\n";
  os << "cursor " << cursor << "\n";
}

void applyState(std::istream& is, int& epoch) {
  std::string key;
  while (is >> key) {
    if (key == "epoch") is >> epoch;
  }
}

}  // namespace fx
