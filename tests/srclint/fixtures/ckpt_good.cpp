// srclint fixture — silent twin of ckpt_bad.cpp: every key writeThing emits
// is matched back in the paired readThing.
#include <istream>
#include <ostream>
#include <string>

namespace fx {

void writeThing(std::ostream& os, int a, int b) {
  os << "alpha " << a << "\n";
  os << "beta " << b << "\n";
}

void readThing(std::istream& is, int& a, int& b) {
  std::string key;
  while (is >> key) {
    if (key == "alpha") is >> a;
    if (key == "beta") is >> b;
  }
}

}  // namespace fx
