// srclint fixture — silent twin of pool_bad.cpp showing the three
// sanctioned shared-mutation patterns inside a Pool::run lambda: an atomic,
// a per-worker slot indexed by the worker id, and a mutex-guarded section.
#include <atomic>
#include <mutex>
#include <vector>

namespace par {
struct Pool {
  template <class F>
  void run(F f);
};
}  // namespace par

namespace fx {

long tally(par::Pool& pool, int n) {
  std::atomic<long> total{0};
  std::vector<long> slots(4, 0);
  pool.run([&](int w) {
    for (int i = w; i < n; i += 4) {
      slots[w] += i;
      total += 1;
    }
  });

  std::mutex mu;
  long guarded = 0;
  pool.run([&](int w) {
    std::lock_guard<std::mutex> lock(mu);
    guarded += w;
  });

  return total.load() + guarded + slots[0];
}

}  // namespace fx
