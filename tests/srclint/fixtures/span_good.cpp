// srclint fixture — silent twin of span_bad.cpp: the Span binds to a named
// local (what GPD_TRACE_SPAN expands to), so it lives until scope exit.
namespace obs {
struct Span {
  explicit Span(const char* name);
  ~Span();
};
}  // namespace obs

namespace fx {

int work();

int tracedWork() {
  obs::Span span("fx.traced_work");
  return work();
}

}  // namespace fx
