// srclint fixture — silent twin of log_bad.cpp: the same report emitted
// through the structured log module (leveled, rate-limited, JSON-capable)
// plus the sanctioned rawStderr() accessor for a usage banner.
#include <ostream>
#include <string>

namespace fx {

void error(const char* component, const std::string& message);
std::ostream& rawStderr();

void reportDrop(int count) {
  error("service", "dropped " + std::to_string(count) + " frames");
}

int usage() {
  rawStderr() << "usage: fx [--flag]\n";
  return 1;
}

}  // namespace fx
