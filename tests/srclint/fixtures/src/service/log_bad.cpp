// srclint fixture — gpd-log-discipline MUST fire here (twice): a service
// translation unit writing raw std::cerr and fprintf(stderr, ...) bypasses
// the structured log module's levels, rate limiting, and JSON mode.
#include <cstdio>
#include <iostream>

namespace fx {

void reportDrop(int count) {
  std::cerr << "dropped " << count << " frames\n";
  std::fprintf(stderr, "dropped %d frames\n", count);
}

}  // namespace fx
