// srclint fixture — silent twin of budget_bad.cpp: the same kernel sweep,
// once charging the budget directly in the loop body and once through a
// helper whose callee chain charges (exercises the transitive
// charging-functions closure).
#include <vector>

namespace fx {

int findConsistentSelection(int term);

struct Budget {
  bool chargeCombination();
};

bool step(Budget* b) { return b->chargeCombination(); }

int sweepDirect(const std::vector<int>& terms, Budget* b) {
  int acc = 0;
  for (int t : terms) {
    if (!b->chargeCombination()) break;
    acc += findConsistentSelection(t);
  }
  return acc;
}

int sweepViaHelper(const std::vector<int>& terms, Budget* b) {
  int acc = 0;
  for (int t : terms) {
    if (!step(b)) break;
    acc += findConsistentSelection(t);
  }
  return acc;
}

}  // namespace fx
