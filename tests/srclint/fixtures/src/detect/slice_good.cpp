// srclint fixture — silent twin of slice_bad.cpp: the same per-event
// fixpoint sweep, but the loop charges the budget before every kernel call,
// so an exhausted budget stops the slice build mid-sweep (the slice is then
// reported incomplete instead of blocking the deadline).
#include <vector>

namespace fx {

struct Cut {
  std::vector<int> last;
};

struct Budget {
  bool chargeCut();
};

Cut detectLinearFrom(const Cut& from);

std::vector<Cut> buildSlice(const std::vector<Cut>& starts, Budget* budget) {
  std::vector<Cut> irreducibles;
  for (const Cut& from : starts) {
    if (!budget->chargeCut()) break;
    irreducibles.push_back(detectLinearFrom(from));
  }
  return irreducibles;
}

}  // namespace fx
