// srclint fixture — gpd-budget-charge MUST fire here: the sweep loop calls
// an enumeration kernel (findConsistentSelection) and nothing in the loop
// body or its callee chain charges a Budget or polls a CancelToken.
#include <vector>

namespace fx {

int findConsistentSelection(int term);

int sweep(const std::vector<int>& terms) {
  int acc = 0;
  for (int t : terms) {
    acc += findConsistentSelection(t);
  }
  return acc;
}

}  // namespace fx
