// srclint fixture — gpd-budget-charge MUST fire here: the slice-building
// loop runs the linear-detector fixpoint (detectLinearFrom) once per event
// and nothing in the loop body or its callee chain charges a Budget or
// polls a CancelToken. This is exactly the pre-fix computeSlice shape: an
// unbudgeted O(|E|) sweep of budgeted kernels that a deadline could never
// stop.
#include <vector>

namespace fx {

struct Cut {
  std::vector<int> last;
};

Cut detectLinearFrom(const Cut& from);

std::vector<Cut> buildSlice(const std::vector<Cut>& starts) {
  std::vector<Cut> irreducibles;
  for (const Cut& from : starts) {
    irreducibles.push_back(detectLinearFrom(from));
  }
  return irreducibles;
}

}  // namespace fx
