// srclint fixture — a true gpd-clock-discipline finding carrying a valid
// suppression: srclint must count it in --stats but exit 0.
#include <chrono>

namespace fx {

long long nowNs() {
  // srclint: allow(gpd-clock-discipline)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fx
