// srclint fixture — gpd-pool-capture MUST fire here: `total` is captured by
// reference and mutated inside the Pool::run lambda with no atomic, no
// per-worker slot, and no lock — every worker races on it.
namespace par {
struct Pool {
  template <class F>
  void run(F f);
};
}  // namespace par

namespace fx {

long tally(par::Pool& pool, int n) {
  long total = 0;
  pool.run([&](int w) {
    for (int i = w; i < n; i += 4) {
      total += i;
    }
  });
  return total;
}

}  // namespace fx
