// srclint fixture — silent twin of ckpt_apply_bad.cpp: every key
// captureState emits is matched back in the paired applyState.
#include <istream>
#include <ostream>
#include <string>

namespace fx {

void captureState(std::ostream& os, int epoch, int cursor) {
  os << "epoch " << epoch << "\n";
  os << "cursor " << cursor << "\n";
}

void applyState(std::istream& is, int& epoch, int& cursor) {
  std::string key;
  while (is >> key) {
    if (key == "epoch") is >> epoch;
    if (key == "cursor") is >> cursor;
  }
}

}  // namespace fx
