// srclint fixture — a "srclint:" control comment that is not a well-formed
// allow() must be reported rather than silently ignored.
namespace fx {

// srclint: allow()
int zero() { return 0; }

}  // namespace fx
