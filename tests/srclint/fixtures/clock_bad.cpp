// srclint fixture — gpd-clock-discipline MUST fire here: a direct
// steady_clock::now() outside src/control and src/obs.
#include <chrono>

namespace fx {

long long nowNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fx
