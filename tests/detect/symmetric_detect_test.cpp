#include "detect/symmetric.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"

namespace gpd::detect {
namespace {

std::vector<SumTerm> allVars(const Computation& c) {
  std::vector<SumTerm> out;
  for (ProcessId p = 0; p < c.processCount(); ++p) out.push_back({p, "x"});
  return out;
}

struct SymCase {
  const char* name;
  SymmetricPredicate (*build)(std::vector<SumTerm>);
};

SymmetricPredicate buildXor(std::vector<SumTerm> v) {
  return exclusiveOr(std::move(v));
}
SymmetricPredicate buildNoMajority(std::vector<SumTerm> v) {
  return absenceOfSimpleMajority(std::move(v));
}
SymmetricPredicate buildNoTwoThirds(std::vector<SumTerm> v) {
  return absenceOfTwoThirdsMajority(std::move(v));
}
SymmetricPredicate buildNotAllEqual(std::vector<SumTerm> v) {
  return notAllEqual(std::move(v));
}
SymmetricPredicate buildExactlyTwo(std::vector<SumTerm> v) {
  return exactlyK(std::move(v), 2);
}

class SymmetricSweep : public ::testing::TestWithParam<SymCase> {};

TEST_P(SymmetricSweep, PossiblyMatchesLattice) {
  const SymCase& sc = GetParam();
  Rng rng(1234 + sc.name[0]);
  int hits = 0;
  for (int trial = 0; trial < 50; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 4;
    opt.eventsPerProcess = 3;
    opt.messageProbability = rng.real() * 0.7;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.2 + 0.3 * rng.real(), rng);
    const VectorClocks vc(c);
    const SymmetricPredicate pred = sc.build(allVars(c));
    const auto witness = possiblySymmetric(vc, trace, pred);
    const bool expected = lattice::possiblyExhaustive(vc, [&](const Cut& cut) {
      return pred.holdsAtCut(trace, cut);
    });
    ASSERT_EQ(witness.has_value(), expected)
        << sc.name << " trial " << trial;
    if (witness) {
      ++hits;
      EXPECT_TRUE(vc.isConsistent(*witness));
      EXPECT_TRUE(pred.holdsAtCut(trace, *witness));
    }
  }
  EXPECT_GT(hits, 0) << sc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Predicates, SymmetricSweep,
    ::testing::Values(SymCase{"xor", &buildXor},
                      SymCase{"noMajority", &buildNoMajority},
                      SymCase{"noTwoThirds", &buildNoTwoThirds},
                      SymCase{"notAllEqual", &buildNotAllEqual},
                      SymCase{"exactlyTwo", &buildExactlyTwo}),
    [](const ::testing::TestParamInfo<SymCase>& info) {
      return info.param.name;
    });

TEST(SymmetricDetectTest, DefinitelyMatchesLattice) {
  Rng rng(4321);
  for (int trial = 0; trial < 30; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.4;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.5, rng);
    const VectorClocks vc(c);
    const SymmetricPredicate pred = notAllEqual(allVars(c));
    const bool got = definitelySymmetric(vc, trace, pred);
    const bool expected =
        lattice::definitelyExhaustive(vc, [&](const Cut& cut) {
          return pred.holdsAtCut(trace, cut);
        });
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(SymmetricDetectTest, UnsatisfiableCountSetNeverPossible) {
  ComputationBuilder b(3);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.defineBool(0, "x", {false, true});
  trace.defineBool(1, "x", {false});
  trace.defineBool(2, "x", {true});
  const VectorClocks vc(c);
  // Odd arity: absence of simple majority is unsatisfiable by definition.
  const auto pred = absenceOfSimpleMajority(allVars(c));
  EXPECT_TRUE(pred.trueCounts.empty());
  EXPECT_FALSE(possiblySymmetric(vc, trace, pred).has_value());
}

}  // namespace
}  // namespace gpd::detect
