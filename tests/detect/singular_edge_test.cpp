// Edge cases of the singular-CNF detectors: spare processes outside every
// clause, negative-only clauses, both literals of a clause on one process,
// unit clauses mixed with wide ones, and true events at the initial event.
#include <gtest/gtest.h>

#include "computation/random.h"
#include "detect/cpdsc.h"
#include "detect/singular_cnf.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"

namespace gpd::detect {
namespace {

bool latticeTruth(const VectorClocks& vc, const VariableTrace& trace,
                  const CnfPredicate& pred) {
  return lattice::possiblyExhaustive(
      vc, [&](const Cut& c) { return pred.holdsAtCut(trace, c); });
}

TEST(SingularEdgeTest, SpareProcessesOutsideAllClauses) {
  Rng rng(640);
  for (int trial = 0; trial < 30; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 5;  // clauses only mention 4 of them
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "b", 0.35, rng);
    CnfPredicate pred;
    pred.clauses = {{{0, "b", true}, {2, "b", rng.chance(0.5)}},
                    {{1, "b", rng.chance(0.5)}, {3, "b", true}}};
    const VectorClocks vc(c);
    const bool expected = latticeTruth(vc, trace, pred);
    EXPECT_EQ(detectSingularByProcessEnumeration(vc, trace, pred).found,
              expected)
        << "trial " << trial;
    EXPECT_EQ(detectSingularByChainCover(vc, trace, pred).found, expected)
        << "trial " << trial;
  }
}

TEST(SingularEdgeTest, NegativeOnlyClauses) {
  Rng rng(641);
  for (int trial = 0; trial < 30; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 4;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "b", 0.7, rng);  // mostly true → negatives rare
    CnfPredicate pred;
    pred.clauses = {{{0, "b", false}, {1, "b", false}},
                    {{2, "b", false}, {3, "b", false}}};
    const VectorClocks vc(c);
    const bool expected = latticeTruth(vc, trace, pred);
    EXPECT_EQ(detectSingularByChainCover(vc, trace, pred).found, expected)
        << "trial " << trial;
  }
}

TEST(SingularEdgeTest, BothLiteralsOnOneProcess) {
  // (b ∨ ¬c) with both variables on p0 — still singular (clauses don't
  // share processes), and the clause's true events live on a single chain.
  Rng rng(642);
  for (int trial = 0; trial < 30; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "b", 0.3, rng);
    defineRandomBools(trace, "c", 0.5, rng);
    CnfPredicate pred;
    pred.clauses = {{{0, "b", true}, {0, "c", false}},
                    {{1, "b", true}, {2, "b", true}}};
    ASSERT_TRUE(pred.isSingular());
    const VectorClocks vc(c);
    const bool expected = latticeTruth(vc, trace, pred);
    EXPECT_EQ(detectSingularByProcessEnumeration(vc, trace, pred).found,
              expected)
        << "trial " << trial;
    EXPECT_EQ(detectSingularByChainCover(vc, trace, pred).found, expected)
        << "trial " << trial;
    const CpdscResult special = detectSingularSpecialCase(vc, trace, pred);
    if (special.applicable()) {
      EXPECT_EQ(special.found(), expected) << "trial " << trial;
    }
  }
}

TEST(SingularEdgeTest, MixedClauseWidths) {
  Rng rng(643);
  for (int trial = 0; trial < 30; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 4;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.4;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "b", 0.4, rng);
    CnfPredicate pred;
    pred.clauses = {{{0, "b", true}},  // unit clause: a conjunct
                    {{1, "b", true}, {2, "b", false}, {3, "b", true}}};
    const VectorClocks vc(c);
    const bool expected = latticeTruth(vc, trace, pred);
    EXPECT_EQ(detectSingularByChainCover(vc, trace, pred).found, expected)
        << "trial " << trial;
  }
}

TEST(SingularEdgeTest, TrueOnlyAtInitialEvents) {
  // The initial cut is the only witness: all variables flip false at their
  // first real event.
  ComputationBuilder b(4);
  for (ProcessId p = 0; p < 4; ++p) b.appendEvent(p);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  for (ProcessId p = 0; p < 4; ++p) trace.defineBool(p, "b", {true, false});
  CnfPredicate pred;
  pred.clauses = {{{0, "b", true}, {1, "b", true}},
                  {{2, "b", true}, {3, "b", true}}};
  const VectorClocks vc(c);
  const auto res = detectSingularByChainCover(vc, trace, pred);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.cut->level(), 0);
}

TEST(SingularEdgeTest, EmptyCnfIsTriviallyTrue) {
  ComputationBuilder b(2);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  const VectorClocks vc(c);
  CnfPredicate pred;  // no clauses
  const auto res = detectSingularByChainCover(vc, trace, pred);
  EXPECT_TRUE(res.found);
}

}  // namespace
}  // namespace gpd::detect
