#include "detect/definitely_conjunctive.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd::detect {
namespace {

Computation flat(int procs, int events) {
  ComputationBuilder b(procs);
  for (ProcessId p = 0; p < procs; ++p) {
    for (int i = 0; i < events; ++i) b.appendEvent(p);
  }
  return std::move(b).build();
}

TEST(TrueIntervalsTest, ExtractsMaximalRuns) {
  const Computation c = flat(1, 6);
  VariableTrace t(c);
  t.defineBool(0, "x", {false, true, true, false, true, false, true});
  const auto intervals = trueIntervals(t, varTrue(0, "x"));
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0], (TrueInterval{{0, 1}, {0, 2}}));
  EXPECT_EQ(intervals[1], (TrueInterval{{0, 4}, {0, 4}}));
  EXPECT_EQ(intervals[2], (TrueInterval{{0, 6}, {0, 6}}));
}

TEST(TrueIntervalsTest, AlwaysTrueIsOneInterval) {
  const Computation c = flat(1, 3);
  VariableTrace t(c);
  t.defineBool(0, "x", {true, true, true, true});
  const auto intervals = trueIntervals(t, varTrue(0, "x"));
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0], (TrueInterval{{0, 0}, {0, 3}}));
}

TEST(DefinitelyConjunctiveTest, NeverTrueConjunctFails) {
  const Computation c = flat(2, 2);
  VariableTrace t(c);
  t.defineBool(0, "x", {true, true, true});
  t.defineBool(1, "x", {false, false, false});
  const VectorClocks vc(c);
  ConjunctivePredicate pred{{varTrue(0, "x"), varTrue(1, "x")}};
  EXPECT_FALSE(definitelyConjunctive(vc, t, pred).holds);
}

TEST(DefinitelyConjunctiveTest, AlwaysTrueEverywhereHolds) {
  const Computation c = flat(3, 2);
  VariableTrace t(c);
  for (ProcessId p = 0; p < 3; ++p) {
    t.defineBool(p, "x", {true, true, true});
  }
  const VectorClocks vc(c);
  ConjunctivePredicate pred{
      {varTrue(0, "x"), varTrue(1, "x"), varTrue(2, "x")}};
  const auto res = definitelyConjunctive(vc, t, pred);
  EXPECT_TRUE(res.holds);
  ASSERT_EQ(res.witness.size(), 3u);
}

TEST(DefinitelyConjunctiveTest, PossiblyButNotDefinitely) {
  // Both true only in the middle of independent processes: a run can pass
  // them at different times.
  const Computation c = flat(2, 2);
  VariableTrace t(c);
  t.defineBool(0, "x", {false, true, false});
  t.defineBool(1, "x", {false, true, false});
  const VectorClocks vc(c);
  ConjunctivePredicate pred{{varTrue(0, "x"), varTrue(1, "x")}};
  EXPECT_FALSE(definitelyConjunctive(vc, t, pred).holds);
  EXPECT_TRUE(lattice::possiblyExhaustive(vc, [&](const Cut& cut) {
    return pred.holdsAtCut(t, cut);
  }));
}

TEST(DefinitelyConjunctiveTest, MessagesCanForceOverlap) {
  // p0 true from its start; p1 becomes true after receiving from p0's true
  // interval and stays true: every run has a moment with both true.
  ComputationBuilder b(2);
  const EventId s = b.appendEvent(0);
  b.appendEvent(0);
  const EventId r = b.appendEvent(1);
  b.addMessage(s, r);
  const Computation c = std::move(b).build();
  VariableTrace t(c);
  t.defineBool(0, "x", {true, true, true});
  t.defineBool(1, "x", {false, true});
  const VectorClocks vc(c);
  ConjunctivePredicate pred{{varTrue(0, "x"), varTrue(1, "x")}};
  const auto res = definitelyConjunctive(vc, t, pred);
  EXPECT_TRUE(res.holds);
}

TEST(DefinitelyConjunctiveTest, EmptyPredicateHolds) {
  const Computation c = flat(2, 1);
  VariableTrace t(c);
  const VectorClocks vc(c);
  EXPECT_TRUE(definitelyConjunctive(vc, t, {}).holds);
}

TEST(DefinitelyConjunctiveTest, RejectsDuplicateProcess) {
  const Computation c = flat(2, 1);
  VariableTrace t(c);
  t.defineBool(0, "x", {true, true});
  const VectorClocks vc(c);
  ConjunctivePredicate pred{{varTrue(0, "x"), varTrue(0, "x")}};
  EXPECT_THROW(definitelyConjunctive(vc, t, pred), CheckFailure);
}

// The headline property: the interval algorithm ≡ exhaustive lattice
// definitely, over many random computations and traces.
TEST(DefinitelyConjunctiveTest, MatchesLatticeGroundTruth) {
  Rng rng(86420);
  int holdCount = 0;
  for (int trial = 0; trial < 150; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(3));
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(5));
    opt.messageProbability = rng.real() * 0.8;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.3 + 0.5 * rng.real(), rng);
    ConjunctivePredicate pred;
    for (ProcessId p = 0; p < c.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "x"));
    }
    const VectorClocks vc(c);
    const auto res = definitelyConjunctive(vc, trace, pred);
    const bool expected =
        lattice::definitelyExhaustive(vc, [&](const Cut& cut) {
          return pred.holdsAtCut(trace, cut);
        });
    ASSERT_EQ(res.holds, expected) << "trial " << trial;
    if (res.holds) {
      ++holdCount;
      // Witness intervals pairwise definitely-overlap.
      for (std::size_t i = 0; i < res.witness.size(); ++i) {
        for (std::size_t j = 0; j < res.witness.size(); ++j) {
          if (i == j) continue;
          const TrueInterval& a = res.witness[i];
          const TrueInterval& b = res.witness[j];
          if (b.hi.index + 1 < c.eventCount(b.hi.process)) {
            EXPECT_TRUE(
                vc.precedes(a.lo, {b.hi.process, b.hi.index + 1}));
          }
        }
      }
    }
  }
  EXPECT_GT(holdCount, 5);
  EXPECT_LT(holdCount, 145);
}

// Subset-of-processes conjunctions treat unmentioned processes as true.
TEST(DefinitelyConjunctiveTest, PartialConjunctionMatchesLattice) {
  Rng rng(97531);
  for (int trial = 0; trial < 60; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 4;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.6, rng);
    ConjunctivePredicate pred{{varTrue(1, "x"), varTrue(3, "x")}};
    const VectorClocks vc(c);
    const auto res = definitelyConjunctive(vc, trace, pred);
    const bool expected =
        lattice::definitelyExhaustive(vc, [&](const Cut& cut) {
          return pred.holdsAtCut(trace, cut);
        });
    EXPECT_EQ(res.holds, expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace gpd::detect
