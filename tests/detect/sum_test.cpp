#include "detect/sum.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "graph/linear_extension.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd::detect {
namespace {

std::vector<SumTerm> allTerms(const Computation& c, const std::string& var) {
  std::vector<SumTerm> terms;
  for (ProcessId p = 0; p < c.processCount(); ++p) terms.push_back({p, var});
  return terms;
}

// Ground-truth extrema by enumerating every consistent cut.
std::pair<std::int64_t, std::int64_t> bruteExtrema(
    const VectorClocks& vc, const VariableTrace& trace,
    const std::vector<SumTerm>& terms) {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  bool first = true;
  lattice::forEachConsistentCut(vc, [&](const Cut& cut) {
    std::int64_t s = 0;
    for (const SumTerm& t : terms) s += trace.valueAtCut(cut, t.process, t.var);
    if (first) {
      lo = hi = s;
      first = false;
    } else {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    return true;
  });
  return {lo, hi};
}

TEST(SumExtremaTest, HandComputedExample) {
  // p0 counts 0,1,2 ; p1 counts 0,-1 ; message (0,1) → (1,1) constrains.
  ComputationBuilder b(2);
  const EventId s = b.appendEvent(0);
  b.appendEvent(0);
  const EventId r = b.appendEvent(1);
  b.addMessage(s, r);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.define(0, "x", {0, 1, 2});
  trace.define(1, "x", {0, -1});
  const VectorClocks vc(c);
  const SumExtrema ext = sumExtrema(vc, trace, allTerms(c, "x"));
  // Consistent cuts: [0,0]=0 [1,0]=1 [2,0]=2 [1,1]=0 [2,1]=1.
  EXPECT_EQ(ext.minSum, 0);
  EXPECT_EQ(ext.maxSum, 2);
  EXPECT_EQ(ext.argMax.last, (std::vector<int>{2, 0}));
}

TEST(SumExtremaTest, MatchesBruteForceOnRandomTraces) {
  Rng rng(4242);
  for (int trial = 0; trial < 60; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(3));
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(4));
    opt.messageProbability = rng.real() * 0.8;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    // Arbitrary step sizes — extrema are polynomial regardless of Δ.
    defineRandomCounters(trace, "x", rng.uniform(-3, 3),
                         1 + static_cast<int>(rng.index(4)), rng);
    const VectorClocks vc(c);
    const auto terms = allTerms(c, "x");
    const SumExtrema ext = sumExtrema(vc, trace, terms);
    const auto [lo, hi] = bruteExtrema(vc, trace, terms);
    ASSERT_EQ(ext.minSum, lo) << "trial " << trial;
    ASSERT_EQ(ext.maxSum, hi) << "trial " << trial;
    // Witness cuts achieve the extrema and are consistent.
    EXPECT_TRUE(vc.isConsistent(ext.argMin));
    EXPECT_TRUE(vc.isConsistent(ext.argMax));
    std::int64_t sMin = 0;
    std::int64_t sMax = 0;
    for (const SumTerm& t : terms) {
      sMin += trace.valueAtCut(ext.argMin, t.process, t.var);
      sMax += trace.valueAtCut(ext.argMax, t.process, t.var);
    }
    EXPECT_EQ(sMin, lo);
    EXPECT_EQ(sMax, hi);
  }
}

TEST(PossiblySumTest, InequalityRelopsMatchLattice) {
  Rng rng(555);
  const Relop relops[] = {Relop::Less, Relop::LessEq, Relop::Greater,
                          Relop::GreaterEq, Relop::NotEqual};
  for (int trial = 0; trial < 60; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomCounters(trace, "x", 0, 2, rng);
    const VectorClocks vc(c);
    SumPredicate pred;
    pred.terms = allTerms(c, "x");
    pred.relop = relops[rng.index(5)];
    pred.k = rng.uniform(-4, 4);
    const auto witness = possiblySum(vc, trace, pred);
    const bool expected = lattice::possiblyExhaustive(vc, [&](const Cut& cut) {
      return pred.holdsAtCut(trace, cut);
    });
    ASSERT_EQ(witness.has_value(), expected)
        << "trial " << trial << " pred " << pred.toString();
    if (witness) {
      EXPECT_TRUE(vc.isConsistent(*witness));
      EXPECT_TRUE(pred.holdsAtCut(trace, *witness));
    }
  }
}

TEST(PossiblySumTest, ExactSumBoundedMatchesLattice) {
  Rng rng(808);
  int hits = 0;
  for (int trial = 0; trial < 80; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(3));
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(4));
    opt.messageProbability = rng.real() * 0.7;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomCounters(trace, "x", 0, 1, rng);  // |Δ| ≤ 1
    const VectorClocks vc(c);
    SumPredicate pred;
    pred.terms = allTerms(c, "x");
    pred.relop = Relop::Equal;
    pred.k = rng.uniform(-3, 3);
    const auto witness = possiblySum(vc, trace, pred);
    const auto exhaustive = detectExactSumExhaustive(vc, trace, pred);
    ASSERT_EQ(witness.has_value(), exhaustive.has_value())
        << "trial " << trial << " K=" << pred.k;
    if (witness) {
      ++hits;
      EXPECT_TRUE(vc.isConsistent(*witness));
      EXPECT_EQ(pred.sumAtCut(trace, *witness), pred.k);
    }
  }
  EXPECT_GT(hits, 10);
}

TEST(PossiblySumTest, UnboundedDeltaRejectedForEquality) {
  ComputationBuilder b(1);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.define(0, "x", {0, 5});
  const VectorClocks vc(c);
  SumPredicate pred{{{0, "x"}}, Relop::Equal, 3, };
  EXPECT_THROW(possiblySum(vc, trace, pred), CheckFailure);
  // The exhaustive fallback handles it.
  EXPECT_FALSE(detectExactSumExhaustive(vc, trace, pred).has_value());
  pred.k = 5;
  EXPECT_TRUE(detectExactSumExhaustive(vc, trace, pred).has_value());
}

TEST(PossiblySumTest, InitialCutWitnessWhenBaseEqualsK) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.define(0, "x", {2, 3});
  trace.define(1, "x", {5});
  const VectorClocks vc(c);
  SumPredicate pred{{{0, "x"}, {1, "x"}}, Relop::Equal, 7};
  const auto witness = possiblySum(vc, trace, pred);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->level(), 0);
}

// Theorem 7(2): definitely(S = K) ⟺ the inequality-modality disjunction.
// definitelySum implements the reduction; compare with the direct
// lattice-based definitely of S = K itself.
TEST(DefinitelySumTest, Theorem7ReductionMatchesDirectDefinitely) {
  Rng rng(919);
  int holds = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(2));
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(3));
    opt.messageProbability = rng.real() * 0.7;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomCounters(trace, "x", 0, 1, rng);
    const VectorClocks vc(c);
    SumPredicate pred;
    pred.terms = allTerms(c, "x");
    pred.relop = Relop::Equal;
    pred.k = rng.uniform(-2, 2);
    const bool viaTheorem = definitelySum(vc, trace, pred);
    const bool direct = lattice::definitelyExhaustive(vc, [&](const Cut& cut) {
      return pred.sumAtCut(trace, cut) == pred.k;
    });
    ASSERT_EQ(viaTheorem, direct) << "trial " << trial << " K=" << pred.k;
    holds += viaTheorem;
  }
  EXPECT_GT(holds, 0);
}

TEST(DefinitelySumTest, InequalityModalities) {
  Rng rng(929);
  for (int trial = 0; trial < 30; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.4;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomCounters(trace, "x", 0, 2, rng);
    const VectorClocks vc(c);
    SumPredicate pred;
    pred.terms = allTerms(c, "x");
    pred.relop = trial % 2 ? Relop::GreaterEq : Relop::LessEq;
    pred.k = rng.uniform(-3, 3);
    const bool got = definitelySum(vc, trace, pred);
    const bool expected = lattice::definitelyExhaustive(vc, [&](const Cut& cut) {
      return pred.holdsAtCut(trace, cut);
    });
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

// Theorem 4's intermediate-value statement itself, on random runs: along any
// path of the lattice, a |Δ| ≤ 1 sum visits every value between its
// endpoints.
TEST(Theorem4Test, IntermediateValueAlongRuns) {
  Rng rng(939);
  for (int trial = 0; trial < 30; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomCounters(trace, "x", 0, 1, rng);
    const VectorClocks vc(c);
    const auto terms = allTerms(c, "x");
    // Walk one random run and record the sums visited.
    const graph::Dag dag = c.toDag();
    const auto order = graph::randomLinearExtension(dag, rng);
    Cut cut = initialCut(c);
    std::vector<std::int64_t> sums;
    int placed = 0;
    auto sumOf = [&](const Cut& cc) {
      std::int64_t s = 0;
      for (const SumTerm& t : terms) s += trace.valueAtCut(cc, t.process, t.var);
      return s;
    };
    for (int node : order) {
      const EventId e = c.event(node);
      cut.last[e.process] = e.index;
      if (++placed >= c.processCount()) sums.push_back(sumOf(cut));
    }
    for (std::size_t i = 0; i + 1 < sums.size(); ++i) {
      EXPECT_LE(std::abs(sums[i + 1] - sums[i]), 1);
    }
  }
}

}  // namespace
}  // namespace gpd::detect
