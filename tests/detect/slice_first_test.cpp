// Slice-first ≡ unsliced equivalence suite.
//
// The slice pre-pass restricts the downstream lattice search to the
// skeleton slice's sublattice; the contract (detector.h) is that verdict
// AND witness are bit-identical to the historical unsliced search, because
// the restricted BFS preserves the full BFS's visit order over the admitted
// region and the region contains every satisfying cut. This suite pins that
// equivalence over random computations and CNFs whose single-process
// clauses make the planner route slice-first, across sequential and pooled
// execution and under budget exhaustion.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "computation/random.h"
#include "control/budget.h"
#include "detect/detector.h"
#include "detect_test_util.h"
#include "par/pool.h"
#include "predicates/random_trace.h"
#include "util/rng.h"

namespace gpd::detect {
namespace {

// A CNF with at least one single-process clause (the regular skeleton the
// planner slices on) plus multi-process clauses (so the plan still needs a
// downstream lattice search — pure-conjunctive routes to CPDHB instead).
CnfPredicate randomSkeletonCnf(int processes, const std::string& var,
                               Rng& rng) {
  CnfPredicate pred;
  const int singles = 1 + static_cast<int>(rng.index(2));
  for (int s = 0; s < singles; ++s) {
    const int p = static_cast<int>(rng.index(static_cast<std::size_t>(processes)));
    CnfClause clause;
    clause.push_back({p, var, rng.chance(0.7)});
    if (rng.chance(0.5)) clause.push_back({p, var, rng.chance(0.5)});
    pred.clauses.push_back(std::move(clause));
  }
  const int multis = 1 + static_cast<int>(rng.index(2));
  for (int m = 0; m < multis; ++m) {
    CnfClause clause;
    int p = static_cast<int>(rng.index(static_cast<std::size_t>(processes)));
    clause.push_back({p, var, rng.chance(0.6)});
    int q = (p + 1 + static_cast<int>(rng.index(
                         static_cast<std::size_t>(processes - 1)))) %
            processes;
    clause.push_back({q, var, rng.chance(0.6)});
    pred.clauses.push_back(std::move(clause));
  }
  return pred;
}

struct Instance {
  Computation comp;
  CnfPredicate pred;
};

Instance makeInstance(std::uint64_t seed) {
  Rng rng(seed);
  RandomComputationOptions opt;
  opt.processes = 3 + static_cast<int>(rng.index(2));
  opt.eventsPerProcess = 3 + static_cast<int>(rng.index(3));
  opt.messageProbability = 0.45;
  Instance inst{randomComputation(opt, rng), {}};
  inst.pred = randomSkeletonCnf(inst.comp.processCount(), "x", rng);
  return inst;
}

VariableTrace makeTrace(const Computation& c, std::uint64_t seed) {
  Rng rng(seed ^ 0xabcdef);
  VariableTrace trace(c);
  defineRandomBools(trace, "x", 0.5, rng);
  return trace;
}

TEST(SliceFirstTest, UnbudgetedMatchesUnslicedAcross200Seeds) {
  int routed = 0;
  int witnesses = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const Instance inst = makeInstance(1000 + seed);
    const VariableTrace trace = makeTrace(inst.comp, seed);

    Detector sliced(trace);
    const std::optional<Cut> got = sliced.possibly(inst.pred);
    Detector plain(trace);
    plain.enableSlicing(false);
    const std::optional<Cut> want = plain.possibly(inst.pred);

    ASSERT_EQ(got.has_value(), want.has_value()) << "seed " << seed;
    if (got) {
      EXPECT_EQ(got->last, want->last) << "seed " << seed;  // bit-identical
      ++witnesses;
    }
    if (sliced.lastAlgorithm() == "slice-first") ++routed;
  }
  // The generator must actually exercise the slice-first route and find
  // witnesses, or the suite proves nothing.
  EXPECT_GT(routed, 50);
  EXPECT_GT(witnesses, 20);
}

TEST(SliceFirstTest, PooledRunsAreBitIdenticalToSequential) {
  for (const int threads : {1, 2, 8}) {
    par::Pool pool(threads);
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
      const Instance inst = makeInstance(5000 + seed);
      const VariableTrace trace = makeTrace(inst.comp, seed);

      Detector sequential(trace);
      const std::optional<Cut> want = sequential.possibly(inst.pred);

      Detector pooled(trace);
      pooled.usePool(&pool);
      const std::optional<Cut> got = pooled.possibly(inst.pred);

      ASSERT_EQ(got.has_value(), want.has_value())
          << "threads " << threads << " seed " << seed;
      if (got) {
        EXPECT_EQ(got->last, want->last)
            << "threads " << threads << " seed " << seed;
      }
    }
  }
}

TEST(SliceFirstTest, BudgetedMatchesUnslicedVerdictAndWitness) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    const Instance inst = makeInstance(7000 + seed);
    const VariableTrace trace = makeTrace(inst.comp, seed);

    control::BudgetLimits limits;
    limits.maxCuts = 100000;  // ample: both runs complete
    control::Budget b1(limits);
    Detector sliced(trace);
    const Detection got = sliced.possibly(inst.pred, b1);

    control::Budget b2(limits);
    Detector plain(trace);
    plain.enableSlicing(false);
    const Detection want = plain.possibly(inst.pred, b2);

    ASSERT_EQ(got.outcome, want.outcome) << "seed " << seed;
    ASSERT_EQ(got.witness.has_value(), want.witness.has_value())
        << "seed " << seed;
    if (got.witness) {
      EXPECT_EQ(got.witness->last, want.witness->last) << "seed " << seed;
    }
  }
}

TEST(SliceFirstTest, ExhaustedBudgetDegradesToUnknownNotWrong) {
  // A budget too small for the slice pre-pass's |E| headroom: the walk must
  // skip the slice step and degrade exactly like the unsliced detector —
  // Unknown (or a genuine Yes from the bounded prover), never a wrong No.
  int unknowns = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const Instance inst = makeInstance(9000 + seed);
    const VariableTrace trace = makeTrace(inst.comp, seed);

    Detector unbudgeted(trace);
    const std::optional<Cut> truth = unbudgeted.possibly(inst.pred);

    control::BudgetLimits limits;
    limits.maxCuts = 2;  // below the |E| headroom of every instance
    control::Budget budget(limits);
    Detector det(trace);
    const Detection d = det.possibly(inst.pred, budget);

    if (d.outcome == Outcome::Yes) {
      ASSERT_TRUE(truth.has_value()) << "seed " << seed;
      ASSERT_TRUE(d.witness.has_value()) << "seed " << seed;
    } else if (d.outcome == Outcome::No) {
      EXPECT_FALSE(truth.has_value()) << "seed " << seed;
    } else {
      ++unknowns;
      EXPECT_NE(d.stopReason, control::StopReason::None) << "seed " << seed;
    }
  }
  EXPECT_GT(unknowns, 0);  // the tiny budget must actually bite sometimes
}

TEST(SliceFirstTest, SingularOdometerPruningPreservesVerdicts) {
  // Singular CNFs whose chain-cover space exceeds the pruning threshold:
  // the skeleton-sliced odometer must agree with the pruning-free
  // enumeration (slicing disabled) on every verdict.
  Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    GroupedComputationOptions opt;
    opt.groups = 2;
    opt.groupSize = 2;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.5;
    const Computation c = randomGroupedComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.4, rng);
    CnfPredicate pred = testing::randomSingularKCnf(2, 2, "x", rng);
    // Pin one clause to a single process so the skeleton is non-trivial.
    pred.clauses.push_back({{0, "x", true}});

    Detector sliced(trace);
    const std::optional<Cut> got = sliced.possibly(pred);
    Detector plain(trace);
    plain.enableSlicing(false);
    const std::optional<Cut> want = plain.possibly(pred);
    ASSERT_EQ(got.has_value(), want.has_value()) << "trial " << trial;
    if (got) {
      // Pruning may reorder the odometer's selections, so only the verdict
      // and witness validity are pinned, not the exact cut.
      EXPECT_TRUE(pred.holdsAtCut(trace, *got)) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace gpd::detect
