#include "detect/stable.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "predicates/random_trace.h"
#include "sim/workloads.h"

namespace gpd::detect {
namespace {

TEST(StableTest, MonotoneCounterThresholdIsStable) {
  Rng rng(55);
  for (int trial = 0; trial < 25; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    // Non-decreasing counters: any ≥-threshold predicate on their sum is
    // stable.
    for (ProcessId p = 0; p < 3; ++p) {
      std::vector<std::int64_t> v(c.eventCount(p));
      std::int64_t x = 0;
      for (int i = 0; i < c.eventCount(p); ++i) {
        x += rng.index(3);
        v[i] = x;
      }
      trace.define(p, "n", std::move(v));
    }
    const VectorClocks vc(c);
    const auto phi = [&](const Cut& cut) {
      std::int64_t sum = 0;
      for (ProcessId p = 0; p < 3; ++p) sum += trace.valueAtCut(cut, p, "n");
      return sum >= 5;
    };
    EXPECT_TRUE(isStableOn(vc, phi)) << "trial " << trial;
    // Stable detection: evaluate at the final cut only; must agree with the
    // exhaustive possibly.
    const StableResult res = detectStable(c, phi);
    EXPECT_EQ(res.possibly, lattice::possiblyExhaustive(vc, phi));
    EXPECT_EQ(res.definitely, lattice::definitelyExhaustive(vc, phi));
  }
}

TEST(StableTest, CriticalSectionFlagIsNotStable) {
  sim::TokenRingOptions opt;
  opt.processes = 4;
  opt.rounds = 2;
  const sim::SimResult run = sim::tokenRing(opt);
  const VectorClocks vc(*run.computation);
  // "p0 in CS" flips on and off: not stable.
  const auto phi = [&](const Cut& cut) {
    return run.trace->valueAtCut(cut, 0, "cs") >= 1;
  };
  EXPECT_FALSE(isStableOn(vc, phi));
}

TEST(StableTest, DeadlockIsStable) {
  sim::PhilosophersOptions opt;
  opt.philosophers = 4;
  opt.meals = 2;
  opt.seed = 1;  // the deadlocking seed
  const sim::SimResult run = sim::diningPhilosophers(opt);
  const VectorClocks vc(*run.computation);
  // "everyone waiting" is stable *on this computation* (no event ever ends
  // the wait), and the stable detector sees it at the final cut.
  const auto phi = [&](const Cut& cut) {
    for (ProcessId p = 0; p < 4; ++p) {
      if (run.trace->valueAtCut(cut, p, "waiting") == 0) return false;
    }
    return true;
  };
  EXPECT_TRUE(isStableOn(vc, phi));
  const StableResult res = detectStable(*run.computation, phi);
  EXPECT_TRUE(res.possibly);
  EXPECT_TRUE(res.definitely);
}

TEST(StableTest, TokenLossIsStable) {
  sim::TokenRingOptions opt;
  opt.processes = 4;
  opt.tokens = 1;
  opt.rounds = 3;
  opt.dropTokenAtHop = 3;
  const sim::SimResult run = sim::tokenRing(opt);
  const VectorClocks vc(*run.computation);
  const Computation& c = *run.computation;
  // "all tokens lost": held count is zero and no token message in flight.
  const auto phi = [&](const Cut& cut) {
    std::int64_t held = 0;
    for (ProcessId p = 0; p < 4; ++p) {
      held += run.trace->valueAtCut(cut, p, "tokens");
    }
    if (held != 0) return false;
    for (const Message& m : c.messages()) {
      if (cut.contains(m.send) && !cut.contains(m.receive)) return false;
    }
    return true;
  };
  EXPECT_TRUE(isStableOn(vc, phi));
  EXPECT_TRUE(detectStable(c, phi).possibly);
}

TEST(StableTest, FalseEverywhereIsStableAndUndetected) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  const auto never = [](const Cut&) { return false; };
  EXPECT_TRUE(isStableOn(vc, never));
  EXPECT_FALSE(detectStable(c, never).possibly);
}

}  // namespace
}  // namespace gpd::detect
