#include "detect/inequality_detect.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd::detect {
namespace {

IneqClausePredicate randomIneq(int clauses, Rng& rng) {
  const Relop ops[] = {Relop::Less, Relop::LessEq, Relop::Greater,
                       Relop::GreaterEq, Relop::NotEqual};
  IneqClausePredicate pred;
  for (int g = 0; g < clauses; ++g) {
    pred.clauses.push_back(
        {{2 * g, "v", ops[rng.index(5)], rng.uniform(-3, 3)},
         {2 * g + 1, "v", ops[rng.index(5)], rng.uniform(-3, 3)}});
  }
  return pred;
}

TEST(IneqDetectTest, MatchesLatticeOnRandomTraces) {
  Rng rng(4810);
  int found = 0;
  for (int trial = 0; trial < 50; ++trial) {
    GroupedComputationOptions opt;
    opt.groups = 2;
    opt.groupSize = 2;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.5;
    opt.discipline = trial % 2 ? OrderingDiscipline::ReceiveOrdered
                               : OrderingDiscipline::None;
    const Computation comp = randomGroupedComputation(opt, rng);
    VariableTrace trace(comp);
    defineRandomCounters(trace, "v", 0, 2, rng);
    const IneqClausePredicate pred = randomIneq(2, rng);
    const VectorClocks clocks(comp);
    const IneqResult res = possiblyInequality(clocks, trace, pred);
    const bool expected = lattice::possiblyExhaustive(clocks, [&](const Cut& c) {
      return pred.holdsAtCut(trace, c);
    });
    ASSERT_EQ(res.cut.has_value(), expected) << "trial " << trial;
    if (res.cut) {
      ++found;
      EXPECT_TRUE(clocks.isConsistent(*res.cut));
      EXPECT_TRUE(pred.holdsAtCut(trace, *res.cut));
    }
  }
  EXPECT_GT(found, 5);
}

TEST(IneqDetectTest, RepeatedCallsOnOneTraceAreSafe) {
  ComputationBuilder b(4);
  for (ProcessId p = 0; p < 4; ++p) b.appendEvent(p);
  const Computation comp = std::move(b).build();
  VariableTrace trace(comp);
  for (ProcessId p = 0; p < 4; ++p) trace.define(p, "v", {0, p});
  const VectorClocks clocks(comp);
  IneqClausePredicate pred;
  pred.clauses = {{{0, "v", Relop::GreaterEq, 0}, {1, "v", Relop::Less, 0}},
                  {{2, "v", Relop::Greater, 1}, {3, "v", Relop::NotEqual, 0}}};
  const auto first = possiblyInequality(clocks, trace, pred);
  const auto second = possiblyInequality(clocks, trace, pred);  // no throw
  EXPECT_EQ(first.cut.has_value(), second.cut.has_value());
}

TEST(IneqDetectTest, ReportsSpecialCaseOnDisciplinedComputations) {
  Rng rng(22);
  GroupedComputationOptions opt;
  opt.groups = 2;
  opt.groupSize = 2;
  opt.eventsPerProcess = 5;
  opt.messageProbability = 0.6;
  opt.discipline = OrderingDiscipline::ReceiveOrdered;
  const Computation comp = randomGroupedComputation(opt, rng);
  VariableTrace trace(comp);
  defineRandomCounters(trace, "v", 0, 1, rng);
  const VectorClocks clocks(comp);
  const IneqClausePredicate pred = randomIneq(2, rng);
  const IneqResult res = possiblyInequality(clocks, trace, pred);
  EXPECT_EQ(res.algorithm, "cpdsc-special-case");
}

TEST(IneqDetectTest, RejectsNonSingular) {
  ComputationBuilder b(2);
  const Computation comp = std::move(b).build();
  VariableTrace trace(comp);
  trace.define(0, "v", {0});
  trace.define(1, "v", {0});
  const VectorClocks clocks(comp);
  IneqClausePredicate pred;
  pred.clauses = {{{0, "v", Relop::Less, 1}}, {{0, "v", Relop::Greater, -1}}};
  EXPECT_THROW(possiblyInequality(clocks, trace, pred), CheckFailure);
}

}  // namespace
}  // namespace gpd::detect
