#include "detect/slice.h"

#include <gtest/gtest.h>
#include <unordered_set>

#include "computation/random.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd::detect {
namespace {

struct RegularInstance {
  Computation comp;
  VariableTrace trace;
  VectorClocks clocks;
  ConjunctivePredicate pred;

  RegularInstance(Computation c, Rng& rng, double density)
      : comp(std::move(c)), trace(comp), clocks(comp) {
    defineRandomBools(trace, "b", density, rng);
    for (ProcessId p = 0; p < comp.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "b"));
    }
  }

  bool satisfied(const Cut& cut) const { return pred.holdsAtCut(trace, cut); }
};

RegularInstance makeInstance(std::uint64_t seed, double density) {
  Rng rng(seed);
  RandomComputationOptions opt;
  opt.processes = 2 + static_cast<int>(rng.index(2));
  opt.eventsPerProcess = 2 + static_cast<int>(rng.index(3));
  opt.messageProbability = 0.5;
  Computation comp = randomComputation(opt, rng);
  return RegularInstance(std::move(comp), rng, density);
}

// Conjunctive predicates are regular: their satisfying cuts are closed
// under meet and join — verified directly, since slicing assumes it.
TEST(SliceTest, ConjunctivePredicatesAreRegular) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RegularInstance inst = makeInstance(seed, 0.5);
    std::vector<Cut> satisfying;
    lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
      if (inst.satisfied(cut)) satisfying.push_back(cut);
      return true;
    });
    for (const Cut& a : satisfying) {
      for (const Cut& b : satisfying) {
        EXPECT_TRUE(inst.satisfied(meet(a, b)));
        EXPECT_TRUE(inst.satisfied(join(a, b)));
      }
    }
  }
}

TEST(SliceTest, LeastCutsAreLeastSatisfyingCutsContainingTheEvent) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const RegularInstance inst = makeInstance(seed, 0.5);
    const Slice slice =
        computeSlice(inst.clocks, conjunctiveOracle(inst.trace, inst.pred));
    for (int node = 0; node < inst.comp.totalEvents(); ++node) {
      const EventId e = inst.comp.event(node);
      // Brute-force least satisfying cut containing e.
      std::optional<Cut> best;
      lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
        if (cut.contains(e) && inst.satisfied(cut)) {
          if (!best) best = cut;  // level order: first hit is least by level
          // Least by inclusion requires a subset check among hits:
          if (cut.subsetOf(*best)) best = cut;
        }
        return true;
      });
      ASSERT_EQ(slice.leastCut[node].has_value(), best.has_value())
          << "seed " << seed << " node " << node;
      if (best) {
        // The slice's J must be a satisfying cut containing e and below
        // every satisfying cut containing e.
        const Cut& j = *slice.leastCut[node];
        EXPECT_TRUE(inst.satisfied(j));
        EXPECT_TRUE(j.contains(e));
        lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
          if (cut.contains(e) && inst.satisfied(cut)) {
            EXPECT_TRUE(j.subsetOf(cut));
          }
          return true;
        });
      }
    }
  }
}

// The fundamental theorem of slicing: membership in the sublattice is
// decidable from the slice alone.
TEST(SliceTest, SliceMembershipEqualsPredicate) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const RegularInstance inst = makeInstance(seed, 0.45);
    const Slice slice =
        computeSlice(inst.clocks, conjunctiveOracle(inst.trace, inst.pred));
    lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
      EXPECT_EQ(sliceSatisfies(slice, inst.clocks, cut), inst.satisfied(cut))
          << "seed " << seed << " cut " << cut.toString();
      return true;
    });
  }
}

TEST(SliceTest, CountMatchesLattice) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const RegularInstance inst = makeInstance(seed, 0.5);
    const Slice slice =
        computeSlice(inst.clocks, conjunctiveOracle(inst.trace, inst.pred));
    std::uint64_t expected = 0;
    lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
      expected += inst.satisfied(cut);
      return true;
    });
    const SliceCount got = countSatisfyingCuts(slice, inst.clocks);
    EXPECT_TRUE(got.complete);
    EXPECT_FALSE(got.saturated);
    EXPECT_EQ(got.count, expected) << "seed " << seed;
  }
}

TEST(SliceTest, BottomAndTopBracketTheSublattice) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RegularInstance inst = makeInstance(seed, 0.6);
    const Slice slice =
        computeSlice(inst.clocks, conjunctiveOracle(inst.trace, inst.pred));
    if (!slice.satisfiable) continue;
    EXPECT_TRUE(inst.satisfied(slice.bottom));
    EXPECT_TRUE(inst.satisfied(slice.top));
    lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
      if (inst.satisfied(cut)) {
        EXPECT_TRUE(slice.bottom.subsetOf(cut));
        EXPECT_TRUE(cut.subsetOf(slice.top));
      }
      return true;
    });
  }
}

TEST(SliceTest, UnsatisfiablePredicateYieldsEmptySlice) {
  RegularInstance inst = makeInstance(3, 0.5);
  // Add an always-false conjunct.
  inst.trace.defineBool(0, "never",
                        std::vector<bool>(inst.comp.eventCount(0), false));
  ConjunctivePredicate pred = inst.pred;
  pred.terms[0] = varTrue(0, "never");
  const Slice slice =
      computeSlice(inst.clocks, conjunctiveOracle(inst.trace, pred));
  EXPECT_FALSE(slice.satisfiable);
  EXPECT_EQ(countSatisfyingCuts(slice, inst.clocks).count, 0u);
  for (const auto& j : slice.leastCut) EXPECT_FALSE(j.has_value());
}

// Reduction-gadget regression: 64 independent processes of 3 events each
// under an always-true predicate have 3^64 satisfying cuts — far past
// 2^64-1. The pre-fix counter multiplied raw uint64_t factors and wrapped
// to a small (even plausible-looking) value; the count must instead clamp
// at UINT64_MAX and say so.
TEST(SliceTest, CountSaturatesInsteadOfWrapping) {
  ComputationBuilder builder(64);
  for (ProcessId p = 0; p < 64; ++p) {
    builder.appendEvent(p);
    builder.appendEvent(p);
  }
  const Computation comp = std::move(builder).build();
  const VectorClocks clocks(comp);
  const ForbiddenFn always = [](const Cut&) -> std::optional<ProcessId> {
    return std::nullopt;
  };
  const Slice slice = computeSlice(clocks, always);
  ASSERT_TRUE(slice.satisfiable);
  const SliceCount count = countSatisfyingCuts(slice, clocks);
  EXPECT_TRUE(count.saturated);
  EXPECT_TRUE(count.complete);
  EXPECT_EQ(count.count, UINT64_MAX);
}

// The slice build charges its oracle calls against the budget (one cut per
// call, through detectLinearFrom); exhaustion yields an honest incomplete
// slice instead of a silently unbudgeted loop.
TEST(SliceTest, BuildChargesBudgetAndStopsIncomplete) {
  const RegularInstance inst = makeInstance(7, 0.5);
  control::BudgetLimits limits;
  limits.maxCuts = 2;
  control::Budget budget(limits);
  SliceOptions options;
  options.budget = &budget;
  const Slice slice =
      computeSlice(inst.clocks, conjunctiveOracle(inst.trace, inst.pred),
                   options);
  EXPECT_FALSE(slice.complete);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.reason(), control::StopReason::CutLimit);
}

// The general (non-product) counting BFS is budget-charged too.
TEST(SliceTest, CountChargesBudgetOnGeneralPath) {
  ComputationBuilder builder(2);
  const EventId send = builder.appendEvent(0);
  const EventId recv = builder.appendEvent(1);
  builder.appendEvent(0);
  builder.appendEvent(1);
  builder.addMessage(send, recv);
  const Computation comp = std::move(builder).build();
  const VectorClocks clocks(comp);
  const Slice slice = computeSlice(clocks, channelsEmptyOracle(comp));
  ASSERT_TRUE(slice.satisfiable);
  control::BudgetLimits limits;
  limits.maxCuts = 1;
  control::Budget budget(limits);
  const SliceCount capped = countSatisfyingCuts(slice, clocks, &budget);
  EXPECT_FALSE(capped.complete);
  const SliceCount full = countSatisfyingCuts(slice, clocks);
  EXPECT_TRUE(full.complete);
  EXPECT_LE(capped.count, full.count);
}

// Soundness gate: a merely-linear (non-regular) oracle must be refused with
// a typed error, not turned into a silently wrong slice. The L-shape
// predicate "last[0] == 0 or last[1] == 0" is linear (a violating cut can
// never be repaired, so any forbidden process is vacuously sound) but its
// two least cuts (1,0) and (0,1) join to the violating (1,1).
TEST(SliceTest, MerelyLinearOracleThrowsInputError) {
  ComputationBuilder builder(2);
  builder.appendEvent(0);
  builder.appendEvent(1);
  const Computation comp = std::move(builder).build();
  const VectorClocks clocks(comp);
  const ForbiddenFn lShape = [](const Cut& cut) -> std::optional<ProcessId> {
    if (cut.last[0] > 0 && cut.last[1] > 0) return ProcessId{0};
    return std::nullopt;
  };
  EXPECT_THROW(computeSlice(clocks, lShape), InputError);
  // The detector-internal opt-out (soundness established elsewhere) must
  // not throw — it is the planner's regularity gate that protects it.
  SliceOptions unchecked;
  unchecked.verifyRegular = false;
  EXPECT_NO_THROW(computeSlice(clocks, lShape, unchecked));
}

// Channel predicates ("no message in flight") are the other classical
// regular family; the same slice machinery applies via their oracle.
TEST(SliceTest, EmptyChannelsSliceMembership) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.6;
    const Computation comp = randomComputation(opt, rng);
    const VectorClocks clocks(comp);
    const auto oracle = channelsEmptyOracle(comp);
    const Slice slice = computeSlice(clocks, oracle);
    ASSERT_TRUE(slice.satisfiable);  // the initial cut always qualifies
    lattice::forEachConsistentCut(clocks, [&](const Cut& cut) {
      EXPECT_EQ(sliceSatisfies(slice, clocks, cut), !oracle(cut).has_value())
          << "trial " << trial << " cut " << cut.toString();
      return true;
    });
  }
}

}  // namespace
}  // namespace gpd::detect
