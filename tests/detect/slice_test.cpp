#include "detect/slice.h"

#include <gtest/gtest.h>
#include <unordered_set>

#include "computation/random.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"

namespace gpd::detect {
namespace {

struct RegularInstance {
  Computation comp;
  VariableTrace trace;
  VectorClocks clocks;
  ConjunctivePredicate pred;

  RegularInstance(Computation c, Rng& rng, double density)
      : comp(std::move(c)), trace(comp), clocks(comp) {
    defineRandomBools(trace, "b", density, rng);
    for (ProcessId p = 0; p < comp.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "b"));
    }
  }

  bool satisfied(const Cut& cut) const { return pred.holdsAtCut(trace, cut); }
};

RegularInstance makeInstance(std::uint64_t seed, double density) {
  Rng rng(seed);
  RandomComputationOptions opt;
  opt.processes = 2 + static_cast<int>(rng.index(2));
  opt.eventsPerProcess = 2 + static_cast<int>(rng.index(3));
  opt.messageProbability = 0.5;
  Computation comp = randomComputation(opt, rng);
  return RegularInstance(std::move(comp), rng, density);
}

// Conjunctive predicates are regular: their satisfying cuts are closed
// under meet and join — verified directly, since slicing assumes it.
TEST(SliceTest, ConjunctivePredicatesAreRegular) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RegularInstance inst = makeInstance(seed, 0.5);
    std::vector<Cut> satisfying;
    lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
      if (inst.satisfied(cut)) satisfying.push_back(cut);
      return true;
    });
    for (const Cut& a : satisfying) {
      for (const Cut& b : satisfying) {
        EXPECT_TRUE(inst.satisfied(meet(a, b)));
        EXPECT_TRUE(inst.satisfied(join(a, b)));
      }
    }
  }
}

TEST(SliceTest, LeastCutsAreLeastSatisfyingCutsContainingTheEvent) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const RegularInstance inst = makeInstance(seed, 0.5);
    const Slice slice =
        computeSlice(inst.clocks, conjunctiveOracle(inst.trace, inst.pred));
    for (int node = 0; node < inst.comp.totalEvents(); ++node) {
      const EventId e = inst.comp.event(node);
      // Brute-force least satisfying cut containing e.
      std::optional<Cut> best;
      lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
        if (cut.contains(e) && inst.satisfied(cut)) {
          if (!best) best = cut;  // level order: first hit is least by level
          // Least by inclusion requires a subset check among hits:
          if (cut.subsetOf(*best)) best = cut;
        }
        return true;
      });
      ASSERT_EQ(slice.leastCut[node].has_value(), best.has_value())
          << "seed " << seed << " node " << node;
      if (best) {
        // The slice's J must be a satisfying cut containing e and below
        // every satisfying cut containing e.
        const Cut& j = *slice.leastCut[node];
        EXPECT_TRUE(inst.satisfied(j));
        EXPECT_TRUE(j.contains(e));
        lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
          if (cut.contains(e) && inst.satisfied(cut)) {
            EXPECT_TRUE(j.subsetOf(cut));
          }
          return true;
        });
      }
    }
  }
}

// The fundamental theorem of slicing: membership in the sublattice is
// decidable from the slice alone.
TEST(SliceTest, SliceMembershipEqualsPredicate) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const RegularInstance inst = makeInstance(seed, 0.45);
    const Slice slice =
        computeSlice(inst.clocks, conjunctiveOracle(inst.trace, inst.pred));
    lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
      EXPECT_EQ(sliceSatisfies(slice, inst.clocks, cut), inst.satisfied(cut))
          << "seed " << seed << " cut " << cut.toString();
      return true;
    });
  }
}

TEST(SliceTest, CountMatchesLattice) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const RegularInstance inst = makeInstance(seed, 0.5);
    const Slice slice =
        computeSlice(inst.clocks, conjunctiveOracle(inst.trace, inst.pred));
    std::uint64_t expected = 0;
    lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
      expected += inst.satisfied(cut);
      return true;
    });
    EXPECT_EQ(countSatisfyingCuts(slice, inst.clocks), expected)
        << "seed " << seed;
  }
}

TEST(SliceTest, BottomAndTopBracketTheSublattice) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const RegularInstance inst = makeInstance(seed, 0.6);
    const Slice slice =
        computeSlice(inst.clocks, conjunctiveOracle(inst.trace, inst.pred));
    if (!slice.satisfiable) continue;
    EXPECT_TRUE(inst.satisfied(slice.bottom));
    EXPECT_TRUE(inst.satisfied(slice.top));
    lattice::forEachConsistentCut(inst.clocks, [&](const Cut& cut) {
      if (inst.satisfied(cut)) {
        EXPECT_TRUE(slice.bottom.subsetOf(cut));
        EXPECT_TRUE(cut.subsetOf(slice.top));
      }
      return true;
    });
  }
}

TEST(SliceTest, UnsatisfiablePredicateYieldsEmptySlice) {
  RegularInstance inst = makeInstance(3, 0.5);
  // Add an always-false conjunct.
  inst.trace.defineBool(0, "never",
                        std::vector<bool>(inst.comp.eventCount(0), false));
  ConjunctivePredicate pred = inst.pred;
  pred.terms[0] = varTrue(0, "never");
  const Slice slice =
      computeSlice(inst.clocks, conjunctiveOracle(inst.trace, pred));
  EXPECT_FALSE(slice.satisfiable);
  EXPECT_EQ(countSatisfyingCuts(slice, inst.clocks), 0u);
  for (const auto& j : slice.leastCut) EXPECT_FALSE(j.has_value());
}

// Channel predicates ("no message in flight") are the other classical
// regular family; the same slice machinery applies via their oracle.
TEST(SliceTest, EmptyChannelsSliceMembership) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.6;
    const Computation comp = randomComputation(opt, rng);
    const VectorClocks clocks(comp);
    const auto oracle = channelsEmptyOracle(comp);
    const Slice slice = computeSlice(clocks, oracle);
    ASSERT_TRUE(slice.satisfiable);  // the initial cut always qualifies
    lattice::forEachConsistentCut(clocks, [&](const Cut& cut) {
      EXPECT_EQ(sliceSatisfies(slice, clocks, cut), !oracle(cut).has_value())
          << "trial " << trial << " cut " << cut.toString();
      return true;
    });
  }
}

}  // namespace
}  // namespace gpd::detect
