#include "detect/singular_cnf.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "detect_test_util.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd::detect {
namespace {

using testing::latticePossiblyCnf;
using testing::randomSingularKCnf;

TEST(SingularCnfTest, RejectsNonSingular) {
  ComputationBuilder b(2);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.defineBool(0, "x", {true});
  trace.defineBool(1, "x", {true});
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}}, {{0, "x", false}, {1, "x", true}}};
  const VectorClocks vc(c);
  EXPECT_THROW(detectSingularByProcessEnumeration(vc, trace, pred),
               CheckFailure);
  EXPECT_THROW(detectSingularByChainCover(vc, trace, pred), CheckFailure);
}

TEST(SingularCnfTest, ClauseTrueEventsMergesLiterals) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(1);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.defineBool(0, "x", {false, true});
  trace.defineBool(1, "y", {true, false});
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {1, "y", true}}};
  const auto events = clauseTrueEvents(trace, pred);
  ASSERT_EQ(events.size(), 1u);
  // (0,1) makes x true; (1,0) makes y true.
  EXPECT_EQ(events[0], (std::vector<EventId>{{0, 1}, {1, 0}}));
}

TEST(SingularCnfTest, UnsatisfiableClauseShortCircuits) {
  ComputationBuilder b(2);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.defineBool(0, "x", {false});
  trace.defineBool(1, "x", {false});
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {1, "x", true}}};
  const VectorClocks vc(c);
  const auto res = detectSingularByProcessEnumeration(vc, trace, pred);
  EXPECT_FALSE(res.found);
  EXPECT_EQ(res.combinationsTotal, 0u);
}

struct CaseParams {
  int groups;
  int groupSize;
  int events;
  double msgProb;
  double density;
};

class SingularSweep : public ::testing::TestWithParam<CaseParams> {};

TEST_P(SingularSweep, BothAlgorithmsMatchLattice) {
  const CaseParams& params = GetParam();
  Rng rng(777 + params.groups * 131 + params.groupSize * 17 + params.events);
  int found = 0;
  for (int trial = 0; trial < 40; ++trial) {
    GroupedComputationOptions opt;
    opt.groups = params.groups;
    opt.groupSize = params.groupSize;
    opt.eventsPerProcess = params.events;
    opt.messageProbability = params.msgProb;
    const Computation c = randomGroupedComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", params.density, rng);
    const CnfPredicate pred =
        randomSingularKCnf(params.groups, params.groupSize, "x", rng);
    const VectorClocks vc(c);

    const bool expected = latticePossiblyCnf(vc, trace, pred);
    const auto byProcess = detectSingularByProcessEnumeration(vc, trace, pred);
    const auto byChains = detectSingularByChainCover(vc, trace, pred);
    ASSERT_EQ(byProcess.found, expected)
        << "process enumeration, trial " << trial;
    ASSERT_EQ(byChains.found, expected) << "chain cover, trial " << trial;
    if (expected) {
      ++found;
      for (const auto& res : {byProcess, byChains}) {
        ASSERT_TRUE(res.cut.has_value());
        EXPECT_TRUE(vc.isConsistent(*res.cut));
        EXPECT_TRUE(pred.holdsAtCut(trace, *res.cut));
      }
    }
  }
  EXPECT_GT(found, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SingularSweep,
    ::testing::Values(CaseParams{2, 2, 3, 0.4, 0.35},
                      CaseParams{2, 2, 4, 0.7, 0.25},
                      CaseParams{3, 2, 3, 0.3, 0.3},
                      CaseParams{2, 3, 3, 0.5, 0.2},
                      CaseParams{1, 4, 4, 0.6, 0.3},
                      CaseParams{3, 1, 4, 0.5, 0.5}));

TEST(SingularCnfTest, ChainCoverIsValidPartition) {
  Rng rng(909);
  for (int trial = 0; trial < 25; ++trial) {
    GroupedComputationOptions opt;
    opt.groups = 2;
    opt.groupSize = 3;
    opt.eventsPerProcess = 5;
    opt.messageProbability = 0.6;
    const Computation c = randomGroupedComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.4, rng);
    const CnfPredicate pred = randomSingularKCnf(2, 3, "x", rng);
    const VectorClocks vc(c);
    const auto covers = clauseChainCovers(vc, trace, pred);
    const auto trueEvents = clauseTrueEvents(trace, pred);
    ASSERT_EQ(covers.size(), trueEvents.size());
    for (std::size_t j = 0; j < covers.size(); ++j) {
      std::size_t covered = 0;
      for (const Chain& chain : covers[j]) {
        covered += chain.events.size();
        for (std::size_t i = 0; i + 1 < chain.events.size(); ++i) {
          EXPECT_TRUE(vc.leq(chain.events[i], chain.events[i + 1]));
        }
      }
      EXPECT_EQ(covered, trueEvents[j].size());
      // A minimum chain cover never needs more chains than the group has
      // processes (per-process queues are already a chain cover).
      EXPECT_LE(covers[j].size(), 3u);
    }
  }
}

TEST(SingularCnfTest, HugeEnumerationSpaceSaturatesInsteadOfWrapping) {
  // 65 two-process groups with one concurrent true event per process: the
  // space is 2^65, which wraps a uint64 to zero. A wrap used to read as
  // "some clause never true" and fabricate an instant exact No on a trace
  // whose very first selection is a witness.
  const int kGroups = 65;
  ComputationBuilder builder(2 * kGroups);
  for (ProcessId p = 0; p < 2 * kGroups; ++p) builder.appendEvent(p);
  const Computation c = std::move(builder).build();
  VariableTrace trace(c);
  for (ProcessId p = 0; p < c.processCount(); ++p) {
    trace.defineBool(p, "x", {false, true});
  }
  CnfPredicate pred;
  for (int g = 0; g < kGroups; ++g) {
    pred.clauses.push_back({{2 * g, "x", true}, {2 * g + 1, "x", true}});
  }
  ASSERT_TRUE(pred.isSingular());
  const VectorClocks vc(c);
  for (auto detect : {&detectSingularByChainCover,
                      &detectSingularByProcessEnumeration}) {
    const auto res = (*detect)(vc, trace, pred, nullptr, nullptr, nullptr);
    EXPECT_EQ(res.combinationsTotal, UINT64_MAX);  // saturated, not 0
    EXPECT_TRUE(res.found);  // everything concurrent: first selection wins
    EXPECT_GE(res.combinationsTried, 1u);
    EXPECT_TRUE(res.complete || res.found);
  }
}

TEST(SingularCnfTest, ChainCoverNeverEnumeratesMoreThanProcesses) {
  Rng rng(1111);
  for (int trial = 0; trial < 20; ++trial) {
    GroupedComputationOptions opt;
    opt.groups = 3;
    opt.groupSize = 2;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.7;
    const Computation c = randomGroupedComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.5, rng);
    const CnfPredicate pred = randomSingularKCnf(3, 2, "x", rng);
    const VectorClocks vc(c);
    const auto byProcess = detectSingularByProcessEnumeration(vc, trace, pred);
    const auto byChains = detectSingularByChainCover(vc, trace, pred);
    EXPECT_LE(byChains.combinationsTotal, byProcess.combinationsTotal);
  }
}

}  // namespace
}  // namespace gpd::detect
