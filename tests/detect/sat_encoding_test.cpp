#include "detect/sat_encoding.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "detect/singular_cnf.h"
#include "detect_test_util.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd::detect {
namespace {

using testing::latticePossiblyCnf;
using testing::randomSingularKCnf;

TEST(SatEncodingTest, MatchesLatticeAndChainCover) {
  Rng rng(202);
  int found = 0;
  for (int trial = 0; trial < 60; ++trial) {
    GroupedComputationOptions opt;
    opt.groups = 2 + static_cast<int>(rng.index(2));
    opt.groupSize = 2;
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(3));
    opt.messageProbability = 0.5;
    const Computation c = randomGroupedComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "b", 0.3, rng);
    const CnfPredicate pred =
        randomSingularKCnf(opt.groups, opt.groupSize, "b", rng);
    const VectorClocks vc(c);
    const SatEncodingResult viaSat = detectSingularViaSat(vc, trace, pred);
    const bool expected = latticePossiblyCnf(vc, trace, pred);
    ASSERT_EQ(viaSat.cut.has_value(), expected) << "trial " << trial;
    EXPECT_EQ(detectSingularByChainCover(vc, trace, pred).found, expected);
    if (viaSat.cut) {
      ++found;
      EXPECT_TRUE(vc.isConsistent(*viaSat.cut));
      EXPECT_TRUE(pred.holdsAtCut(trace, *viaSat.cut));
    }
  }
  EXPECT_GT(found, 10);
}

TEST(SatEncodingTest, EncodingSizeIsQuadraticInCandidates) {
  Rng rng(203);
  GroupedComputationOptions opt;
  opt.groups = 3;
  opt.groupSize = 2;
  opt.eventsPerProcess = 6;
  opt.messageProbability = 0.5;
  const Computation c = randomGroupedComputation(opt, rng);
  VariableTrace trace(c);
  defineRandomBools(trace, "b", 0.5, rng);
  const CnfPredicate pred = randomSingularKCnf(3, 2, "b", rng);
  const VectorClocks vc(c);
  const SatEncodingResult res = detectSingularViaSat(vc, trace, pred);
  EXPECT_GT(res.variables, 0);
  // groups + at most one clause per candidate pair.
  const std::uint64_t v = res.variables;
  EXPECT_LE(res.clauses, 3 + v * (v - 1) / 2);
}

TEST(SatEncodingTest, EmptyGroupShortCircuits) {
  ComputationBuilder b(2);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.defineBool(0, "b", {false});
  trace.defineBool(1, "b", {true});
  CnfPredicate pred;
  pred.clauses = {{{0, "b", true}}, {{1, "b", true}}};
  const VectorClocks vc(c);
  const SatEncodingResult res = detectSingularViaSat(vc, trace, pred);
  EXPECT_FALSE(res.cut.has_value());
}

TEST(SatEncodingTest, RejectsNonSingular) {
  ComputationBuilder b(2);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.defineBool(0, "b", {true});
  trace.defineBool(1, "b", {true});
  CnfPredicate pred;
  pred.clauses = {{{0, "b", true}}, {{0, "b", false}, {1, "b", true}}};
  const VectorClocks vc(c);
  EXPECT_THROW(detectSingularViaSat(vc, trace, pred), CheckFailure);
}

}  // namespace
}  // namespace gpd::detect
