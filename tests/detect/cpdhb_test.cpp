#include "detect/cpdhb.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd::detect {
namespace {

TEST(CpdhbTest, EmptyChainListTriviallyFound) {
  ComputationBuilder b(1);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  const auto res = findConsistentSelection(vc, {});
  EXPECT_TRUE(res.found);
}

TEST(CpdhbTest, EmptyChainMeansNotFound) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  std::vector<Chain> chains(2);
  chains[0].events = {{0, 1}};
  const auto res = findConsistentSelection(vc, chains);
  EXPECT_FALSE(res.found);
}

TEST(CpdhbTest, ConcurrentTrueEventsFound) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(1);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  std::vector<Chain> chains(2);
  chains[0].events = {{0, 1}};
  chains[1].events = {{1, 1}};
  const auto res = findConsistentSelection(vc, chains);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.witness.size(), 2u);
  ASSERT_TRUE(res.cut.has_value());
  EXPECT_TRUE(vc.isConsistent(*res.cut));
}

TEST(CpdhbTest, MessageOrderingEliminatesEarlyEvent) {
  // p0: e1(true) e2 --msg--> p1: f1(true); e1's successor e2 precedes f1,
  // so {e1, f1} is inconsistent and there is no other pair.
  ComputationBuilder b(2);
  const EventId e1 = b.appendEvent(0);
  const EventId e2 = b.appendEvent(0);
  const EventId f1 = b.appendEvent(1);
  b.addMessage(e2, f1);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  std::vector<Chain> chains(2);
  chains[0].events = {e1};
  chains[1].events = {f1};
  EXPECT_FALSE(findConsistentSelection(vc, chains).found);
}

TEST(CpdhbTest, AdvancesToLaterTrueEvent) {
  // As above but p0 has a second true event after the send.
  ComputationBuilder b(2);
  const EventId e1 = b.appendEvent(0);
  const EventId e2 = b.appendEvent(0);
  const EventId e3 = b.appendEvent(0);
  const EventId f1 = b.appendEvent(1);
  b.addMessage(e2, f1);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  std::vector<Chain> chains(2);
  chains[0].events = {e1, e3};
  chains[1].events = {f1};
  const auto res = findConsistentSelection(vc, chains);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.witness[0], e3);
  EXPECT_EQ(res.witness[1], f1);
}

TEST(CpdhbTest, DuplicateEventAcrossChains) {
  ComputationBuilder b(2);
  const EventId e1 = b.appendEvent(0);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  std::vector<Chain> chains(2);
  chains[0].events = {e1};
  chains[1].events = {e1};
  const auto res = findConsistentSelection(vc, chains);
  ASSERT_TRUE(res.found);
  EXPECT_EQ(res.witness[0], res.witness[1]);
}

TEST(CpdhbTest, RejectsTwoTermsOnOneProcess) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  VariableTrace t(c);
  t.defineBool(0, "x", {true, true});
  ConjunctivePredicate pred{{varTrue(0, "x"), varTrue(0, "x")}};
  EXPECT_THROW(detectConjunctive(t, pred), CheckFailure);
}

// The headline property: CPDHB ≡ exhaustive lattice search for conjunctive
// predicates, over many random computations and traces.
TEST(CpdhbTest, MatchesLatticeGroundTruth) {
  Rng rng(2025);
  int foundCount = 0;
  for (int trial = 0; trial < 120; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(3));
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(5));
    opt.messageProbability = rng.real() * 0.8;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.3 + 0.4 * rng.real(), rng);
    ConjunctivePredicate pred;
    for (ProcessId p = 0; p < c.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "x"));
    }
    const VectorClocks vc(c);
    const auto res = detectConjunctive(vc, trace, pred);
    const bool expected = lattice::possiblyExhaustive(vc, [&](const Cut& cut) {
      return pred.holdsAtCut(trace, cut);
    });
    ASSERT_EQ(res.found, expected) << "trial " << trial;
    if (res.found) {
      ++foundCount;
      ASSERT_TRUE(res.cut.has_value());
      EXPECT_TRUE(vc.isConsistent(*res.cut));
      EXPECT_TRUE(pred.holdsAtCut(trace, *res.cut));
      for (const EventId& e : res.witness) {
        EXPECT_TRUE(res.cut->passesThrough(e));
      }
    }
  }
  // The sweep must exercise both outcomes.
  EXPECT_GT(foundCount, 10);
  EXPECT_LT(foundCount, 110);
}

// Subset-of-processes conjunctions (Observation 1: witnesses need not cover
// every process).
TEST(CpdhbTest, PartialProcessConjunctions) {
  Rng rng(31337);
  for (int trial = 0; trial < 60; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 4;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.4, rng);
    ConjunctivePredicate pred{{varTrue(0, "x"), varTrue(2, "x")}};
    const VectorClocks vc(c);
    const auto res = detectConjunctive(vc, trace, pred);
    const bool expected = lattice::possiblyExhaustive(vc, [&](const Cut& cut) {
      return pred.holdsAtCut(trace, cut);
    });
    EXPECT_EQ(res.found, expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace gpd::detect
