#include "detect/dnf_detect.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"

namespace gpd::detect {
namespace {

BoolExprPtr randomExpr(int procs, int depth, Rng& rng) {
  if (depth == 0 || rng.chance(0.35)) {
    return BoolExpr::var(static_cast<ProcessId>(rng.index(procs)), "x");
  }
  switch (rng.index(3)) {
    case 0:
      return BoolExpr::negate(randomExpr(procs, depth - 1, rng));
    case 1: {
      std::vector<BoolExprPtr> kids;
      for (int i = 0; i < 2; ++i) kids.push_back(randomExpr(procs, depth - 1, rng));
      return BoolExpr::conjunction(std::move(kids));
    }
    default: {
      std::vector<BoolExprPtr> kids;
      for (int i = 0; i < 2; ++i) kids.push_back(randomExpr(procs, depth - 1, rng));
      return BoolExpr::disjunction(std::move(kids));
    }
  }
}

TEST(DnfDetectTest, SimpleDisjunctionFindsWitness) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(1);
  const Computation c = std::move(b).build();
  VariableTrace t(c);
  t.defineBool(0, "x", {false, true});
  t.defineBool(1, "x", {false, false});
  const VectorClocks vc(c);
  // x@p0 ∨ x@p1: only p0 can supply it.
  const auto expr = BoolExpr::disjunction(
      {BoolExpr::var(0, "x"), BoolExpr::var(1, "x")});
  const DnfResult res = possiblyExpression(vc, t, *expr);
  ASSERT_TRUE(res.cut.has_value());
  EXPECT_TRUE(expr->evaluate(t, *res.cut));
  EXPECT_EQ(res.termsTotal, 2u);
}

TEST(DnfDetectTest, ContradictionNeverDetected) {
  ComputationBuilder b(1);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  VariableTrace t(c);
  t.defineBool(0, "x", {true, false});
  const VectorClocks vc(c);
  const auto x = BoolExpr::var(0, "x");
  const auto expr = BoolExpr::conjunction({x, BoolExpr::negate(x)});
  const DnfResult res = possiblyExpression(vc, t, *expr);
  EXPECT_FALSE(res.cut.has_value());
  EXPECT_EQ(res.termsTotal, 0u);
}

TEST(DnfDetectTest, MixedLiteralsOnOneProcess) {
  // (x ∧ ¬y)@p0 ∧ x@p1: per-process conjunction of literals.
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(0);
  b.appendEvent(1);
  const Computation c = std::move(b).build();
  VariableTrace t(c);
  t.defineBool(0, "x", {false, true, true});
  t.defineBool(0, "y", {true, true, false});
  t.defineBool(1, "x", {false, true});
  for (ProcessId p = 0; p < 2; ++p) {
    if (!t.has(p, "y")) t.defineBool(p, "y", std::vector<bool>(c.eventCount(p), false));
  }
  const VectorClocks vc(c);
  const auto expr = BoolExpr::conjunction(
      {BoolExpr::var(0, "x"), BoolExpr::negate(BoolExpr::var(0, "y")),
       BoolExpr::var(1, "x")});
  const DnfResult res = possiblyExpression(vc, t, *expr);
  ASSERT_TRUE(res.cut.has_value());
  // Only event (0,2) has x ∧ ¬y on p0.
  EXPECT_EQ(res.cut->last[0], 2);
}

// Headline property: DNF-decomposed detection ≡ lattice search for random
// expressions over random computations.
TEST(DnfDetectTest, MatchesLatticeOnRandomExpressions) {
  Rng rng(6174);
  int found = 0;
  for (int trial = 0; trial < 80; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(3));
    opt.messageProbability = rng.real() * 0.7;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.4, rng);
    const auto expr = randomExpr(3, 3, rng);
    const VectorClocks vc(c);
    const DnfResult res = possiblyExpression(vc, trace, *expr);
    const bool expected = lattice::possiblyExhaustive(vc, [&](const Cut& cut) {
      return expr->evaluate(trace, cut);
    });
    ASSERT_EQ(res.cut.has_value(), expected)
        << "trial " << trial << " expr " << expr->toString();
    if (res.cut) {
      ++found;
      EXPECT_TRUE(vc.isConsistent(*res.cut));
      EXPECT_TRUE(expr->evaluate(trace, *res.cut));
    }
  }
  EXPECT_GT(found, 20);
}

}  // namespace
}  // namespace gpd::detect
