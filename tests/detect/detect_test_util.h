// Shared helpers for detection tests: random singular CNF predicates over
// grouped computations and lattice-based ground truth.
#pragma once

#include <string>

#include "clocks/vector_clock.h"
#include "lattice/explore.h"
#include "predicates/cnf.h"
#include "predicates/variable_trace.h"
#include "util/rng.h"

namespace gpd::detect::testing {

// Singular k-CNF over consecutive process groups (process p in group
// p / groupSize), one literal per process with random polarity, all on
// boolean variable `var`.
inline CnfPredicate randomSingularKCnf(int groups, int groupSize,
                                       const std::string& var, Rng& rng) {
  CnfPredicate pred;
  for (int g = 0; g < groups; ++g) {
    CnfClause clause;
    for (int i = 0; i < groupSize; ++i) {
      clause.push_back({g * groupSize + i, var, rng.chance(0.5)});
    }
    pred.clauses.push_back(std::move(clause));
  }
  return pred;
}

inline bool latticePossiblyCnf(const VectorClocks& clocks,
                               const VariableTrace& trace,
                               const CnfPredicate& pred) {
  return lattice::possiblyExhaustive(
      clocks, [&](const Cut& cut) { return pred.holdsAtCut(trace, cut); });
}

}  // namespace gpd::detect::testing
