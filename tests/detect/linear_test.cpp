#include "detect/linear.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "detect/cpdhb.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"
#include "util/check.h"

namespace gpd::detect {
namespace {

TEST(LinearTest, ConjunctiveOracleMatchesCpdhb) {
  Rng rng(112);
  for (int trial = 0; trial < 80; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(4));
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(6));
    opt.messageProbability = rng.real() * 0.8;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.4, rng);
    ConjunctivePredicate pred;
    for (ProcessId p = 0; p < c.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "x"));
    }
    const VectorClocks vc(c);
    const LinearResult linear =
        detectLinear(vc, conjunctiveOracle(trace, pred));
    const ConjunctiveResult cpdhb = detectConjunctive(vc, trace, pred);
    ASSERT_EQ(linear.cut.has_value(), cpdhb.found) << "trial " << trial;
    if (linear.cut) {
      EXPECT_TRUE(vc.isConsistent(*linear.cut));
      EXPECT_TRUE(pred.holdsAtCut(trace, *linear.cut));
    }
  }
}

TEST(LinearTest, FindsLeastSatisfyingCut) {
  Rng rng(113);
  for (int trial = 0; trial < 40; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.5, rng);
    ConjunctivePredicate pred;
    for (ProcessId p = 0; p < 3; ++p) pred.terms.push_back(varTrue(p, "x"));
    const VectorClocks vc(c);
    const LinearResult res = detectLinear(vc, conjunctiveOracle(trace, pred));
    if (!res.cut) continue;
    // Minimality: every satisfying consistent cut contains res.cut.
    lattice::forEachConsistentCut(vc, [&](const Cut& cut) {
      if (pred.holdsAtCut(trace, cut)) {
        EXPECT_TRUE(res.cut->subsetOf(cut))
            << res.cut->toString() << " vs " << cut.toString();
      }
      return true;
    });
  }
}

TEST(LinearTest, OracleCallsLinearInEvents) {
  Rng rng(114);
  RandomComputationOptions opt;
  opt.processes = 5;
  opt.eventsPerProcess = 40;
  opt.messageProbability = 0.4;
  const Computation c = randomComputation(opt, rng);
  VariableTrace trace(c);
  defineRandomBools(trace, "x", 0.05, rng);  // hard to satisfy: long walk
  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < 5; ++p) pred.terms.push_back(varTrue(p, "x"));
  const VectorClocks vc(c);
  const LinearResult res = detectLinear(vc, conjunctiveOracle(trace, pred));
  EXPECT_LE(res.oracleCalls,
            static_cast<std::uint64_t>(c.totalEvents()) + 1);
}

TEST(LinearTest, ChannelsEmptyOracle) {
  // p0 sends to p1: the only nonempty-channel cuts are those containing the
  // send but not the receive.
  ComputationBuilder b(2);
  const EventId s = b.appendEvent(0);
  const EventId r = b.appendEvent(1);
  b.addMessage(s, r);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  const auto oracle = channelsEmptyOracle(c);
  EXPECT_FALSE(oracle(initialCut(c)).has_value());   // nothing sent yet
  EXPECT_FALSE(oracle(finalCut(c)).has_value());     // everything received
  const Cut inFlight(std::vector<int>{1, 0});
  ASSERT_TRUE(oracle(inFlight).has_value());
  EXPECT_EQ(*oracle(inFlight), 1);  // the receiver is forbidden

  // The detector finds the least empty-channel cut ⊇ any start; from ⊥ that
  // is ⊥ itself.
  const LinearResult res = detectLinear(vc, oracle);
  ASSERT_TRUE(res.cut.has_value());
  EXPECT_EQ(*res.cut, initialCut(c));
}

TEST(LinearTest, TerminationOracleMatchesLattice) {
  Rng rng(115);
  for (int trial = 0; trial < 40; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    // "active" flags that eventually drop to 0 on most processes.
    for (ProcessId p = 0; p < 3; ++p) {
      std::vector<std::int64_t> act(c.eventCount(p), 1);
      const int quietFrom =
          static_cast<int>(rng.index(c.eventCount(p) + 1));
      for (int i = quietFrom; i < c.eventCount(p); ++i) act[i] = 0;
      trace.define(p, "active", std::move(act));
    }
    const VectorClocks vc(c);
    const auto oracle = terminationOracle(trace, "active");
    const LinearResult res = detectLinear(vc, oracle);
    const bool expected = lattice::possiblyExhaustive(vc, [&](const Cut& cut) {
      return !oracle(cut).has_value();
    });
    ASSERT_EQ(res.cut.has_value(), expected) << "trial " << trial;
    if (res.cut) { EXPECT_FALSE(oracle(*res.cut).has_value()); }
  }
}

TEST(LinearTest, BadForbiddenProcessRejected) {
  ComputationBuilder b(1);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  const auto oracle = [](const Cut&) { return std::optional<ProcessId>(7); };
  EXPECT_THROW(detectLinear(vc, oracle), CheckFailure);
}

}  // namespace
}  // namespace gpd::detect
