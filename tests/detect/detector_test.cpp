#include "detect/detector.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"

namespace gpd::detect {
namespace {

TEST(DetectorTest, ConjunctiveDispatchesToCpdhb) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(1);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.defineBool(0, "x", {false, true});
  trace.defineBool(1, "y", {false, true});
  Detector det(trace);
  ConjunctivePredicate pred{{varTrue(0, "x"), varTrue(1, "y")}};
  const auto cut = det.possibly(pred);
  EXPECT_EQ(det.lastAlgorithm(), "cpdhb");
  ASSERT_TRUE(cut.has_value());
  EXPECT_TRUE(pred.holdsAtCut(trace, *cut));
}

TEST(DetectorTest, SingularCnfUsesSpecialCaseWhenApplicable) {
  Rng rng(11);
  GroupedComputationOptions opt;
  opt.groups = 2;
  opt.groupSize = 2;
  opt.eventsPerProcess = 5;
  opt.messageProbability = 0.6;
  opt.discipline = OrderingDiscipline::ReceiveOrdered;
  const Computation c = randomGroupedComputation(opt, rng);
  VariableTrace trace(c);
  defineRandomBools(trace, "x", 0.4, rng);
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {1, "x", true}},
                  {{2, "x", true}, {3, "x", false}}};
  Detector det(trace);
  det.possibly(pred);
  EXPECT_EQ(det.lastAlgorithm(), "cpdsc-special-case");
}

TEST(DetectorTest, SingularCnfFallsBackToChainCover) {
  // Crossing receives inside both groups defeat both orderings.
  ComputationBuilder b(4);
  const EventId s1 = b.appendEvent(2);
  const EventId s2 = b.appendEvent(3);
  const EventId r1 = b.appendEvent(0);
  const EventId r2 = b.appendEvent(1);
  const EventId s3 = b.appendEvent(0);
  const EventId s4 = b.appendEvent(1);
  const EventId r3 = b.appendEvent(2);
  const EventId r4 = b.appendEvent(3);
  b.addMessage(s1, r1);
  b.addMessage(s2, r2);
  b.addMessage(s3, r3);
  b.addMessage(s4, r4);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  for (ProcessId p = 0; p < 4; ++p) {
    trace.defineBool(p, "x", std::vector<bool>(c.eventCount(p), true));
  }
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {1, "x", true}},
                  {{2, "x", true}, {3, "x", true}}};
  Detector det(trace);
  const auto cut = det.possibly(pred);
  EXPECT_EQ(det.lastAlgorithm(), "singular-chain-cover");
  EXPECT_TRUE(cut.has_value());
}

TEST(DetectorTest, NonSingularCnfWithSkeletonSlicesFirst) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.defineBool(0, "x", {true, false});
  trace.defineBool(1, "y", {true});
  CnfPredicate pred;
  // The single-process second clause is a regular skeleton: the planner
  // routes the lattice search through the slice-first pre-pass.
  pred.clauses = {{{0, "x", true}, {1, "y", true}}, {{0, "x", false}}};
  Detector det(trace);
  const auto cut = det.possibly(pred);
  EXPECT_EQ(det.lastAlgorithm(), "slice-first");
  ASSERT_TRUE(cut.has_value());
  EXPECT_TRUE(pred.holdsAtCut(trace, *cut));
  ASSERT_TRUE(det.lastSlice().has_value());
  EXPECT_TRUE(det.lastSlice()->usedSlice);
  EXPECT_EQ(det.lastSlice()->eventsTotal, 3u);

  // Forcing slicing off must reproduce the historical unsliced path with
  // the same verdict.
  det.enableSlicing(false);
  const auto unsliced = det.possibly(pred);
  EXPECT_EQ(det.lastAlgorithm(), "lattice-enumeration");
  ASSERT_TRUE(unsliced.has_value());
  EXPECT_EQ(*unsliced, *cut);
  EXPECT_FALSE(det.lastSlice().has_value());
}

TEST(DetectorTest, NonSingularCnfWithoutSkeletonUsesLattice) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(1);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.defineBool(0, "x", {true, false});
  trace.defineBool(1, "y", {false, true});
  CnfPredicate pred;
  // Every clause spans both processes: no regular skeleton to slice on.
  pred.clauses = {{{0, "x", true}, {1, "y", true}},
                  {{0, "x", false}, {1, "y", false}}};
  Detector det(trace);
  const auto cut = det.possibly(pred);
  EXPECT_EQ(det.lastAlgorithm(), "lattice-enumeration");
  ASSERT_TRUE(cut.has_value());
  EXPECT_TRUE(pred.holdsAtCut(trace, *cut));
  EXPECT_FALSE(det.lastSlice().has_value());
}

TEST(DetectorTest, SumDispatch) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(1);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.define(0, "x", {0, 1});
  trace.define(1, "x", {0, 1});
  Detector det(trace);

  SumPredicate ge{{{0, "x"}, {1, "x"}}, Relop::GreaterEq, 2};
  EXPECT_TRUE(det.possibly(ge).has_value());
  EXPECT_EQ(det.lastAlgorithm(), "min-cut-extrema");

  SumPredicate eq{{{0, "x"}, {1, "x"}}, Relop::Equal, 1};
  EXPECT_TRUE(det.possibly(eq).has_value());
  EXPECT_EQ(det.lastAlgorithm(), "theorem-7-exact-sum");
}

TEST(DetectorTest, UnboundedExactSumFallsBackToLattice) {
  ComputationBuilder b(1);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.define(0, "x", {0, 7});
  Detector det(trace);
  SumPredicate eq{{{0, "x"}}, Relop::Equal, 7};
  EXPECT_TRUE(det.possibly(eq).has_value());
  EXPECT_EQ(det.lastAlgorithm(), "lattice-enumeration");
  eq.k = 3;
  EXPECT_FALSE(det.possibly(eq).has_value());
}

TEST(DetectorTest, SymmetricAndDefinitely) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  trace.defineBool(0, "x", {false, true});
  trace.defineBool(1, "x", {false});
  Detector det(trace);

  std::vector<SumTerm> vars{{0, "x"}, {1, "x"}};
  const auto nae = notAllEqual(vars);
  EXPECT_TRUE(det.possibly(nae).has_value());
  EXPECT_EQ(det.lastAlgorithm(), "symmetric-exact-sum-disjunction");
  // p0 must eventually flip to true and p1 stays false: in every run the
  // states diverge at the end, but the initial state is all-false... the
  // *final* cut always has exactly one true — definitely holds.
  EXPECT_TRUE(det.definitely(nae));

  SumPredicate eq{vars, Relop::Equal, 1};
  EXPECT_TRUE(det.definitely(eq));
  EXPECT_EQ(det.lastAlgorithm(), "theorem-7-definitely");
}

// Cross-check the facade against ground truth on random inputs of each class.
TEST(DetectorTest, FacadeMatchesLatticeEverywhere) {
  Rng rng(31415);
  for (int trial = 0; trial < 30; ++trial) {
    GroupedComputationOptions opt;
    opt.groups = 2;
    opt.groupSize = 2;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.5;
    opt.discipline = trial % 3 == 0 ? OrderingDiscipline::None
                     : trial % 3 == 1 ? OrderingDiscipline::ReceiveOrdered
                                      : OrderingDiscipline::SendOrdered;
    const Computation c = randomGroupedComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.35, rng);
    const VectorClocks vc(c);
    Detector det(trace);

    CnfPredicate cnf;
    cnf.clauses = {{{0, "x", true}, {1, "x", rng.chance(0.5)}},
                   {{2, "x", rng.chance(0.5)}, {3, "x", true}}};
    const bool expected = lattice::possiblyExhaustive(vc, [&](const Cut& cut) {
      return cnf.holdsAtCut(trace, cut);
    });
    EXPECT_EQ(det.possibly(cnf).has_value(), expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace gpd::detect
