#include "detect/cpdsc.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "detect/singular_cnf.h"
#include "detect_test_util.h"
#include "predicates/random_trace.h"

namespace gpd::detect {
namespace {

using testing::latticePossiblyCnf;
using testing::randomSingularKCnf;

Groups consecutiveGroups(int groups, int groupSize) {
  Groups g(groups);
  for (int i = 0; i < groups; ++i) {
    for (int j = 0; j < groupSize; ++j) g[i].push_back(i * groupSize + j);
  }
  return g;
}

TEST(CpdscTest, GroupsOfSingularCnf) {
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {1, "x", true}},
                  {{3, "x", true}, {2, "x", false}}};
  const Groups groups = groupsOfSingularCnf(pred);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<ProcessId>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<ProcessId>{2, 3}));
}

TEST(CpdscTest, GeneratedReceiveOrderedComputationsQualify) {
  Rng rng(515);
  for (int trial = 0; trial < 20; ++trial) {
    GroupedComputationOptions opt;
    opt.groups = 3;
    opt.groupSize = 2;
    opt.eventsPerProcess = 6;
    opt.messageProbability = 0.7;
    opt.discipline = OrderingDiscipline::ReceiveOrdered;
    const Computation c = randomGroupedComputation(opt, rng);
    const VectorClocks vc(c);
    EXPECT_TRUE(isReceiveOrdered(vc, consecutiveGroups(3, 2)));
  }
}

TEST(CpdscTest, GeneratedSendOrderedComputationsQualify) {
  Rng rng(516);
  for (int trial = 0; trial < 20; ++trial) {
    GroupedComputationOptions opt;
    opt.groups = 3;
    opt.groupSize = 2;
    opt.eventsPerProcess = 6;
    opt.messageProbability = 0.7;
    opt.discipline = OrderingDiscipline::SendOrdered;
    const Computation c = randomGroupedComputation(opt, rng);
    const VectorClocks vc(c);
    EXPECT_TRUE(isSendOrdered(vc, consecutiveGroups(3, 2)));
  }
}

TEST(CpdscTest, SingleProcessGroupsAlwaysApplicable) {
  // Group size 1: receives on one process are totally ordered by the process
  // order, so every computation qualifies (CPDSC degenerates to CPDHB).
  Rng rng(517);
  RandomComputationOptions opt;
  opt.processes = 4;
  opt.eventsPerProcess = 6;
  opt.messageProbability = 0.8;
  const Computation c = randomComputation(opt, rng);
  const VectorClocks vc(c);
  EXPECT_TRUE(isReceiveOrdered(vc, consecutiveGroups(4, 1)));
}

struct SpecialCaseParams {
  OrderingDiscipline discipline;
  int groups;
  int groupSize;
  int events;
  double msgProb;
  double density;
};

class CpdscSweep : public ::testing::TestWithParam<SpecialCaseParams> {};

TEST_P(CpdscSweep, MatchesLatticeGroundTruth) {
  const SpecialCaseParams& params = GetParam();
  Rng rng(6000 + params.groups * 31 + params.groupSize * 7 +
          static_cast<int>(params.discipline) * 101 + params.events);
  int found = 0;
  int applicable = 0;
  for (int trial = 0; trial < 40; ++trial) {
    GroupedComputationOptions opt;
    opt.groups = params.groups;
    opt.groupSize = params.groupSize;
    opt.eventsPerProcess = params.events;
    opt.messageProbability = params.msgProb;
    opt.discipline = params.discipline;
    const Computation c = randomGroupedComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", params.density, rng);
    const CnfPredicate pred =
        randomSingularKCnf(params.groups, params.groupSize, "x", rng);
    const VectorClocks vc(c);
    const CpdscResult res = detectSingularSpecialCase(vc, trace, pred);
    ASSERT_TRUE(res.applicable()) << "generator broke the discipline?";
    ++applicable;
    const bool expected = latticePossiblyCnf(vc, trace, pred);
    ASSERT_EQ(res.found(), expected) << "trial " << trial;
    if (res.found()) {
      ++found;
      ASSERT_TRUE(res.cut.has_value());
      EXPECT_TRUE(vc.isConsistent(*res.cut));
      EXPECT_TRUE(pred.holdsAtCut(trace, *res.cut));
      for (const EventId& e : res.witness) {
        EXPECT_TRUE(res.cut->passesThrough(e));
      }
    }
  }
  EXPECT_GT(found, 0);
  EXPECT_EQ(applicable, 40);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CpdscSweep,
    ::testing::Values(
        SpecialCaseParams{OrderingDiscipline::ReceiveOrdered, 2, 2, 4, 0.6, 0.3},
        SpecialCaseParams{OrderingDiscipline::ReceiveOrdered, 3, 2, 3, 0.5, 0.35},
        SpecialCaseParams{OrderingDiscipline::ReceiveOrdered, 2, 3, 3, 0.6, 0.25},
        SpecialCaseParams{OrderingDiscipline::SendOrdered, 2, 2, 4, 0.6, 0.3},
        SpecialCaseParams{OrderingDiscipline::SendOrdered, 3, 2, 3, 0.5, 0.35},
        SpecialCaseParams{OrderingDiscipline::SendOrdered, 2, 3, 3, 0.6, 0.25}));

TEST(CpdscTest, AgreesWithGeneralAlgorithmsWhenApplicable) {
  Rng rng(618);
  for (int trial = 0; trial < 30; ++trial) {
    GroupedComputationOptions opt;
    opt.groups = 2;
    opt.groupSize = 2;
    opt.eventsPerProcess = 5;
    opt.messageProbability = 0.6;
    opt.discipline = trial % 2 == 0 ? OrderingDiscipline::ReceiveOrdered
                                    : OrderingDiscipline::SendOrdered;
    const Computation c = randomGroupedComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.3, rng);
    const CnfPredicate pred = randomSingularKCnf(2, 2, "x", rng);
    const VectorClocks vc(c);
    const CpdscResult special = detectSingularSpecialCase(vc, trace, pred);
    const auto general = detectSingularByChainCover(vc, trace, pred);
    ASSERT_TRUE(special.applicable());
    EXPECT_EQ(special.found(), general.found) << "trial " << trial;
  }
}

TEST(CpdscTest, NotApplicableOnCrossingReceives) {
  // Two processes in one group, each receiving from outside, with the
  // receives concurrent: not receive-ordered; sends on a third process
  // ordered... sends are on two different processes too → not send-ordered.
  ComputationBuilder b(4);
  const EventId s1 = b.appendEvent(2);
  const EventId s2 = b.appendEvent(3);
  const EventId r1 = b.appendEvent(0);
  const EventId r2 = b.appendEvent(1);
  b.addMessage(s1, r1);
  b.addMessage(s2, r2);
  const Computation c = std::move(b).build();
  VariableTrace trace(c);
  for (ProcessId p = 0; p < 4; ++p) {
    trace.defineBool(p, "x", std::vector<bool>(c.eventCount(p), true));
  }
  CnfPredicate pred;
  pred.clauses = {{{0, "x", true}, {1, "x", true}},
                  {{2, "x", true}, {3, "x", true}}};
  const VectorClocks vc(c);
  EXPECT_FALSE(isReceiveOrdered(vc, groupsOfSingularCnf(pred)));
  EXPECT_FALSE(isSendOrdered(vc, groupsOfSingularCnf(pred)));
  const CpdscResult res = detectSingularSpecialCase(vc, trace, pred);
  EXPECT_FALSE(res.applicable());
}

}  // namespace
}  // namespace gpd::detect
