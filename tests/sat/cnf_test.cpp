#include "sat/cnf.h"

#include <gtest/gtest.h>

namespace gpd::sat {
namespace {

TEST(CnfTest, SatisfiesEvaluatesClauses) {
  Cnf cnf;
  cnf.numVars = 2;
  cnf.addClause({{0, true}, {1, false}});  // x0 | !x1
  EXPECT_TRUE(satisfies(cnf, {true, true}));
  EXPECT_TRUE(satisfies(cnf, {false, false}));
  EXPECT_FALSE(satisfies(cnf, {false, true}));
}

TEST(CnfTest, EmptyFormulaIsSatisfied) {
  Cnf cnf;
  cnf.numVars = 1;
  EXPECT_TRUE(satisfies(cnf, {false}));
}

TEST(CnfTest, EmptyClauseIsUnsatisfiable) {
  Cnf cnf;
  cnf.numVars = 1;
  cnf.addClause({});
  EXPECT_FALSE(satisfies(cnf, {true}));
}

TEST(CnfTest, NegatedLiteral) {
  const Lit l{3, true};
  EXPECT_EQ(l.negated(), (Lit{3, false}));
  EXPECT_EQ(l.negated().negated(), l);
}

TEST(CnfTest, RandomKCnfShape) {
  Rng rng(1);
  const Cnf cnf = randomKCnf(10, 20, 3, rng);
  EXPECT_EQ(cnf.numVars, 10);
  EXPECT_EQ(cnf.clauses.size(), 20u);
  for (const Clause& c : cnf.clauses) {
    ASSERT_EQ(c.size(), 3u);
    // Distinct variables within a clause.
    EXPECT_NE(c[0].var, c[1].var);
    EXPECT_NE(c[0].var, c[2].var);
    EXPECT_NE(c[1].var, c[2].var);
  }
}

TEST(CnfTest, IsNonMonotoneDetectsViolations) {
  Cnf ok;
  ok.numVars = 3;
  ok.addClause({{0, true}, {1, false}, {2, true}});
  ok.addClause({{0, true}, {1, true}});  // 2-clauses are unconstrained
  EXPECT_TRUE(isNonMonotone(ok));

  Cnf allPos = ok;
  allPos.addClause({{0, true}, {1, true}, {2, true}});
  EXPECT_FALSE(isNonMonotone(allPos));

  Cnf allNeg = ok;
  allNeg.addClause({{0, false}, {1, false}, {2, false}});
  EXPECT_FALSE(isNonMonotone(allNeg));

  Cnf tooWide = ok;
  tooWide.numVars = 4;
  tooWide.addClause({{0, true}, {1, false}, {2, true}, {3, true}});
  EXPECT_FALSE(isNonMonotone(tooWide));
}

TEST(CnfTest, ToStringReadable) {
  Cnf cnf;
  cnf.numVars = 3;
  cnf.addClause({{0, true}, {2, false}});
  cnf.addClause({{1, true}});
  EXPECT_EQ(toString(cnf), "(x0 | !x2) & (x1)");
}

}  // namespace
}  // namespace gpd::sat
