#include "sat/nonmonotone.h"

#include <gtest/gtest.h>

#include "sat/dpll.h"

namespace gpd::sat {
namespace {

TEST(NonMonotoneTest, MixedClausesPassThrough) {
  Cnf cnf;
  cnf.numVars = 3;
  cnf.addClause({{0, true}, {1, false}, {2, true}});
  const auto t = toNonMonotone(cnf);
  EXPECT_EQ(t.formula.numVars, 3);
  EXPECT_EQ(t.formula.clauses.size(), 1u);
}

TEST(NonMonotoneTest, AllPositiveClauseRewritten) {
  Cnf cnf;
  cnf.numVars = 3;
  cnf.addClause({{0, true}, {1, true}, {2, true}});
  const auto t = toNonMonotone(cnf);
  EXPECT_TRUE(isNonMonotone(t.formula));
  EXPECT_EQ(t.formula.numVars, 4);          // one fresh variable
  EXPECT_EQ(t.formula.clauses.size(), 3u);  // rewritten + two equivalence clauses
}

TEST(NonMonotoneTest, AllNegativeClauseRewritten) {
  Cnf cnf;
  cnf.numVars = 3;
  cnf.addClause({{0, false}, {1, false}, {2, false}});
  const auto t = toNonMonotone(cnf);
  EXPECT_TRUE(isNonMonotone(t.formula));
}

TEST(NonMonotoneTest, EquisatisfiableOnRandomFormulas) {
  Rng rng(606);
  for (int trial = 0; trial < 80; ++trial) {
    const int vars = 3 + static_cast<int>(rng.index(6));
    const int clauses = 1 + static_cast<int>(rng.index(3 * vars));
    const Cnf cnf = randomKCnf(vars, clauses, 3, rng);
    const auto t = toNonMonotone(cnf);
    ASSERT_TRUE(isNonMonotone(t.formula));
    const auto orig = solveDpll(cnf);
    const auto trans = solveDpll(t.formula);
    EXPECT_EQ(orig.has_value(), trans.has_value()) << "trial " << trial;
    if (trans) {
      // The projected assignment must satisfy the original formula.
      EXPECT_TRUE(satisfies(cnf, projectAssignment(t, *trans)));
    }
  }
}

TEST(NonMonotoneTest, RejectsWideClauses) {
  Cnf cnf;
  cnf.numVars = 4;
  cnf.addClause({{0, true}, {1, true}, {2, true}, {3, true}});
  EXPECT_THROW(toNonMonotone(cnf), CheckFailure);
}

}  // namespace
}  // namespace gpd::sat
