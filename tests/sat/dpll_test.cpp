#include "sat/dpll.h"

#include <gtest/gtest.h>

namespace gpd::sat {
namespace {

// Satisfiability by truth-table enumeration.
bool bruteSat(const Cnf& cnf) {
  for (int mask = 0; mask < (1 << cnf.numVars); ++mask) {
    Assignment a(cnf.numVars);
    for (int v = 0; v < cnf.numVars; ++v) a[v] = mask >> v & 1;
    if (satisfies(cnf, a)) return true;
  }
  return cnf.numVars == 0 && cnf.clauses.empty();
}

TEST(DpllTest, TrivialSat) {
  Cnf cnf;
  cnf.numVars = 1;
  cnf.addClause({{0, true}});
  const auto a = solveDpll(cnf);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE((*a)[0]);
}

TEST(DpllTest, TrivialUnsat) {
  Cnf cnf;
  cnf.numVars = 1;
  cnf.addClause({{0, true}});
  cnf.addClause({{0, false}});
  EXPECT_FALSE(solveDpll(cnf).has_value());
}

TEST(DpllTest, EmptyClauseUnsat) {
  Cnf cnf;
  cnf.numVars = 2;
  cnf.addClause({});
  EXPECT_FALSE(solveDpll(cnf).has_value());
}

TEST(DpllTest, EmptyFormulaSat) {
  Cnf cnf;
  cnf.numVars = 3;
  const auto a = solveDpll(cnf);
  EXPECT_TRUE(a.has_value());
}

TEST(DpllTest, UnitPropagationChain) {
  // x0, x0→x1, x1→x2 forces all true.
  Cnf cnf;
  cnf.numVars = 3;
  cnf.addClause({{0, true}});
  cnf.addClause({{0, false}, {1, true}});
  cnf.addClause({{1, false}, {2, true}});
  DpllStats stats;
  const auto a = solveDpll(cnf, &stats);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE((*a)[0] && (*a)[1] && (*a)[2]);
  EXPECT_EQ(stats.decisions, 0);  // fully determined by propagation
  EXPECT_GE(stats.propagations, 3);
}

TEST(DpllTest, PigeonholeTwoIntoOneUnsat) {
  // Two pigeons, one hole: p0h0, p1h0, !(p0h0 & p1h0). Vars: 0,1.
  Cnf cnf;
  cnf.numVars = 2;
  cnf.addClause({{0, true}});
  cnf.addClause({{1, true}});
  cnf.addClause({{0, false}, {1, false}});
  EXPECT_FALSE(solveDpll(cnf).has_value());
}

TEST(DpllTest, MatchesBruteForceOnRandomFormulas) {
  Rng rng(2024);
  for (int trial = 0; trial < 120; ++trial) {
    const int vars = 3 + static_cast<int>(rng.index(8));  // 3..10
    const int clauses = 1 + static_cast<int>(rng.index(4 * vars));
    const Cnf cnf = randomKCnf(vars, clauses, std::min(3, vars), rng);
    const auto a = solveDpll(cnf);
    EXPECT_EQ(a.has_value(), bruteSat(cnf)) << "trial " << trial;
    if (a) { EXPECT_TRUE(satisfies(cnf, *a)); }
  }
}

TEST(DpllBudgetTest, NullBudgetIsExactlySolveDpll) {
  Rng rng(771);
  for (int trial = 0; trial < 40; ++trial) {
    const Cnf cnf = randomKCnf(4 + static_cast<int>(rng.index(4)),
                               1 + static_cast<int>(rng.index(16)), 3, rng);
    const DpllResult r = solveDpllBudgeted(cnf, nullptr);
    EXPECT_NE(r.outcome, SatOutcome::Unknown);
    EXPECT_EQ(r.outcome == SatOutcome::Satisfiable,
              solveDpll(cnf).has_value())
        << "trial " << trial;
    if (r.outcome == SatOutcome::Satisfiable) {
      ASSERT_TRUE(r.assignment.has_value());
      EXPECT_TRUE(satisfies(cnf, *r.assignment));
    }
  }
}

TEST(DpllBudgetTest, DecisionBudgetYieldsUnknownNeverUnsat) {
  // UNSAT never fits a one-decision budget unless propagation alone refutes:
  // a budget stop must come back Unknown, not a fake Unsatisfiable.
  Rng rng(772);
  int unknowns = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Cnf cnf = randomKCnf(8, 34, 3, rng);  // ratio > 4: mostly UNSAT
    const bool truth = solveDpll(cnf).has_value();
    control::BudgetLimits limits;
    limits.maxCombinations = 1;  // one DPLL decision
    control::Budget budget(limits);
    const DpllResult r = solveDpllBudgeted(cnf, &budget);
    switch (r.outcome) {
      case SatOutcome::Satisfiable:
        EXPECT_TRUE(truth) << "trial " << trial;
        ASSERT_TRUE(r.assignment.has_value());
        EXPECT_TRUE(satisfies(cnf, *r.assignment));
        break;
      case SatOutcome::Unsatisfiable:
        EXPECT_FALSE(truth) << "trial " << trial;
        break;
      case SatOutcome::Unknown:
        ++unknowns;
        EXPECT_EQ(budget.reason(), control::StopReason::CombinationLimit);
        EXPECT_FALSE(r.assignment.has_value());
        break;
    }
  }
  EXPECT_GT(unknowns, 0);
}

}  // namespace
}  // namespace gpd::sat
