#include "sat/subset_sum.h"

#include <gtest/gtest.h>
#include <set>

#include "util/check.h"
#include "util/rng.h"

namespace gpd::sat {
namespace {

bool bruteSubsetSum(const std::vector<std::int64_t>& sizes,
                    std::int64_t target) {
  const int n = static_cast<int>(sizes.size());
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::int64_t sum = 0;
    for (int i = 0; i < n; ++i) {
      if (mask >> i & 1) sum += sizes[i];
    }
    if (sum == target) return true;
  }
  return false;
}

TEST(SubsetSumTest, EmptySetOnlyReachesZero) {
  EXPECT_TRUE(solveSubsetSum({}, 0).has_value());
  EXPECT_FALSE(solveSubsetSum({}, 1).has_value());
}

TEST(SubsetSumTest, NegativeTargetImpossible) {
  EXPECT_FALSE(solveSubsetSum({1, 2}, -3).has_value());
}

TEST(SubsetSumTest, SimpleHit) {
  const auto w = solveSubsetSum({3, 5, 7}, 12);
  ASSERT_TRUE(w.has_value());
  std::int64_t sum = 0;
  const std::vector<std::int64_t> sizes{3, 5, 7};
  for (int i : *w) sum += sizes[i];
  EXPECT_EQ(sum, 12);
}

TEST(SubsetSumTest, WitnessIndicesAreDistinct) {
  const auto w = solveSubsetSum({2, 2, 2, 2}, 6);
  ASSERT_TRUE(w.has_value());
  const std::set<int> uniq(w->begin(), w->end());
  EXPECT_EQ(uniq.size(), w->size());
  EXPECT_EQ(w->size(), 3u);
}

TEST(SubsetSumTest, UnreachableGap) {
  EXPECT_FALSE(solveSubsetSum({10, 20, 30}, 15).has_value());
}

TEST(SubsetSumTest, RejectsNonPositiveSizes) {
  EXPECT_THROW(solveSubsetSum({0, 1}, 1), CheckFailure);
  EXPECT_THROW(solveSubsetSum({-2, 1}, 1), CheckFailure);
}

TEST(SubsetSumTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(808);
  for (int trial = 0; trial < 80; ++trial) {
    const int n = 1 + static_cast<int>(rng.index(12));
    std::vector<std::int64_t> sizes(n);
    for (auto& s : sizes) s = rng.uniform(1, 25);
    const std::int64_t target = rng.uniform(0, 60);
    const auto w = solveSubsetSum(sizes, target);
    EXPECT_EQ(w.has_value(), bruteSubsetSum(sizes, target))
        << "trial " << trial;
    if (w) {
      std::int64_t sum = 0;
      std::set<int> uniq;
      for (int i : *w) {
        sum += sizes[i];
        EXPECT_TRUE(uniq.insert(i).second);
      }
      EXPECT_EQ(sum, target);
    }
  }
}

}  // namespace
}  // namespace gpd::sat
