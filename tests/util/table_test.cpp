#include "util/table.h"

#include <gtest/gtest.h>
#include <sstream>

#include "util/check.h"

namespace gpd {
namespace {

TEST(TableTest, PrintsHeaderAndRows) {
  Table t({"name", "value"});
  t.row("alpha", 1);
  t.row("b", 2.5);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvHasCommas) {
  Table t({"a", "b", "c"});
  t.row(1, 2, 3);
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\n");
}

TEST(TableTest, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), CheckFailure);
}

TEST(TableTest, AlignmentPadsColumns) {
  Table t({"x", "yyyy"});
  t.row("longvalue", "1");
  std::ostringstream os;
  t.print(os);
  // Header row must be padded to the width of "longvalue".
  const std::string firstLine = os.str().substr(0, os.str().find('\n'));
  EXPECT_GE(firstLine.size(), std::string("longvalue  yyyy").size());
}

}  // namespace
}  // namespace gpd
