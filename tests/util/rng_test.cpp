#include "util/rng.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <numeric>

namespace gpd {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(3, 3), 3);
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) ++seen[rng.uniform(0, 5)];
  for (int count : seen) EXPECT_GT(count, 700);  // roughly 1000 each
}

TEST(RngTest, RealInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double r = rng.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // astronomically unlikely to be identity
}

TEST(RngTest, IndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), CheckFailure);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  // The fork must not replay the parent stream.
  Rng b(42);
  b.next();  // advance past the fork draw
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child.next() == b.next();
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace gpd
