#include "io/checkpoint_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "monitor/session.h"
#include "util/check.h"

namespace gpd::io {
namespace {

using monitor::MonitorSession;
using monitor::SessionSnapshot;

// Builds a session with every kind of state populated: a delivered stream,
// an open gap with a parked notification, an announced end, a detection-free
// monitor queue, and non-trivial stats.
SessionSnapshot busySnapshot() {
  monitor::SessionOptions opt;
  opt.retryTimeout = 8;
  opt.maxRetries = 2;
  opt.reorderWindow = 1;
  MonitorSession s(3, opt);
  s.deliver(0, 0, {1, 0, 0});
  s.deliver(0, 0, {1, 0, 0});  // duplicate, for the stats
  s.deliver(1, 2, {0, 5, 0});  // early: buffered, gap open
  s.deliver(1, 4, {0, 9, 0});  // farthest-future: evicted from the window
  s.deliver(2, 0, {2, 0, 1});  // eliminates p0's head
  s.announceEnd(2, 1);
  return s.snapshot();
}

TEST(CheckpointIoTest, RoundTripPreservesEveryField) {
  const SessionSnapshot a = busySnapshot();
  std::stringstream buffer;
  writeCheckpoint(buffer, a);
  const SessionSnapshot b = readCheckpoint(buffer);

  EXPECT_EQ(b.monitor.processes, a.monitor.processes);
  EXPECT_EQ(b.monitor.queues, a.monitor.queues);
  EXPECT_EQ(b.monitor.lastOwn, a.monitor.lastOwn);
  EXPECT_EQ(b.monitor.detected, a.monitor.detected);
  EXPECT_EQ(b.monitor.degraded, a.monitor.degraded);
  EXPECT_EQ(b.monitor.witness, a.monitor.witness);
  EXPECT_EQ(b.monitor.comparisons, a.monitor.comparisons);
  EXPECT_EQ(b.monitor.enqueued, a.monitor.enqueued);
  EXPECT_EQ(b.monitor.overflowDropped, a.monitor.overflowDropped);
  EXPECT_EQ(b.monitor.overflowRejected, a.monitor.overflowRejected);
  EXPECT_EQ(b.now, a.now);
  EXPECT_EQ(b.nextSeq, a.nextSeq);
  EXPECT_EQ(b.buffers, a.buffers);
  EXPECT_EQ(b.health, a.health);
  EXPECT_EQ(b.gapActive, a.gapActive);
  EXPECT_EQ(b.gapDeadline, a.gapDeadline);
  EXPECT_EQ(b.gapRetriesLeft, a.gapRetriesLeft);
  EXPECT_EQ(b.endAnnounced, a.endAnnounced);
  EXPECT_EQ(b.announcedCount, a.announcedCount);
  EXPECT_EQ(b.evictedUpper, a.evictedUpper);
  EXPECT_NE(a.evictedUpper, std::vector<std::uint64_t>(3, 0));
  EXPECT_EQ(b.stats.delivered, a.stats.delivered);
  EXPECT_EQ(b.stats.bufferEvicted, a.stats.bufferEvicted);
  EXPECT_EQ(b.stats.duplicates, a.stats.duplicates);
  EXPECT_EQ(b.stats.buffered, a.stats.buffered);
  EXPECT_EQ(b.stats.nacksSent, a.stats.nacksSent);
  EXPECT_EQ(b.stats.gapsDetected, a.stats.gapsDetected);
  EXPECT_EQ(b.stats.gapsRecovered, a.stats.gapsRecovered);
  EXPECT_EQ(b.stats.degradedStreams, a.stats.degradedStreams);
}

TEST(CheckpointIoTest, RoundTripOfDetectedSessionKeepsWitness) {
  MonitorSession s(2);
  s.deliver(0, 0, {1, 0});
  s.deliver(1, 0, {0, 1});
  ASSERT_TRUE(s.detected());

  std::stringstream buffer;
  writeCheckpoint(buffer, s.snapshot());
  MonitorSession restored = MonitorSession::restore(readCheckpoint(buffer));
  EXPECT_TRUE(restored.detected());
  EXPECT_EQ(restored.verdict(), monitor::Verdict::Detected);
  EXPECT_EQ(restored.monitor().witness(), s.monitor().witness());
}

TEST(CheckpointIoTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "gpd_checkpoint_io_test.ckpt";
  const SessionSnapshot a = busySnapshot();
  saveCheckpoint(path, a);
  const SessionSnapshot b = loadCheckpoint(path);
  EXPECT_EQ(b.nextSeq, a.nextSeq);
  EXPECT_EQ(b.monitor.queues, a.monitor.queues);
}

TEST(CheckpointIoTest, MissingFileIsInputError) {
  EXPECT_THROW(loadCheckpoint("/nonexistent/gpd.ckpt"), InputError);
}

std::string serialized() {
  std::stringstream buffer;
  writeCheckpoint(buffer, busySnapshot());
  return buffer.str();
}

TEST(CheckpointIoTest, RejectsBadMagic) {
  std::istringstream is("gpd-trace 1\n");
  EXPECT_THROW(readCheckpoint(is), InputError);
}

TEST(CheckpointIoTest, RejectsWrongVersion) {
  std::istringstream is("gpd-checkpoint 99\n");
  EXPECT_THROW(readCheckpoint(is), InputError);
}

TEST(CheckpointIoTest, RejectsEveryTruncationPoint) {
  const std::string text = serialized();
  // Cutting the stream anywhere before the final 'end' must raise InputError,
  // never crash or return a half-read snapshot.
  for (std::size_t cut = 0; cut + 4 < text.size(); cut += 7) {
    std::istringstream is(text.substr(0, cut));
    EXPECT_THROW(readCheckpoint(is), InputError) << "cut at " << cut;
  }
}

TEST(CheckpointIoTest, RejectsOutOfRangeHealth) {
  std::string text = serialized();
  const auto pos = text.find("health");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("health 0").size(), "health 9");
  std::istringstream is(text);
  EXPECT_THROW(readCheckpoint(is), InputError);
}

TEST(CheckpointIoTest, RejectsNonNumericCounter) {
  std::string text = serialized();
  const auto pos = text.find("now ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "now x");
  std::istringstream is(text);
  EXPECT_THROW(readCheckpoint(is), InputError);
}

TEST(CheckpointIoTest, RejectsHostileProcessCount) {
  std::istringstream is("gpd-checkpoint 1\nprocesses 99999999999\n");
  EXPECT_THROW(readCheckpoint(is), InputError);
}

TEST(CheckpointIoTest, SliceTrailerRoundTrips) {
  SessionSnapshot a = busySnapshot();
  a.monitor.sliceAborts = 3;
  a.monitor.pendingFullScan = true;
  std::stringstream buffer;
  writeCheckpoint(buffer, a);
  EXPECT_NE(buffer.str().find("slices 3 1"), std::string::npos);
  const SessionSnapshot b = readCheckpoint(buffer);
  EXPECT_EQ(b.monitor.sliceAborts, 3u);
  EXPECT_TRUE(b.monitor.pendingFullScan);
}

TEST(CheckpointIoTest, SliceFreeCheckpointOmitsTrailerAndStillLoads) {
  // Slice-free snapshots serialize byte-identically to the pre-slice format
  // (no "slices" line), and such files — including ones written before the
  // trailer existed — load with the slice state defaulted.
  const std::string text = serialized();
  EXPECT_EQ(text.find("slices"), std::string::npos);
  std::istringstream is(text);
  const SessionSnapshot b = readCheckpoint(is);
  EXPECT_EQ(b.monitor.sliceAborts, 0u);
  EXPECT_FALSE(b.monitor.pendingFullScan);
}

TEST(CheckpointIoTest, RejectsMalformedSliceTrailer) {
  SessionSnapshot a = busySnapshot();
  a.monitor.sliceAborts = 1;
  std::stringstream buffer;
  writeCheckpoint(buffer, a);
  std::string text = buffer.str();
  const auto pos = text.find("slices 1 0");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("slices 1 0").size(), "slices 1 7");
  std::istringstream is(text);
  EXPECT_THROW(readCheckpoint(is), InputError);
}

TEST(CheckpointIoTest, SemanticCorruptionIsCaughtByRestore) {
  // Structurally valid checkpoint whose monitor queue violates program
  // order: readCheckpoint accepts it, MonitorSession::restore rejects it.
  std::string text = serialized();
  const std::string original = "queue 2 1\nclock 2 0 1";
  const auto pos = text.find(original);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, original.size(),
               "queue 2 2\nclock 2 0 5\nclock 2 0 1");
  std::istringstream is(text);
  const SessionSnapshot snap = readCheckpoint(is);
  EXPECT_THROW(MonitorSession::restore(snap), InputError);
}

}  // namespace
}  // namespace gpd::io
