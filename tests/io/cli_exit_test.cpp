// End-to-end exit-code taxonomy of the gpdtool CLI, exercised by spawning
// the real binary (path injected by CMake as GPDTOOL_PATH):
//
//   0 — ran fine; for detect, the predicate was decided either way
//   1 — bad input (usage, malformed arguments, unreadable trace)
//   2 — internal failure (a library invariant broke: gpd::CheckFailure)
//   3 — budget exhausted before an answer (detect verdict "unknown")
//
// Scripts branching on these codes (CI gates, bisection drivers) rely on
// "unknown" being distinguishable from both "no" (0) and crashes (2).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include <sys/wait.h>

namespace gpd {
namespace {

std::string tracePath() {
  return ::testing::TempDir() + "gpd_cli_exit_test.trace";
}

// Runs gpdtool with `args`, output silenced, and returns its exit code.
int runTool(const std::string& args) {
  const std::string cmd =
      std::string(GPDTOOL_PATH) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "failed to spawn " << cmd;
  EXPECT_TRUE(WIFEXITED(status)) << "gpdtool killed by signal: " << cmd;
  return WEXITSTATUS(status);
}

class CliExitTest : public ::testing::Test {
 protected:
  // One shared trace for the suite: the `random` workload defines a boolean
  // "b" and a counter "x" on 5 processes (deterministic under the seed).
  static void SetUpTestSuite() {
    ASSERT_EQ(runTool("generate random " + tracePath() + " 7"), 0);
  }
};

TEST_F(CliExitTest, DecidedDetectExitsZero) {
  EXPECT_EQ(runTool("detect " + tracePath() + " conj 0:b"), 0);
  EXPECT_EQ(runTool("detect " + tracePath() + " sum ge 0 x"), 0);
  // A budgeted run that still decides exits 0 as well.
  EXPECT_EQ(
      runTool("detect " + tracePath() + " conj --budget-ms 60000 0:b 1:b"), 0);
}

TEST_F(CliExitTest, BadInputExitsOne) {
  EXPECT_EQ(runTool(""), 1);  // usage
  EXPECT_EQ(runTool("detect /nonexistent/gpd.trace conj 0:b"), 1);
  EXPECT_EQ(runTool("detect " + tracePath() + " conj not-a-literal"), 1);
  EXPECT_EQ(runTool("detect " + tracePath() + " sum ge 0 nosuchvar"), 1);
  // Budget values must be positive integers.
  EXPECT_EQ(runTool("detect " + tracePath() + " conj --max-cuts 0 0:b"), 1);
  EXPECT_EQ(runTool("detect " + tracePath() + " conj --budget-ms x 0:b"), 1);
}

TEST_F(CliExitTest, InternalInvariantFailureExitsTwo) {
  // Two conjunctive terms on the same process violate a CPDHB precondition:
  // a CheckFailure, reported as an internal error, distinct from bad input.
  EXPECT_EQ(runTool("detect " + tracePath() + " conj 0:b 0:b"), 2);
}

TEST_F(CliExitTest, BudgetExhaustedUnknownExitsThree) {
  // (0:b) ∧ (0:¬b) is non-singular (process 0 twice), so the planner routes
  // to lattice enumeration; it is also unsatisfiable at every cut, so under
  // --max-cuts 1 the search trips before it can prove "no" → unknown.
  EXPECT_EQ(
      runTool("detect " + tracePath() + " cnf --max-cuts 1 0:b 0:!b"), 3);
  // The same query with room to finish proves the exact "no" and exits 0.
  EXPECT_EQ(
      runTool("detect " + tracePath() + " cnf --max-cuts 2000000 0:b 0:!b"),
      0);
}

}  // namespace
}  // namespace gpd
