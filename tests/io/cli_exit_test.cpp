// End-to-end exit-code taxonomy of the gpdtool CLI and the gpdd server,
// exercised by spawning the real binaries (paths injected by CMake as
// GPDTOOL_PATH / GPDD_PATH):
//
//   0 — ran fine; for detect, the predicate was decided either way
//   1 — bad input (usage, malformed arguments, unreadable trace; for gpdd:
//       bad flags, unbindable socket, corrupt recovery manifest,
//       strict-mode protocol violation)
//   2 — internal failure (a library invariant broke: gpd::CheckFailure)
//   3 — budget exhausted before an answer (detect verdict "unknown")
//
// Scripts branching on these codes (CI gates, bisection drivers, the soak
// harness's restart logic) rely on "unknown" being distinguishable from
// both "no" (0) and crashes (2), and on gpdd treating operator error (1)
// differently from engine bugs (2).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include <sys/wait.h>

#include "service/frame.h"

namespace gpd {
namespace {

std::string tracePath() {
  return ::testing::TempDir() + "gpd_cli_exit_test.trace";
}

// Runs gpdtool with `args`, output silenced, and returns its exit code.
int runTool(const std::string& args) {
  const std::string cmd =
      std::string(GPDTOOL_PATH) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "failed to spawn " << cmd;
  EXPECT_TRUE(WIFEXITED(status)) << "gpdtool killed by signal: " << cmd;
  return WEXITSTATUS(status);
}

class CliExitTest : public ::testing::Test {
 protected:
  // One shared trace for the suite: the `random` workload defines a boolean
  // "b" and a counter "x" on 5 processes (deterministic under the seed).
  static void SetUpTestSuite() {
    ASSERT_EQ(runTool("generate random " + tracePath() + " 7"), 0);
  }
};

TEST_F(CliExitTest, DecidedDetectExitsZero) {
  EXPECT_EQ(runTool("detect " + tracePath() + " conj 0:b"), 0);
  EXPECT_EQ(runTool("detect " + tracePath() + " sum ge 0 x"), 0);
  // A budgeted run that still decides exits 0 as well.
  EXPECT_EQ(
      runTool("detect " + tracePath() + " conj --budget-ms 60000 0:b 1:b"), 0);
}

TEST_F(CliExitTest, BadInputExitsOne) {
  EXPECT_EQ(runTool(""), 1);  // usage
  EXPECT_EQ(runTool("detect /nonexistent/gpd.trace conj 0:b"), 1);
  EXPECT_EQ(runTool("detect " + tracePath() + " conj not-a-literal"), 1);
  EXPECT_EQ(runTool("detect " + tracePath() + " sum ge 0 nosuchvar"), 1);
  // Budget values must be positive integers.
  EXPECT_EQ(runTool("detect " + tracePath() + " conj --max-cuts 0 0:b"), 1);
  EXPECT_EQ(runTool("detect " + tracePath() + " conj --budget-ms x 0:b"), 1);
}

TEST_F(CliExitTest, InternalInvariantFailureExitsTwo) {
  // Two conjunctive terms on the same process violate a CPDHB precondition:
  // a CheckFailure, reported as an internal error, distinct from bad input.
  EXPECT_EQ(runTool("detect " + tracePath() + " conj 0:b 0:b"), 2);
}

TEST_F(CliExitTest, BudgetExhaustedUnknownExitsThree) {
  // (0:b) ∧ (0:¬b) is non-singular (process 0 twice), so the planner routes
  // to lattice enumeration; it is also unsatisfiable at every cut, so under
  // --max-cuts 1 the search trips before it can prove "no" → unknown.
  EXPECT_EQ(
      runTool("detect " + tracePath() + " cnf --max-cuts 1 0:b 0:!b"), 3);
  // The same query with room to finish proves the exact "no" and exits 0.
  EXPECT_EQ(
      runTool("detect " + tracePath() + " cnf --max-cuts 2000000 0:b 0:!b"),
      0);
}

// ---- gpdd server mode ----

// Runs gpdd with `args`, stdin redirected from `stdinPath` (or /dev/null),
// and returns its exit code. Every spawn here terminates on its own: either
// the flags are rejected up front or stdin reaches EOF and the server
// drains.
int runServer(const std::string& args, const std::string& stdinPath = "") {
  const std::string in = stdinPath.empty() ? "/dev/null" : stdinPath;
  const std::string cmd = std::string(GPDD_PATH) + " " + args + " < " + in +
                          " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "failed to spawn " << cmd;
  EXPECT_TRUE(WIFEXITED(status)) << "gpdd killed by signal: " << cmd;
  return WEXITSTATUS(status);
}

std::string writeTempFile(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.close();
  return path;
}

TEST(GpddExitTest, CleanFramedSessionExitsZero) {
  std::string wire;
  wire += service::encodeFrame("OPEN t s 2");
  wire += service::encodeFrame("EV t s 0 0 1 0");
  wire += service::encodeFrame("EV t s 1 0 0 1");
  wire += service::encodeFrame("CLOSE t s");
  wire += service::encodeFrame("SHUTDOWN");
  const std::string in = writeTempFile("gpdd_exit_clean.bin", wire);
  EXPECT_EQ(runServer("", in), 0);
  // EOF without SHUTDOWN drains too.
  EXPECT_EQ(runServer(""), 0);
}

TEST(GpddExitTest, BadFlagsExitOne) {
  EXPECT_EQ(runServer("--frobnicate"), 1);
  EXPECT_EQ(runServer("--threads"), 1);            // missing value
  EXPECT_EQ(runServer("--shards zero"), 1);        // not an integer
  EXPECT_EQ(runServer("--recover"), 1);            // needs --checkpoint
  EXPECT_EQ(runServer("--checkpoint-every 5"), 1); // needs --checkpoint
}

TEST(GpddExitTest, UnbindableSocketExitsOne) {
  EXPECT_EQ(runServer("--socket /nonexistent-dir/sub/gpdd.sock"), 1);
}

TEST(GpddExitTest, CorruptRecoveryManifestExitsOne) {
  const std::string bad =
      writeTempFile("gpdd_exit_bad.manifest", "not a manifest at all\n");
  EXPECT_EQ(runServer("--checkpoint " + bad + " --recover"), 1);
  EXPECT_EQ(runServer("--checkpoint /nonexistent/gpdd.manifest --recover"),
            1);
}

TEST(GpddExitTest, StrictProtoViolationExitsOne) {
  const std::string garbage =
      writeTempFile("gpdd_exit_garbage.bin", "line noise, not a frame\n");
  EXPECT_EQ(runServer("--strict-proto", garbage), 1);
  // The same bytes without --strict-proto are resynced over: exit 0.
  EXPECT_EQ(runServer("", garbage), 0);
}

// In-protocol errors (bad commands inside intact frames) are answered with
// ERR frames, not exit codes: the server must still exit 0.
TEST(GpddExitTest, ProtocolErrorsAreNotFatal) {
  std::string wire;
  wire += service::encodeFrame("FROB x y");
  wire += service::encodeFrame("EV ghost s 0 0 1 1");
  wire += service::encodeFrame("SHUTDOWN");
  const std::string in = writeTempFile("gpdd_exit_err.bin", wire);
  EXPECT_EQ(runServer("", in), 0);
}

}  // namespace
}  // namespace gpd
