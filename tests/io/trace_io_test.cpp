#include "io/trace_io.h"

#include <gtest/gtest.h>
#include <sstream>

#include "computation/random.h"
#include "predicates/random_trace.h"
#include "sim/workloads.h"
#include "util/check.h"

namespace gpd::io {
namespace {

TEST(TraceIoTest, RoundTripsStructureAndValues) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(4));
    opt.eventsPerProcess = static_cast<int>(rng.index(8));
    opt.messageProbability = 0.5;
    const Computation comp = randomComputation(opt, rng);
    VariableTrace trace(comp);
    defineRandomCounters(trace, "x", -2, 3, rng);
    defineRandomBools(trace, "flag", 0.4, rng);

    std::stringstream buffer;
    writeTrace(buffer, comp, trace);
    const TraceFile loaded = readTrace(buffer);

    ASSERT_EQ(loaded.computation->processCount(), comp.processCount());
    for (ProcessId p = 0; p < comp.processCount(); ++p) {
      ASSERT_EQ(loaded.computation->eventCount(p), comp.eventCount(p));
      EXPECT_EQ(loaded.trace->variableNames(p), trace.variableNames(p));
      for (const auto& name : trace.variableNames(p)) {
        for (int i = 0; i < comp.eventCount(p); ++i) {
          EXPECT_EQ(loaded.trace->value(p, name, i), trace.value(p, name, i));
        }
      }
    }
    EXPECT_EQ(loaded.computation->messages(), comp.messages());
  }
}

TEST(TraceIoTest, RoundTripsWorkloadTrace) {
  sim::TokenRingOptions opt;
  opt.processes = 4;
  opt.rounds = 2;
  const sim::SimResult run = sim::tokenRing(opt);
  std::stringstream buffer;
  writeTrace(buffer, *run.computation, *run.trace);
  const TraceFile loaded = readTrace(buffer);
  EXPECT_EQ(loaded.computation->messages(), run.computation->messages());
  for (ProcessId p = 0; p < 4; ++p) {
    EXPECT_TRUE(loaded.trace->has(p, "cs"));
    EXPECT_TRUE(loaded.trace->has(p, "tokens"));
  }
}

TEST(TraceIoTest, RejectsBadMagic) {
  std::stringstream buffer("not-a-trace 1\n");
  EXPECT_THROW(readTrace(buffer), InputError);
}

TEST(TraceIoTest, RejectsWrongVersion) {
  std::stringstream buffer("gpd-trace 99\nprocesses 1\nevents 1\nend\n");
  EXPECT_THROW(readTrace(buffer), InputError);
}

TEST(TraceIoTest, RejectsTruncatedStream) {
  std::stringstream buffer("gpd-trace 1\nprocesses 2\nevents 2 2\n");
  EXPECT_THROW(readTrace(buffer), InputError);  // missing 'end'
}

TEST(TraceIoTest, RejectsUnknownKeyword) {
  std::stringstream buffer(
      "gpd-trace 1\nprocesses 1\nevents 1\nbogus 1 2 3\nend\n");
  EXPECT_THROW(readTrace(buffer), InputError);
}

TEST(TraceIoTest, RejectsCyclicMessages) {
  std::stringstream buffer(
      "gpd-trace 1\nprocesses 2\nevents 3 3\n"
      "message 0 2 1 1\nmessage 1 2 0 1\nend\n");
  EXPECT_THROW(readTrace(buffer), InputError);
}

TEST(TraceIoTest, RejectsVarOnUnknownProcess) {
  std::stringstream buffer(
      "gpd-trace 1\nprocesses 1\nevents 2\nvar 4 x 0 0\nend\n");
  EXPECT_THROW(readTrace(buffer), InputError);
}

TEST(TraceIoTest, RejectsUnserializableVarName) {
  ComputationBuilder b(1);
  const Computation comp = std::move(b).build();
  VariableTrace trace(comp);
  trace.define(0, "has space", {0});
  std::stringstream buffer;
  EXPECT_THROW(writeTrace(buffer, comp, trace), CheckFailure);
}

TEST(TraceIoTest, FileRoundTrip) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  const Computation comp = std::move(b).build();
  VariableTrace trace(comp);
  trace.define(0, "x", {1, 2});
  trace.define(1, "y", {-7});
  const std::string path = "/tmp/gpd_trace_io_test.trace";
  saveTrace(path, comp, trace);
  const TraceFile loaded = loadTrace(path);
  EXPECT_EQ(loaded.trace->value(0, "x", 1), 2);
  EXPECT_EQ(loaded.trace->value(1, "y", 0), -7);
  EXPECT_THROW(loadTrace("/tmp/definitely_missing_gpd_trace"), InputError);
}

}  // namespace
}  // namespace gpd::io
