#include "graph/linear_extension.h"

#include <gtest/gtest.h>
#include <set>

#include "util/rng.h"

namespace gpd::graph {
namespace {

bool isLinearExtension(const Dag& g, const std::vector<int>& order) {
  if (static_cast<int>(order.size()) != g.size()) return false;
  std::vector<int> pos(g.size(), -1);
  for (int i = 0; i < g.size(); ++i) pos[order[i]] = i;
  for (int p : pos) {
    if (p < 0) return false;
  }
  for (int u = 0; u < g.size(); ++u) {
    for (int v : g.successors(u)) {
      if (pos[u] >= pos[v]) return false;
    }
  }
  return true;
}

TEST(LinearExtensionTest, RandomExtensionIsValid) {
  Rng rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    Dag g(10);
    for (int u = 0; u < 10; ++u) {
      for (int v = u + 1; v < 10; ++v) {
        if (rng.chance(0.25)) g.addEdge(u, v);
      }
    }
    EXPECT_TRUE(isLinearExtension(g, randomLinearExtension(g, rng)));
  }
}

TEST(LinearExtensionTest, ChainHasExactlyOne) {
  Dag g(5);
  for (int i = 0; i + 1 < 5; ++i) g.addEdge(i, i + 1);
  EXPECT_EQ(countLinearExtensions(g), 1u);
}

TEST(LinearExtensionTest, AntichainHasFactorial) {
  Dag g(5);
  EXPECT_EQ(countLinearExtensions(g), 120u);
}

TEST(LinearExtensionTest, TwoChainsBinomial) {
  // Two independent chains of lengths 3 and 2: C(5,2) = 10 extensions.
  Dag g(5);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(3, 4);
  EXPECT_EQ(countLinearExtensions(g), 10u);
}

TEST(LinearExtensionTest, EnumerationVisitsDistinctValidOrders) {
  Dag g(5);
  g.addEdge(0, 2);
  g.addEdge(1, 2);
  g.addEdge(2, 4);
  std::set<std::vector<int>> seen;
  const auto total = forEachLinearExtension(g, [&](const std::vector<int>& o) {
    EXPECT_TRUE(isLinearExtension(g, o));
    EXPECT_TRUE(seen.insert(o).second) << "duplicate extension";
    return true;
  });
  EXPECT_EQ(total, seen.size());
  EXPECT_GT(total, 0u);
}

TEST(LinearExtensionTest, EarlyAbortStopsEnumeration) {
  Dag g(6);  // 720 extensions if not aborted
  int visited = 0;
  const auto total = forEachLinearExtension(g, [&](const std::vector<int>&) {
    return ++visited < 5;
  });
  EXPECT_EQ(total, 5u);
  EXPECT_EQ(visited, 5);
}

}  // namespace
}  // namespace gpd::graph
