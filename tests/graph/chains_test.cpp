#include "graph/chains.h"

#include <gtest/gtest.h>

#include "graph/dag.h"
#include "util/rng.h"

namespace gpd::graph {
namespace {

// Maximum antichain size by exhaustive subset search (small posets).
int bruteMaxAntichain(int n, const std::function<bool(int, int)>& precedes) {
  int best = 0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool antichain = true;
    for (int a = 0; a < n && antichain; ++a) {
      if (!(mask >> a & 1)) continue;
      for (int b = 0; b < n && antichain; ++b) {
        if (a != b && (mask >> b & 1) && (precedes(a, b) || precedes(b, a))) {
          antichain = false;
        }
      }
    }
    if (antichain) best = std::max(best, __builtin_popcount(mask));
  }
  return best;
}

std::function<bool(int, int)> oracle(const Reachability& r) {
  return [&r](int a, int b) { return r.reaches(a, b); };
}

TEST(ChainCoverTest, EmptyPoset) {
  EXPECT_TRUE(minimumChainCover(0, [](int, int) { return false; }).empty());
}

TEST(ChainCoverTest, TotalOrderIsOneChain) {
  const auto chains =
      minimumChainCover(5, [](int a, int b) { return a < b; });
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0], (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChainCoverTest, AntichainNeedsOneChainEach) {
  const auto chains =
      minimumChainCover(4, [](int, int) { return false; });
  EXPECT_EQ(chains.size(), 4u);
}

TEST(ChainCoverTest, CoverIsPartitionAndChainsValid) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.index(9));
    Dag g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.chance(0.3)) g.addEdge(u, v);
      }
    }
    const Reachability reach(g);
    const auto pre = oracle(reach);
    const auto chains = minimumChainCover(n, pre);
    std::vector<int> covered(n, 0);
    for (const auto& chain : chains) {
      for (std::size_t i = 0; i < chain.size(); ++i) {
        ++covered[chain[i]];
        if (i + 1 < chain.size()) {
          EXPECT_TRUE(pre(chain[i], chain[i + 1]))
              << "chain elements out of order, trial " << trial;
        }
      }
    }
    for (int c : covered) EXPECT_EQ(c, 1);
  }
}

TEST(ChainCoverTest, SizeEqualsMaxAntichainDilworth) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng.index(8));
    Dag g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.chance(0.35)) g.addEdge(u, v);
      }
    }
    const Reachability reach(g);
    const auto pre = oracle(reach);
    const auto chains = minimumChainCover(n, pre);
    EXPECT_EQ(static_cast<int>(chains.size()), bruteMaxAntichain(n, pre))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace gpd::graph
