#include "graph/dag.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace gpd::graph {
namespace {

// Brute-force reachability by DFS, for cross-validation.
bool dfsReaches(const Dag& g, int u, int v) {
  std::vector<char> seen(g.size(), 0);
  std::vector<int> stack{u};
  while (!stack.empty()) {
    const int x = stack.back();
    stack.pop_back();
    for (int y : g.successors(x)) {
      if (y == v) return true;
      if (!seen[y]) {
        seen[y] = 1;
        stack.push_back(y);
      }
    }
  }
  return false;
}

Dag randomDag(int n, double density, Rng& rng) {
  Dag g(n);
  // Edges only from lower to higher index: acyclic by construction.
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.chance(density)) g.addEdge(u, v);
    }
  }
  return g;
}

TEST(DagTest, AddNodeGrows) {
  Dag g;
  EXPECT_EQ(g.size(), 0);
  EXPECT_EQ(g.addNode(), 0);
  EXPECT_EQ(g.addNode(), 1);
  EXPECT_EQ(g.size(), 2);
}

TEST(DagTest, RejectsSelfLoop) {
  Dag g(2);
  EXPECT_THROW(g.addEdge(0, 0), CheckFailure);
}

TEST(DagTest, RejectsOutOfRange) {
  Dag g(2);
  EXPECT_THROW(g.addEdge(0, 5), CheckFailure);
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const Dag g = randomDag(12, 0.3, rng);
    const auto order = g.topologicalOrder();
    ASSERT_TRUE(order.has_value());
    std::vector<int> pos(g.size());
    for (int i = 0; i < g.size(); ++i) pos[(*order)[i]] = i;
    for (int u = 0; u < g.size(); ++u) {
      for (int v : g.successors(u)) EXPECT_LT(pos[u], pos[v]);
    }
  }
}

TEST(DagTest, CycleDetected) {
  Dag g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 0);
  EXPECT_FALSE(g.topologicalOrder().has_value());
  EXPECT_FALSE(g.isAcyclic());
}

TEST(DagTest, ReversedSwapsEdges) {
  Dag g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  const Dag r = g.reversed();
  EXPECT_EQ(r.successors(1), std::vector<int>{0});
  EXPECT_EQ(r.successors(2), std::vector<int>{1});
  EXPECT_TRUE(r.successors(0).empty());
}

TEST(ReachabilityTest, MatchesDfsOnRandomDags) {
  Rng rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    const Dag g = randomDag(20, 0.15, rng);
    const Reachability reach(g);
    for (int u = 0; u < g.size(); ++u) {
      for (int v = 0; v < g.size(); ++v) {
        EXPECT_EQ(reach.reaches(u, v), dfsReaches(g, u, v))
            << "u=" << u << " v=" << v << " trial=" << trial;
      }
    }
  }
}

TEST(ReachabilityTest, StrictOrderIsIrreflexive) {
  Dag g(4);
  g.addEdge(0, 1);
  const Reachability reach(g);
  for (int u = 0; u < 4; ++u) EXPECT_FALSE(reach.reaches(u, u));
}

TEST(ReachabilityTest, ConcurrentMeansIncomparable) {
  Dag g(4);
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  const Reachability reach(g);
  EXPECT_TRUE(reach.concurrent(1, 2));
  EXPECT_FALSE(reach.concurrent(0, 1));
  EXPECT_FALSE(reach.concurrent(1, 1));
}

TEST(ReachabilityTest, RejectsCyclicGraph) {
  Dag g(2);
  g.addEdge(0, 1);
  g.addEdge(1, 0);
  EXPECT_THROW(Reachability{g}, CheckFailure);
}

TEST(ReachabilityTest, HandlesLargeNodeCounts) {
  // Crosses the 64-bit word boundary of the bitset rows.
  const int n = 200;
  Dag g(n);
  for (int i = 0; i + 1 < n; ++i) g.addEdge(i, i + 1);
  const Reachability reach(g);
  EXPECT_TRUE(reach.reaches(0, n - 1));
  EXPECT_FALSE(reach.reaches(n - 1, 0));
  EXPECT_TRUE(reach.reaches(63, 64));
  EXPECT_TRUE(reach.reaches(127, 128));
}

TEST(TransitiveReductionTest, RemovesImpliedEdges) {
  Dag g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 2);  // implied
  const Dag r = transitiveReduction(g);
  EXPECT_EQ(r.edgeCount(), 2);
  EXPECT_EQ(r.successors(0), std::vector<int>{1});
}

TEST(TransitiveReductionTest, PreservesReachability) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Dag g = randomDag(15, 0.4, rng);
    const Dag r = transitiveReduction(g);
    const Reachability a(g);
    const Reachability b(r);
    for (int u = 0; u < g.size(); ++u) {
      for (int v = 0; v < g.size(); ++v) {
        EXPECT_EQ(a.reaches(u, v), b.reaches(u, v));
      }
    }
    EXPECT_LE(r.edgeCount(), g.edgeCount());
  }
}

TEST(TransitiveReductionTest, DeduplicatesParallelEdges) {
  Dag g(2);
  g.addEdge(0, 1);
  g.addEdge(0, 1);
  const Dag r = transitiveReduction(g);
  EXPECT_EQ(r.edgeCount(), 1);
}

}  // namespace
}  // namespace gpd::graph
