#include "graph/matching.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gpd::graph {
namespace {

// Exhaustive maximum matching for cross-validation (small graphs only).
int bruteMaxMatching(int nLeft, int nRight,
                     const std::vector<std::vector<int>>& adj) {
  std::vector<char> usedRight(nRight, 0);
  std::function<int(int)> go = [&](int l) -> int {
    if (l == nLeft) return 0;
    int best = go(l + 1);  // leave l unmatched
    for (int r : adj[l]) {
      if (!usedRight[r]) {
        usedRight[r] = 1;
        best = std::max(best, 1 + go(l + 1));
        usedRight[r] = 0;
      }
    }
    return best;
  };
  return go(0);
}

TEST(MatchingTest, EmptyGraph) {
  const auto m = maximumBipartiteMatching(0, 0, {});
  EXPECT_EQ(m.size, 0);
}

TEST(MatchingTest, PerfectMatchingOnIdentity) {
  std::vector<std::vector<int>> adj{{0}, {1}, {2}};
  const auto m = maximumBipartiteMatching(3, 3, adj);
  EXPECT_EQ(m.size, 3);
  for (int l = 0; l < 3; ++l) EXPECT_EQ(m.pairLeft[l], l);
}

TEST(MatchingTest, StarGraphMatchesOne) {
  // All left nodes want right node 0.
  std::vector<std::vector<int>> adj{{0}, {0}, {0}};
  const auto m = maximumBipartiteMatching(3, 1, adj);
  EXPECT_EQ(m.size, 1);
}

TEST(MatchingTest, MatchingIsConsistent) {
  Rng rng(5);
  std::vector<std::vector<int>> adj(6);
  for (int l = 0; l < 6; ++l) {
    for (int r = 0; r < 6; ++r) {
      if (rng.chance(0.4)) adj[l].push_back(r);
    }
  }
  const auto m = maximumBipartiteMatching(6, 6, adj);
  for (int l = 0; l < 6; ++l) {
    if (m.pairLeft[l] >= 0) { EXPECT_EQ(m.pairRight[m.pairLeft[l]], l); }
  }
  for (int r = 0; r < 6; ++r) {
    if (m.pairRight[r] >= 0) { EXPECT_EQ(m.pairLeft[m.pairRight[r]], r); }
  }
}

TEST(MatchingTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int nL = 1 + static_cast<int>(rng.index(6));
    const int nR = 1 + static_cast<int>(rng.index(6));
    std::vector<std::vector<int>> adj(nL);
    for (int l = 0; l < nL; ++l) {
      for (int r = 0; r < nR; ++r) {
        if (rng.chance(0.35)) adj[l].push_back(r);
      }
    }
    const auto m = maximumBipartiteMatching(nL, nR, adj);
    EXPECT_EQ(m.size, bruteMaxMatching(nL, nR, adj)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace gpd::graph
