// src/obs/flight_recorder: the mmap-backed crash ring (DESIGN.md §16).
// record()/load()/dumpNow() are real code in both build modes — only the
// GPD_FR_RECORD macro compiles out under GPD_OBS_DISABLED — so these tests
// run identically everywhere.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/check.h"

namespace gpd::obs {
namespace {

std::string ringPath(const char* name) {
  return ::testing::TempDir() + "gpd_fr_" + name + ".ring";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(FlightRecorder, RecordLoadRoundTrip) {
  const std::string path = ringPath("roundtrip");
  FlightRecorder fr;
  EXPECT_FALSE(fr.armed());
  fr.openRing(path, 8);
  EXPECT_TRUE(fr.armed());
  fr.record("pump", "i=%d in=%d", 0, 12);
  fr.record("ckpt", "epoch=%d", 1);
  fr.record("admit", "%s", "SHED t1 s1 busy");
  EXPECT_EQ(fr.recorded(), 3u);

  const FlightRecorder::Dump dump = FlightRecorder::load(path);
  EXPECT_EQ(dump.recorded, 3u);
  EXPECT_EQ(dump.slots, 8u);
  ASSERT_EQ(dump.entries.size(), 3u);
  EXPECT_EQ(dump.entries[0].index, 0u);
  EXPECT_NE(dump.entries[0].text.find("pump i=0 in=12"), std::string::npos)
      << dump.entries[0].text;
  EXPECT_EQ(dump.entries[2].index, 2u);
  EXPECT_NE(dump.entries[2].text.find("admit SHED t1 s1 busy"),
            std::string::npos);
  // Every entry records a timestamp.
  EXPECT_NE(dump.entries[1].text.find(" t="), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, RingWrapsKeepingTheNewestEvents) {
  const std::string path = ringPath("wrap");
  FlightRecorder fr;
  fr.openRing(path, 4);
  for (int i = 0; i < 11; ++i) fr.record("ev", "n=%d", i);
  const FlightRecorder::Dump dump = FlightRecorder::load(path);
  EXPECT_EQ(dump.recorded, 11u);
  ASSERT_EQ(dump.entries.size(), 4u);
  // Oldest surviving event is 11 - 4 = 7; entries come back index-sorted.
  EXPECT_EQ(dump.entries.front().index, 7u);
  EXPECT_EQ(dump.entries.back().index, 10u);
  EXPECT_NE(dump.entries.back().text.find("ev n=10"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, DumpNowWritesAWellFormedPostmortem) {
  const std::string path = ringPath("dump");
  const std::string post = path + ".postmortem";
  FlightRecorder fr;
  fr.openRing(path, 4);
  fr.record("start", "checkpoint=%s", "/tmp/x.ckpt");
  fr.record("drain", "open=%d", 0);
  ASSERT_TRUE(fr.dumpNow(post.c_str(), "sigterm-drain"));
  const std::string text = slurp(post);
  EXPECT_EQ(text.rfind("gpdfr dump reason=sigterm-drain recorded=2", 0), 0u)
      << text;
  EXPECT_NE(text.find("start checkpoint=/tmp/x.ckpt"), std::string::npos);
  EXPECT_NE(text.find("drain open=0"), std::string::npos);
  EXPECT_NE(text.find("gpdfr end\n"), std::string::npos);
  std::remove(post.c_str());
  std::remove(path.c_str());
}

TEST(FlightRecorder, ReopenTruncatesThePreviousRing) {
  const std::string path = ringPath("trunc");
  {
    FlightRecorder fr;
    fr.openRing(path, 4);
    fr.record("old", "gen=%d", 1);
  }
  {
    FlightRecorder fr;
    fr.openRing(path, 4);
    fr.record("new", "gen=%d", 2);
  }
  const FlightRecorder::Dump dump = FlightRecorder::load(path);
  EXPECT_EQ(dump.recorded, 1u);
  ASSERT_EQ(dump.entries.size(), 1u);
  EXPECT_NE(dump.entries[0].text.find("new gen=2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, LoadRejectsMissingAndCorruptFiles) {
  EXPECT_THROW(FlightRecorder::load("/nonexistent/gpd.ring"), InputError);

  const std::string path = ringPath("corrupt");
  {
    std::ofstream out(path);
    out << "not a ring file at all";
  }
  EXPECT_THROW(FlightRecorder::load(path), InputError);

  // Right magic, wrong size.
  {
    std::ofstream out(path);
    out << "gpdfr1 slots=4 slot=192\n";
  }
  EXPECT_THROW(FlightRecorder::load(path), InputError);
  std::remove(path.c_str());
}

TEST(FlightRecorder, UnarmedRecorderIsInert) {
  FlightRecorder fr;
  EXPECT_FALSE(fr.armed());
  fr.record("ev", "n=%d", 1);  // no-op, must not crash
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_TRUE(fr.dumpNow("/nonexistent/should-not-be-written", "x"));
  GPD_FR_RECORD(fr, "ev", "n=%d", 2);  // macro path, also inert
  EXPECT_EQ(fr.recorded(), 0u);
}

}  // namespace
}  // namespace gpd::obs
