// gpd::obs metrics registry: instrument semantics (counter, gauge,
// log2 histogram), stable name → instrument resolution, reset, and both
// renderers. The renderer tests pin the pre-registered metric inventory —
// the contract that `gpdtool --stats` always reports the full set (zeros
// included) rather than only metrics that happened to fire.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "obs_test_util.h"

namespace gpd::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetOverwritesMaxOnlyRaises) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.set(3);  // set is last-writer-wins, even downward
  EXPECT_EQ(g.value(), 3);
  g.max(10);
  EXPECT_EQ(g.value(), 10);
  g.max(5);  // max never lowers the peak
  EXPECT_EQ(g.value(), 10);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucketOf(0), 0);
  EXPECT_EQ(Histogram::bucketOf(1), 1);
  EXPECT_EQ(Histogram::bucketOf(2), 2);
  EXPECT_EQ(Histogram::bucketOf(3), 2);
  EXPECT_EQ(Histogram::bucketOf(4), 3);
  EXPECT_EQ(Histogram::bucketOf(1023), 10);
  EXPECT_EQ(Histogram::bucketOf(1024), 11);
  EXPECT_EQ(Histogram::bucketOf(std::uint64_t{1} << 63), 64);
  EXPECT_EQ(Histogram::bucketOf(UINT64_MAX), 64);
}

TEST(Histogram, ObserveTracksCountSumBuckets) {
  Histogram h;
  h.observe(0);
  h.observe(3);
  h.observe(3);
  h.observe(100);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.bucket(0), 1u);  // value 0
  EXPECT_EQ(h.bucket(2), 2u);  // the two 3s
  EXPECT_EQ(h.bucket(7), 1u);  // 100 ∈ [64, 128)
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Registry, InstrumentReferencesAreStable) {
  Registry& reg = registry();
  Counter& a = reg.counter("cpdhb_invocations");
  Counter& b = reg.counter("cpdhb_invocations");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("frontier_cuts_peak");
  Gauge& g2 = reg.gauge("frontier_cuts_peak");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.histogram("plan_vs_actual");
  Histogram& h2 = reg.histogram("plan_vs_actual");
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, ResetZeroesEveryInstrument) {
  Registry& reg = registry();
  reg.counter("cpdhb_invocations").add(5);
  reg.gauge("frontier_cuts_peak").max(9);
  reg.histogram("plan_vs_actual").observe(17);
  reg.reset();
  EXPECT_EQ(reg.counter("cpdhb_invocations").value(), 0u);
  EXPECT_EQ(reg.gauge("frontier_cuts_peak").value(), 0);
  EXPECT_EQ(reg.histogram("plan_vs_actual").count(), 0u);
}

// The ctor pre-registers the full inventory, so both renderers list every
// metric even before anything fires.
TEST(Renderers, TextListsPreRegisteredInventory) {
  registry().reset();
  std::ostringstream os;
  renderMetricsText(os, registry());
  const std::string text = os.str();
  for (const char* name :
       {"cpdhb_invocations", "cpdhb_comparisons", "cuts_enumerated",
        "lattice_explorations", "dpll_decisions", "dnf_terms_tried",
        "monitor_notifications", "monitor_nacks_sent", "monitor_retransmits",
        "plan_steps_run", "plan_steps_skipped", "plan_predicted_combinations",
        "plan_actual_combinations", "budget_clock_reads",
        "frontier_cuts_peak", "frontier_bytes_peak",
        "enumeration_combinations", "plan_vs_actual"}) {
    EXPECT_NE(text.find(name), std::string::npos) << "missing " << name;
  }
}

TEST(Renderers, JsonIsWellFormedAndGrouped) {
  registry().reset();
  registry().counter("cpdhb_invocations").add(3);
  registry().histogram("plan_vs_actual").observe(12);
  std::ostringstream os;
  renderMetricsJson(os, registry());
  const std::string json = os.str();
  EXPECT_TRUE(obs::testing::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"cpdhb_invocations\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"plan_vs_actual\""), std::string::npos);
  registry().reset();
}

TEST(Macros, RecordIntoTheProcessRegistry) {
  registry().reset();
  GPD_OBS_COUNTER_ADD("cpdhb_invocations", 2);
  GPD_OBS_GAUGE_MAX("frontier_cuts_peak", 11);
  GPD_OBS_HISTOGRAM("plan_vs_actual", 5);
#ifndef GPD_OBS_DISABLED
  EXPECT_EQ(registry().counter("cpdhb_invocations").value(), 2u);
  EXPECT_EQ(registry().gauge("frontier_cuts_peak").value(), 11);
  EXPECT_EQ(registry().histogram("plan_vs_actual").count(), 1u);
#else
  // Kill switch: the macros compile to nothing, instruments stay zero.
  EXPECT_EQ(registry().counter("cpdhb_invocations").value(), 0u);
  EXPECT_EQ(registry().gauge("frontier_cuts_peak").value(), 0);
  EXPECT_EQ(registry().histogram("plan_vs_actual").count(), 0u);
#endif
  registry().reset();
}

}  // namespace
}  // namespace gpd::obs
