// src/obs/log: leveled, rate-limited structured logging (DESIGN.md §16).
//
// The logger's free functions and the Event builder always work — even under
// GPD_OBS_DISABLED only the GPD_LOG_* macros compile out — so every test
// here runs identically in both build modes.  Each test redirects the sink
// to a local ostringstream and restores the defaults on exit so the global
// logger state never leaks between tests.
#include "obs/log.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/check.h"

namespace gpd::obs::log {
namespace {

class ObsLog : public ::testing::Test {
 protected:
  void SetUp() override {
    setSink(&captured_);
    setLevel(Level::kDebug);
    setFormat(Format::kText);
    setRateLimitPerSec(0);  // deterministic: no window bookkeeping
  }

  void TearDown() override {
    setSink(nullptr);
    setLevel(Level::kInfo);
    setFormat(Format::kText);
    setRateLimitPerSec(50);
  }

  std::vector<std::string> lines() const {
    std::vector<std::string> out;
    std::istringstream in(captured_.str());
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }

  std::ostringstream captured_;
};

TEST_F(ObsLog, ParseLevelRoundTripsAndRejectsJunk) {
  EXPECT_EQ(parseLevel("debug"), Level::kDebug);
  EXPECT_EQ(parseLevel("info"), Level::kInfo);
  EXPECT_EQ(parseLevel("warn"), Level::kWarn);
  EXPECT_EQ(parseLevel("error"), Level::kError);
  EXPECT_STREQ(levelName(Level::kWarn), "warn");
  EXPECT_THROW(parseLevel("verbose"), InputError);
  EXPECT_THROW(parseLevel(""), InputError);
}

TEST_F(ObsLog, TextLineCarriesLevelComponentMessageAndFields) {
  Event(Level::kInfo, "pump", "batch done")
      .kv("frames", std::uint64_t{12})
      .kv("tenant", "acme");
  const std::vector<std::string> got = lines();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NE(got[0].find(" info pump: batch done"), std::string::npos)
      << got[0];
  EXPECT_NE(got[0].find("frames=12"), std::string::npos) << got[0];
  EXPECT_NE(got[0].find("tenant=acme"), std::string::npos) << got[0];
}

TEST_F(ObsLog, LevelThresholdFilters) {
  setLevel(Level::kWarn);
  debug("c", "too quiet");
  info("c", "still too quiet");
  warn("c", "loud enough");
  error("c", "definitely");
  const std::vector<std::string> got = lines();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_NE(got[0].find("loud enough"), std::string::npos);
  EXPECT_NE(got[1].find("definitely"), std::string::npos);
}

TEST_F(ObsLog, JsonFormatEscapesAndTypesFields) {
  setFormat(Format::kJson);
  Event(Level::kError, "svc", "broke \"badly\"\n")
      .kv("count", 3)
      .kv("gap_ms", 1.5)
      .kv("what", "a\\b");
  const std::vector<std::string> got = lines();
  ASSERT_EQ(got.size(), 1u);
  const std::string& line = got[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"level\":\"error\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"component\":\"svc\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"msg\":\"broke \\\"badly\\\"\\n\""),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("\"count\":3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"gap_ms\":1.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"what\":\"a\\\\b\""), std::string::npos) << line;
}

TEST_F(ObsLog, RateLimitCapsAWindow) {
  setRateLimitPerSec(3);
  for (int i = 0; i < 10; ++i) info("flood", "event " + std::to_string(i));
  // The 1-second window opened on the first event; all ten land inside it.
  EXPECT_EQ(lines().size(), 3u);
  // A different (level, component) token has its own window.
  warn("flood", "other level");
  EXPECT_EQ(lines().size(), 4u);
}

TEST_F(ObsLog, FreeFunctionsEmitAtTheirLevel) {
  error("a", "e");
  warn("a", "w");
  info("a", "i");
  debug("a", "d");
  const std::vector<std::string> got = lines();
  ASSERT_EQ(got.size(), 4u);
  EXPECT_NE(got[0].find(" error a: e"), std::string::npos);
  EXPECT_NE(got[3].find(" debug a: d"), std::string::npos);
}

TEST_F(ObsLog, MacrosRespectTheKillSwitch) {
  GPD_LOG_INFO("macro", "through the macro").kv("k", 1);
#if defined(GPD_OBS_DISABLED)
  EXPECT_TRUE(lines().empty());
#else
  ASSERT_EQ(lines().size(), 1u);
  EXPECT_NE(lines()[0].find("through the macro"), std::string::npos);
#endif
}

}  // namespace
}  // namespace gpd::obs::log
