// Shared helpers for the obs tests: a minimal recursive-descent JSON
// well-formedness checker so the renderers' output can be validated without
// a JSON library dependency. It checks syntax only (objects, arrays,
// strings with escapes, numbers, literals) — semantic checks are done with
// targeted substring asserts at the call sites.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace gpd::obs::testing {

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    pos_ = 0;
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline bool isValidJson(const std::string& text) {
  return JsonChecker(text).valid();
}

}  // namespace gpd::obs::testing
