// gpd::obs span tracer: arming, RAII nesting, ring-buffer overwrite
// accounting, and the Chrome trace-event export schema. The schema test is
// the golden-file contract for `gpdtool --trace-out`: an instrumented
// detection must export a JSON array loadable by chrome://tracing /
// Perfetto — metadata event first, then "X" complete events whose
// [ts, ts+dur) intervals nest properly per thread.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gpd.h"
#include "obs_test_util.h"

namespace gpd::obs {
namespace {

#ifndef GPD_OBS_DISABLED

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tracer().stop();
    tracer().clear();
  }
  void TearDown() override {
    tracer().stop();
    tracer().clear();
  }
};

TEST_F(TracerTest, DisarmedSpansRecordNothing) {
  {
    GPD_TRACE_SPAN("never.recorded");
    GPD_TRACE_SPAN("also.never");
  }
  EXPECT_TRUE(tracer().snapshot().empty());
  EXPECT_EQ(tracer().recordedSpans(), 0u);
}

TEST_F(TracerTest, NestedSpansRecordDepthAttrsAndContainment) {
  tracer().start();
  {
    Span outer("test.outer");
    outer.attrInt("cuts", 7);
    outer.attrStr("end", "exhausted");
    {
      Span inner("test.inner");
      inner.attrInt("tried", 3);
    }
  }
  tracer().stop();

  const std::vector<SpanRecord> spans = tracer().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // snapshot() sorts by start time: outer opened first.
  const SpanRecord& outer = spans[0];
  const SpanRecord& inner = spans[1];
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_EQ(outer.depth, 0);
  ASSERT_EQ(outer.attrCount, 2);
  EXPECT_STREQ(outer.attrs[0].key, "cuts");
  EXPECT_FALSE(outer.attrs[0].isString);
  EXPECT_EQ(outer.attrs[0].intValue, 7);
  EXPECT_STREQ(outer.attrs[1].key, "end");
  EXPECT_TRUE(outer.attrs[1].isString);
  EXPECT_STREQ(outer.attrs[1].strValue, "exhausted");

  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.tid, outer.tid);
  // The child interval is contained in the parent interval.
  EXPECT_GE(inner.startNs, outer.startNs);
  EXPECT_LE(inner.startNs + inner.durationNs,
            outer.startNs + outer.durationNs);
}

TEST_F(TracerTest, CurrentSpanDepthTracksTheOpenStack) {
  tracer().start();
  EXPECT_EQ(currentSpanDepth(), 0);
  {
    Span a("depth.a");
    EXPECT_EQ(currentSpanDepth(), 1);
    {
      Span b("depth.b");
      EXPECT_EQ(currentSpanDepth(), 2);
    }
    EXPECT_EQ(currentSpanDepth(), 1);
  }
  EXPECT_EQ(currentSpanDepth(), 0);
}

TEST_F(TracerTest, RingOverwriteKeepsNewestAndCountsDropped) {
  tracer().start();
  constexpr std::uint64_t kTotal = 20000;  // > the 16384-entry ring
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    Span s("ring.span");
  }
  tracer().stop();
  EXPECT_EQ(tracer().recordedSpans(), kTotal);
  EXPECT_GT(tracer().droppedSpans(), 0u);
  const std::vector<SpanRecord> spans = tracer().snapshot();
  EXPECT_EQ(spans.size() + tracer().droppedSpans(), kTotal);
}

// The golden schema test: trace a real detection end to end and validate
// the Chrome trace-event JSON it exports.
TEST_F(TracerTest, ChromeExportOfARealDetectionMatchesTheSchema) {
  Rng rng(7);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 4;
  opt.messageProbability = 0.4;
  const Computation comp = randomComputation(opt, rng);
  VariableTrace trace(comp);
  defineRandomBools(trace, "b", 0.5, rng);

  ConjunctivePredicate pred;
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    pred.terms.push_back(varTrue(p, "b"));
  }

  tracer().start();
  detect::Detector detector(trace);
  (void)detector.possibly(pred);
  tracer().stop();

  std::ostringstream os;
  tracer().exportChromeTrace(os);
  const std::string json = os.str();

  ASSERT_TRUE(obs::testing::isValidJson(json)) << json;
  EXPECT_EQ(json.find('['), 0u);
  // Metadata record first, naming the process for the trace viewer.
  EXPECT_NE(json.find(R"("name":"process_name","ph":"M")"),
            std::string::npos);
  // Complete events with the required keys, covering dispatch and kernel.
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":"), std::string::npos);
  EXPECT_NE(json.find("detect.query"), std::string::npos);
  EXPECT_NE(json.find("detect.cpdhb"), std::string::npos);

  // Per-thread interval nesting: a depth-d span lies inside the nearest
  // open shallower span (the exporter's tree-reconstruction contract).
  const std::vector<SpanRecord> spans = tracer().snapshot();
  std::vector<const SpanRecord*> stack;
  std::uint32_t tid = 0;
  for (const SpanRecord& s : spans) {
    if (s.tid != tid) {
      stack.clear();
      tid = s.tid;
    }
    while (!stack.empty() &&
           s.startNs >= stack.back()->startNs + stack.back()->durationNs) {
      stack.pop_back();
    }
    EXPECT_EQ(s.depth, static_cast<int>(stack.size()));
    if (!stack.empty()) {
      EXPECT_LE(s.startNs + s.durationNs,
                stack.back()->startNs + stack.back()->durationNs);
    }
    stack.push_back(&s);
  }
}

TEST_F(TracerTest, EmptyExportIsStillLoadableJson) {
  std::ostringstream os;
  tracer().exportChromeTrace(os);
  EXPECT_TRUE(obs::testing::isValidJson(os.str())) << os.str();
  EXPECT_NE(os.str().find("process_name"), std::string::npos);
}

// Satellite-3 regression: a pool worker's per-thread buffer must survive
// the worker — spans AND the drop count — so an export after the pool wound
// down is still complete.
TEST_F(TracerTest, WorkerSpansAndDropsSurviveThreadExit) {
  tracer().start();
  constexpr std::uint64_t kTotal = 20000;  // > the 16384-entry ring
  std::thread worker([] {
    for (std::uint64_t i = 0; i < kTotal; ++i) {
      Span s("exited.worker");
    }
  });
  worker.join();
  tracer().stop();
  EXPECT_EQ(tracer().recordedSpans(), kTotal);
  EXPECT_GT(tracer().droppedSpans(), 0u);
  const std::vector<SpanRecord> spans = tracer().snapshot();
  EXPECT_EQ(spans.size() + tracer().droppedSpans(), kTotal);
}

// OS thread ids recycle; each short-lived worker incarnation must get its
// own buffer and tracer tid, never splicing into a dead thread's timeline
// (which would break the exporter's per-tid containment invariant).
TEST_F(TracerTest, SequentialShortLivedWorkersGetFreshTids) {
  tracer().start();
  constexpr int kWorkers = 4;
  for (int i = 0; i < kWorkers; ++i) {
    // join() before the next spawn makes OS-level thread-id reuse likely.
    std::thread([] { Span s("recycled.worker"); }).join();
  }
  tracer().stop();
  const std::vector<SpanRecord> spans = tracer().snapshot();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kWorkers));
  std::set<std::uint32_t> tids;
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.depth, 0);  // each incarnation starts a fresh stack
    tids.insert(s.tid);
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kWorkers));
}

// Merged export completeness: spans from pool workers that exited before
// the export appear alongside the caller's, each under its own tid, with
// per-tid interval containment intact.
TEST_F(TracerTest, PoolWorkerSpansAppearInMergedExport) {
  tracer().start();
  constexpr int kWorkers = 3;
  {
    par::Pool pool(kWorkers);
    GPD_TRACE_SPAN("pool.caller");
    pool.run([](int) {
      Span outer("pool.worker");
      Span inner("pool.worker.inner");
    });
  }  // pool destroyed: every worker thread has exited
  tracer().stop();

  const std::vector<SpanRecord> spans = tracer().snapshot();
  int workerSpans = 0;
  for (const SpanRecord& s : spans) {
    if (std::string(s.name) == "pool.worker") ++workerSpans;
  }
  EXPECT_EQ(workerSpans, kWorkers);

  std::ostringstream os;
  tracer().exportChromeTrace(os);
  EXPECT_NE(os.str().find("pool.worker"), std::string::npos);
  EXPECT_NE(os.str().find("pool.caller"), std::string::npos);

  // Per-tid nesting containment across the merged timelines.
  std::vector<const SpanRecord*> stack;
  std::uint32_t tid = 0;
  for (const SpanRecord& s : spans) {
    if (s.tid != tid) {
      stack.clear();
      tid = s.tid;
    }
    while (!stack.empty() &&
           s.startNs >= stack.back()->startNs + stack.back()->durationNs) {
      stack.pop_back();
    }
    EXPECT_EQ(s.depth, static_cast<int>(stack.size()));
    stack.push_back(&s);
  }
}

// Two Tracer instances recording from the same thread must keep separate
// buffers — the thread-local cache is keyed by instance, not process-wide.
TEST_F(TracerTest, TwoTracerInstancesKeepSeparateBuffers) {
  Tracer a;
  Tracer b;
  SpanRecord rec;
  rec.name = "instance.a";
  a.record(rec);
  rec.name = "instance.b";
  b.record(rec);
  b.record(rec);
  EXPECT_EQ(a.recordedSpans(), 1u);
  EXPECT_EQ(b.recordedSpans(), 2u);
  const std::vector<SpanRecord> fromA = a.snapshot();
  ASSERT_EQ(fromA.size(), 1u);
  EXPECT_STREQ(fromA[0].name, "instance.a");
}

// A destroyed tracer leaves a stale thread-local cache behind; a successor
// instance (possibly at the same heap address) must re-resolve its own
// buffer, not write through the dead one's pointer.
TEST_F(TracerTest, NewTracerAfterDestructionGetsAFreshBuffer) {
  auto first = std::make_unique<Tracer>();
  SpanRecord rec;
  rec.name = "first.tracer";
  first->record(rec);  // caches this thread's buffer for `first`
  first.reset();
  Tracer second;
  rec.name = "second.tracer";
  second.record(rec);
  const std::vector<SpanRecord> spans = second.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "second.tracer");
  EXPECT_EQ(second.recordedSpans(), 1u);
}

TEST_F(TracerTest, FlameSummaryAggregatesByName) {
  tracer().start();
  for (int i = 0; i < 3; ++i) {
    Span s("flame.hot");
  }
  {
    Span s("flame.cold");
  }
  tracer().stop();
  std::ostringstream os;
  tracer().renderFlameSummary(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("span"), std::string::npos);  // header
  EXPECT_NE(text.find("flame.hot"), std::string::npos);
  EXPECT_NE(text.find("flame.cold"), std::string::npos);
}

#else  // GPD_OBS_DISABLED

// With the kill switch on, the macros must expand to inert NullSpans: no
// recording machinery runs at all, whatever the tracer's armed state.
TEST(TracerDisabled, MacrosCompileToNullSpans) {
  tracer().start();
  {
    GPD_TRACE_SPAN("never.recorded");
    GPD_TRACE_SPAN_NAMED(span, "also.never");
    span.attrInt("k", 1);
    span.attrStr("s", "v");
  }
  tracer().stop();
  EXPECT_EQ(tracer().recordedSpans(), 0u);
  EXPECT_TRUE(tracer().snapshot().empty());
  EXPECT_EQ(currentSpanDepth(), 0);
}

#endif  // GPD_OBS_DISABLED

}  // namespace
}  // namespace gpd::obs
