// Observability must never change behavior. Two properties, swept over
// seeded random systems:
//
//   1. Span unwind — when a tiny budget (or cancellation) cuts a kernel
//      short, every span the kernel opened is closed by the time the
//      budgeted query returns: the RAII spans unwind with the early
//      returns, so currentSpanDepth() is back to 0 and the recorded
//      intervals still nest properly.
//
//   2. Checkpoint neutrality — a faulty monitor replay produces a
//      byte-identical session checkpoint whether the tracer is armed or
//      disarmed: tracing observes the run, it never perturbs it.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "gpd.h"
#include "../detect/detect_test_util.h"

namespace gpd {
namespace {

struct System {
  Computation comp;
  VariableTrace trace;

  System(Computation c, Rng& rng) : comp(std::move(c)), trace(comp) {
    defineRandomBools(trace, "b", 0.5, rng);
  }
};

System makeSystem(std::uint64_t seed, int processes, int events) {
  Rng rng(seed * 2654435761u + 13);
  RandomComputationOptions opt;
  opt.processes = processes;
  opt.eventsPerProcess = events;
  opt.messageProbability = 0.4;
  Computation comp = randomComputation(opt, rng);
  return System(std::move(comp), rng);
}

class ObsSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    obs::tracer().stop();
    obs::tracer().clear();
  }
  void TearDown() override {
    obs::tracer().stop();
    obs::tracer().clear();
  }
};

// Budgeted queries across predicate kinds with budgets small enough to
// trip inside every kernel: after each query the thread's span stack is
// empty again, proving no early-return path leaks an open span.
TEST_P(ObsSweep, EverySpanClosesWhenTheBudgetUnwindsAKernel) {
  const std::uint64_t seed = GetParam();
  System s = makeSystem(seed, 4, 4);
  Rng rng(seed * 31 + 7);

  ConjunctivePredicate conj;
  for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
    conj.terms.push_back(varTrue(p, "b"));
  }
  const CnfPredicate cnf =
      detect::testing::randomSingularKCnf(2, 2, "b", rng);
  std::vector<SumTerm> symVars;
  for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
    symVars.push_back({p, "b"});
  }
  const SymmetricPredicate sym = exactlyK(symVars, 1);

  obs::tracer().start();
  detect::Detector det(s.trace);
  for (const std::uint64_t maxCuts : {std::uint64_t{1}, std::uint64_t{3}}) {
    control::BudgetLimits limits;
    limits.maxCuts = maxCuts;
    limits.maxCombinations = 1;
    {
      control::Budget budget(limits);
      (void)det.possibly(conj, budget);
      EXPECT_EQ(obs::currentSpanDepth(), 0);
    }
    {
      control::Budget budget(limits);
      (void)det.possibly(cnf, budget);
      EXPECT_EQ(obs::currentSpanDepth(), 0);
    }
    {
      control::Budget budget(limits);
      (void)det.definitely(cnf, budget);
      EXPECT_EQ(obs::currentSpanDepth(), 0);
    }
    {
      control::Budget budget(limits);
      (void)det.possibly(sym, budget);
      EXPECT_EQ(obs::currentSpanDepth(), 0);
    }
  }
  // Cooperative cancellation unwinds the same way the budget does.
  {
    control::CancelToken cancel;
    cancel.requestCancel();
    control::Budget budget(control::BudgetLimits{}, &cancel);
    (void)det.possibly(cnf, budget);
    EXPECT_EQ(obs::currentSpanDepth(), 0);
  }
  obs::tracer().stop();

  // The recorded spans still form a proper per-thread nesting (no span
  // outlived its parent).
  const auto spans = obs::tracer().snapshot();
  std::vector<const obs::SpanRecord*> stack;
  std::uint32_t tid = 0;
  for (const obs::SpanRecord& rec : spans) {
    if (rec.tid != tid) {
      stack.clear();
      tid = rec.tid;
    }
    while (!stack.empty() && rec.startNs >= stack.back()->startNs +
                                               stack.back()->durationNs) {
      stack.pop_back();
    }
    EXPECT_EQ(rec.depth, static_cast<int>(stack.size()));
    stack.push_back(&rec);
  }
#ifndef GPD_OBS_DISABLED
  EXPECT_GT(obs::tracer().recordedSpans(), 0u);
#endif
}

// One faulty replay, run twice from identical seeds — tracer armed versus
// disarmed. The session checkpoints must match byte for byte.
TEST_P(ObsSweep, CheckpointIsByteIdenticalWithTracingOnOrOff) {
  const std::uint64_t seed = GetParam();

  const auto runOnce = [&](bool armed) {
    obs::tracer().clear();
    if (armed) {
      obs::tracer().start();
    } else {
      obs::tracer().stop();
    }
    System s = makeSystem(seed, 3, 4);
    VectorClocks clocks(s.comp);
    ConjunctivePredicate pred;
    for (ProcessId p = 0; p < s.comp.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "b"));
    }
    Rng rng(seed * 97 + 3);
    const auto runOrder =
        graph::randomLinearExtension(s.comp.toDag(), rng);

    monitor::FaultOptions faults;
    faults.dropProbability = 0.15;
    faults.duplicateProbability = 0.2;
    faults.reorderProbability = 0.2;

    monitor::SessionOptions sopt;
    sopt.retryTimeout = 8;
    monitor::MonitorSession session(s.comp.processCount(), sopt);
    const auto res = monitor::replayConjunctiveFaulty(
        clocks, s.trace, pred, runOrder, session, faults, rng);
    (void)res;

    std::ostringstream checkpoint;
    io::writeCheckpoint(checkpoint, session.snapshot());
    obs::tracer().stop();
    return checkpoint.str();
  };

  const std::string withTracing = runOnce(true);
  const std::string withoutTracing = runOnce(false);
  EXPECT_EQ(withTracing, withoutTracing);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObsSweep, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace gpd
