// End-to-end `gpdtool` observability flags, exercised by spawning the real
// binary (path injected by CMake as GPDTOOL_PATH):
//
//   * detect --trace-out FILE.json writes a Chrome-trace JSON file that
//     covers plan dispatch → kernel spans, plus a flame summary on stdout;
//   * --stats -f json appends the metrics registry as JSON, including the
//     plan_vs_actual inventory entry;
//   * --stats (text) renders the sorted metric table.
//
// The span-presence assertions hold only when the library was built with
// observability on; under GPD_OBS_DISABLED the flags still work (the CLI
// surface never disappears) but the trace is empty and counters are zero,
// so those assertions are skipped.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "obs_test_util.h"

namespace gpd {
namespace {

std::string tracePath() {
  return ::testing::TempDir() + "gpd_obs_cli_test.trace";
}

std::string chromePath() {
  return ::testing::TempDir() + "gpd_obs_cli_test.json";
}

std::string outPath() { return ::testing::TempDir() + "gpd_obs_cli_out.txt"; }

// Runs gpdtool with `args`, stdout+stderr captured to outPath(), and
// returns its exit code.
int runTool(const std::string& args) {
  const std::string cmd = std::string(GPDTOOL_PATH) + " " + args + " > " +
                          outPath() + " 2>&1";
  const int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "failed to spawn " << cmd;
  EXPECT_TRUE(WIFEXITED(status)) << "gpdtool killed by signal: " << cmd;
  return WEXITSTATUS(status);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class ObsCliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ASSERT_EQ(runTool("generate random " + tracePath() + " 7"), 0);
  }
};

TEST_F(ObsCliTest, TraceOutWritesLoadableChromeJson) {
  ASSERT_EQ(runTool("detect " + tracePath() + " conj --trace-out " +
                    chromePath() + " 0:b 1:b"),
            0);
  const std::string json = slurp(chromePath());
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(obs::testing::isValidJson(json)) << json;
  EXPECT_NE(json.find(R"("name":"process_name","ph":"M")"),
            std::string::npos);
#ifndef GPD_OBS_DISABLED
  // Dispatch → kernel span coverage in the exported trace.
  EXPECT_NE(json.find("detect.query"), std::string::npos);
  EXPECT_NE(json.find("detect.cpdhb"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  // The CLI reports the export and prints the flame summary.
  const std::string out = slurp(outPath());
  EXPECT_NE(out.find("trace:"), std::string::npos);
  EXPECT_NE(out.find("detect.query"), std::string::npos);
#endif
}

TEST_F(ObsCliTest, StatsJsonCoversTheMetricInventory) {
  ASSERT_EQ(
      runTool("detect " + tracePath() + " cnf --stats -f json 0:b 1:!b"), 0);
  const std::string out = slurp(outPath());
  // The stats JSON object is the last line of output.
  const auto brace = out.find("\n{");
  ASSERT_NE(brace, std::string::npos) << out;
  const std::string json = out.substr(brace + 1);
  EXPECT_TRUE(obs::testing::isValidJson(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_vs_actual\""), std::string::npos);
  EXPECT_NE(json.find("\"cpdhb_invocations\""), std::string::npos);
#ifndef GPD_OBS_DISABLED
  EXPECT_EQ(json.find("\"detector_queries\": 0,"), std::string::npos)
      << "a detect run must count at least one detector query: " << json;
#endif
}

TEST_F(ObsCliTest, StatsTextRendersTheTable) {
  ASSERT_EQ(runTool("detect " + tracePath() + " sum --stats ge 0 x"), 0);
  const std::string out = slurp(outPath());
  EXPECT_NE(out.find("counter"), std::string::npos);
  EXPECT_NE(out.find("lattice_explorations"), std::string::npos);
  EXPECT_NE(out.find("histogram"), std::string::npos);
}

TEST_F(ObsCliTest, ObsFlagsComposeWithBudgetsAndExitCodes) {
  // A budget-tripped unknown still exits 3 with obs flags present, and the
  // trace file is still written (spans closed on the unwind).
  EXPECT_EQ(runTool("detect " + tracePath() + " cnf --max-cuts 1 --stats" +
                    " --trace-out " + chromePath() + " 0:b 0:!b"),
            3);
  const std::string json = slurp(chromePath());
  EXPECT_TRUE(obs::testing::isValidJson(json)) << json;
}

TEST_F(ObsCliTest, PlanAndMonitorAcceptObsFlags) {
  EXPECT_EQ(runTool("plan " + tracePath() + " --stats cnf 0:b 1:!b"), 0);
  // The online checker needs one conjunct per process (5 in this trace).
  EXPECT_EQ(
      runTool("monitor " + tracePath() + " --stats 0:b 1:b 2:b 3:b 4:b"), 0);
  const std::string out = slurp(outPath());
  EXPECT_NE(out.find("monitor_notifications"), std::string::npos);
}

TEST_F(ObsCliTest, ScrapeParsesAndPrettyPrintsAnExposition) {
  const std::string scrape = ::testing::TempDir() + "gpd_obs_cli.prom";
  {
    std::ofstream out(scrape);
    out << "# TYPE gpdd_pumps counter\n"
        << "gpdd_pumps_total 42\n"
        << "# TYPE gpdd_tenant_sessions gauge\n"
        << "gpdd_tenant_sessions{tenant=\"acme\"} 3\n"
        << "# TYPE gpdd_build_info gauge\n"
        << "gpdd_build_info{version=\"v1\",obs=\"on\"} 1\n"
        << "# EOF\n";
  }
  ASSERT_EQ(runTool("scrape " + scrape), 0);
  std::string out = slurp(outPath());
  EXPECT_NE(out.find("gpdd_pumps (counter)"), std::string::npos) << out;
  EXPECT_NE(out.find("gpdd_pumps_total 42"), std::string::npos) << out;
  EXPECT_NE(out.find("tenant=\"acme\""), std::string::npos) << out;
  EXPECT_NE(out.find("3 families, 3 samples"), std::string::npos) << out;

  ASSERT_EQ(runTool("scrape -f json " + scrape), 0);
  out = slurp(outPath());
  EXPECT_TRUE(obs::testing::isValidJson(out)) << out;
  EXPECT_NE(out.find("\"name\":\"gpdd_tenant_sessions\""), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"labels\":{\"tenant\":\"acme\"}"), std::string::npos)
      << out;
  std::remove(scrape.c_str());
}

TEST_F(ObsCliTest, ScrapeRejectsMalformedExpositionWithExitOne) {
  const std::string scrape = ::testing::TempDir() + "gpd_obs_cli_bad.prom";
  {
    std::ofstream out(scrape);
    // No # EOF terminator — a truncated scrape must not pass silently.
    out << "# TYPE gpdd_pumps counter\n"
        << "gpdd_pumps_total 42\n";
  }
  EXPECT_EQ(runTool("scrape " + scrape), 1);
  EXPECT_NE(slurp(outPath()).find("openmetrics"), std::string::npos);
  // A sample outside its family carries the line number in the error.
  {
    std::ofstream out(scrape);
    out << "# TYPE a gauge\nb 1\n# EOF\n";
  }
  EXPECT_EQ(runTool("scrape " + scrape), 1);
  EXPECT_NE(slurp(outPath()).find("line 2"), std::string::npos);
  // Missing file is bad input, not an internal error.
  EXPECT_EQ(runTool("scrape /nonexistent/telemetry.prom"), 1);
  std::remove(scrape.c_str());
}

}  // namespace
}  // namespace gpd
