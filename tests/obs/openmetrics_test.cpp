// src/obs/openmetrics: OpenMetrics exposition renderer and its strict
// parser (DESIGN.md §16).  The renderer consumes a MetricsSnapshot — a
// plain value type — so these tests hand-build snapshots and are identical
// in default-on and GPD_OBS_DISABLED builds.
#include "obs/openmetrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "util/check.h"

namespace gpd::obs {
namespace {

std::string render(const MetricsSnapshot& snap,
                   const std::vector<std::pair<std::string, std::string>>&
                       buildInfo = {}) {
  std::ostringstream os;
  renderOpenMetrics(os, snap, buildInfo);
  return os.str();
}

TEST(OpenMetrics, EscapeLabelValueCoversTheThreeEscapes) {
  EXPECT_EQ(escapeLabelValue("plain"), "plain");
  EXPECT_EQ(escapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(escapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(escapeLabelValue("a\nb"), "a\\nb");
}

TEST(OpenMetrics, RenderParseRoundTrip) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("gpdd_pumps", 41);
  snap.gauges.emplace_back("gpdd_sessions_open", 7);
  MetricsSnapshot::HistogramValue h;
  h.name = "gpdd_pump_nanos";
  h.count = 3;
  h.sum = 1 + 5 + 100;
  h.buckets[1] = 1;   // value 1   → [1,2)
  h.buckets[3] = 1;   // value 5   → [4,8)
  h.buckets[7] = 1;   // value 100 → [64,128)
  snap.histograms.push_back(h);

  const std::string text = render(snap, {{"version", "v1"}, {"obs", "on"}});
  EXPECT_NE(text.find("# EOF\n"), std::string::npos);

  const Exposition exp = parseExposition(text);
  ASSERT_EQ(exp.families.size(), 4u);
  EXPECT_EQ(exp.families[0].type, "counter");
  EXPECT_EQ(exp.value("gpdd_pumps_total"), 41);
  EXPECT_EQ(exp.value("gpdd_sessions_open"), 7);
  EXPECT_EQ(exp.value("gpdd_pump_nanos_sum"), 106);
  EXPECT_EQ(exp.value("gpdd_pump_nanos_count"), 3);
  EXPECT_EQ(exp.value("absent_metric", -1), -1);

  // Build info renders as a single always-1 gauge with one label per field.
  const ExpositionSample* info = exp.find("gpdd_build_info");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->value, 1);
  ASSERT_EQ(info->labels.size(), 2u);
  EXPECT_EQ(info->labels[0].first, "version");
  EXPECT_EQ(info->labels[0].second, "v1");

  // Histogram buckets are cumulative, le = 2^i - 1, and only non-empty
  // buckets render (plus the mandatory +Inf).
  const ExpositionFamily& hist = exp.families.back();
  EXPECT_EQ(hist.type, "histogram");
  ASSERT_EQ(hist.samples.size(), 6u);  // 3 buckets + Inf + sum + count
  EXPECT_EQ(hist.samples[0].labels[0].second, "1");
  EXPECT_EQ(hist.samples[0].value, 1);
  EXPECT_EQ(hist.samples[1].labels[0].second, "7");
  EXPECT_EQ(hist.samples[1].value, 2);
  EXPECT_EQ(hist.samples[2].labels[0].second, "127");
  EXPECT_EQ(hist.samples[2].value, 3);
  EXPECT_EQ(hist.samples[3].labels[0].second, "+Inf");
  EXPECT_EQ(hist.samples[3].value, 3);
}

TEST(OpenMetrics, TenantGaugesReshapeIntoLabeledFamilies) {
  MetricsSnapshot snap;
  // Tenant names may contain underscores; the field suffix is matched from
  // the right, so "big_co" survives intact.
  snap.gauges.emplace_back("gpdd_tenant_acme_sessions", 4);
  snap.gauges.emplace_back("gpdd_tenant_big_co_sessions", 9);
  snap.gauges.emplace_back("gpdd_tenant_acme_ev_bytes", 1024);
  snap.gauges.emplace_back("gpdd_mem_level", 1);

  const Exposition exp = parseExposition(render(snap));
  const ExpositionSample* plain = exp.find("gpdd_mem_level");
  ASSERT_NE(plain, nullptr);
  EXPECT_TRUE(plain->labels.empty());

  bool sawAcme = false, sawBigCo = false;
  for (const ExpositionFamily& fam : exp.families) {
    if (fam.name != "gpdd_tenant_sessions") continue;
    EXPECT_EQ(fam.type, "gauge");
    for (const ExpositionSample& s : fam.samples) {
      ASSERT_EQ(s.labels.size(), 1u);
      EXPECT_EQ(s.labels[0].first, "tenant");
      if (s.labels[0].second == "acme") {
        sawAcme = true;
        EXPECT_EQ(s.value, 4);
      }
      if (s.labels[0].second == "big_co") {
        sawBigCo = true;
        EXPECT_EQ(s.value, 9);
      }
    }
  }
  EXPECT_TRUE(sawAcme);
  EXPECT_TRUE(sawBigCo);
  EXPECT_EQ(exp.find("gpdd_tenant_acme_sessions"), nullptr)
      << "flat tenant gauge leaked through un-reshaped";
  EXPECT_EQ(exp.value("gpdd_tenant_ev_bytes", -1), 1024);
}

TEST(OpenMetrics, ParserAcceptsEscapedLabelValues) {
  const std::string text =
      "# TYPE t gauge\n"
      "t{tenant=\"a\\\\b\\\"c\\nd\"} 5\n"
      "# EOF\n";
  const Exposition exp = parseExposition(text);
  const ExpositionSample* s = exp.find("t");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->labels[0].second, "a\\b\"c\nd");
}

TEST(OpenMetrics, ParserRejectsMalformedInput) {
  // Missing # EOF.
  EXPECT_THROW(parseExposition("# TYPE a gauge\na 1\n"), InputError);
  // Content after # EOF.
  EXPECT_THROW(parseExposition("# EOF\nx 1\n"), InputError);
  // Sample before any # TYPE.
  EXPECT_THROW(parseExposition("a 1\n# EOF\n"), InputError);
  // Sample outside its announced family.
  EXPECT_THROW(
      parseExposition("# TYPE a gauge\nb 1\n# EOF\n"), InputError);
  // Unparseable value.
  EXPECT_THROW(
      parseExposition("# TYPE a gauge\na one\n# EOF\n"), InputError);
  // Unterminated label value.
  EXPECT_THROW(
      parseExposition("# TYPE a gauge\na{l=\"x} 1\n# EOF\n"), InputError);
  // Bad escape.
  EXPECT_THROW(
      parseExposition("# TYPE a gauge\na{l=\"\\t\"} 1\n# EOF\n"),
      InputError);
  // Unknown family type.
  EXPECT_THROW(parseExposition("# TYPE a summary\n# EOF\n"), InputError);
  // The error message carries the line number.
  try {
    parseExposition("# TYPE a gauge\nb 1\n# EOF\n");
    FAIL() << "expected InputError";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(OpenMetrics, HelpAndUnitCommentsAreIgnored) {
  const std::string text =
      "# HELP a free text here\n"
      "# TYPE a counter\n"
      "# UNIT a seconds\n"
      "a_total 2\n"
      "# EOF\n";
  EXPECT_EQ(parseExposition(text).value("a_total"), 2);
}

}  // namespace
}  // namespace gpd::obs
