#include "lattice/explore.h"

#include <gtest/gtest.h>
#include <set>

#include "computation/random.h"
#include "graph/linear_extension.h"

namespace gpd::lattice {
namespace {

Computation independent(int processes, int events) {
  ComputationBuilder b(processes);
  for (ProcessId p = 0; p < processes; ++p) {
    for (int i = 0; i < events; ++i) b.appendEvent(p);
  }
  return std::move(b).build();
}

TEST(LatticeTest, IndependentProcessesFormGrid) {
  const Computation c = independent(2, 3);
  const VectorClocks vc(c);
  std::uint64_t count = 0;
  forEachConsistentCut(vc, [&](const Cut&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 16u);  // (3+1)^2
}

TEST(LatticeTest, MessagesPruneTheLattice) {
  ComputationBuilder b(2);
  const EventId s = b.appendEvent(0);
  const EventId r = b.appendEvent(1);
  b.addMessage(s, r);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  // Grid would have 4 cuts; [0,1] is inconsistent (receive without send).
  EXPECT_EQ(latticeStats(vc).cutCount, 3u);
}

TEST(LatticeTest, VisitsEachCutOnceInLevelOrder) {
  Rng rng(3);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 4;
  const Computation c = randomComputation(opt, rng);
  const VectorClocks vc(c);
  std::set<std::vector<int>> seen;
  int lastLevel = -1;
  forEachConsistentCut(vc, [&](const Cut& cut) {
    EXPECT_TRUE(vc.isConsistent(cut));
    EXPECT_TRUE(seen.insert(cut.last).second) << "duplicate " << cut.toString();
    EXPECT_GE(cut.level(), lastLevel);
    lastLevel = cut.level();
    return true;
  });
  EXPECT_FALSE(seen.empty());
}

TEST(LatticeTest, EnumerationCoversAllConsistentPrefixVectors) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.6;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    // Count consistent cuts by brute force over the full grid.
    std::uint64_t expected = 0;
    std::vector<int> idx(c.processCount(), 0);
    while (true) {
      if (vc.isConsistent(Cut{std::vector<int>(idx)})) ++expected;
      int p = 0;
      while (p < c.processCount() && idx[p] + 1 >= c.eventCount(p)) {
        idx[p] = 0;
        ++p;
      }
      if (p == c.processCount()) break;
      ++idx[p];
    }
    EXPECT_EQ(latticeStats(vc).cutCount, expected) << "trial " << trial;
  }
}

TEST(LatticeTest, StatsOnGrid) {
  const Computation c = independent(2, 2);
  const VectorClocks vc(c);
  const LatticeStats stats = latticeStats(vc);
  EXPECT_EQ(stats.cutCount, 9u);
  EXPECT_EQ(stats.levels, 5);   // levels 0..4
  EXPECT_EQ(stats.maxWidth, 3u);  // the middle diagonal
  EXPECT_TRUE(stats.complete);
}

TEST(LatticeTest, StatsStopEarlyWhenTheBudgetTrips) {
  const Computation c = independent(3, 3);
  const VectorClocks vc(c);
  const std::uint64_t full = latticeStats(vc).cutCount;
  control::BudgetLimits tight;
  tight.maxCuts = 4;
  control::Budget budget(tight);
  const LatticeStats stats = latticeStats(vc, &budget);
  EXPECT_FALSE(stats.complete);
  EXPECT_LT(stats.cutCount, full);
  // A roomy budget changes nothing.
  control::BudgetLimits wide;
  wide.maxCuts = full * 2;
  control::Budget roomy(wide);
  const LatticeStats again = latticeStats(vc, &roomy);
  EXPECT_TRUE(again.complete);
  EXPECT_EQ(again.cutCount, full);
}

TEST(LatticeTest, PossiblyFindsWitness) {
  const Computation c = independent(2, 2);
  const VectorClocks vc(c);
  const auto cut = findSatisfyingCut(
      vc, [](const Cut& cut) { return cut.last[0] == 1 && cut.last[1] == 2; });
  ASSERT_TRUE(cut.has_value());
  EXPECT_EQ(cut->last, (std::vector<int>{1, 2}));
  EXPECT_FALSE(
      possiblyExhaustive(vc, [](const Cut& cut) { return cut.last[0] > 5; }));
}

TEST(LatticeTest, DefinitelyAtInitialOrFinal) {
  const Computation c = independent(2, 2);
  const VectorClocks vc(c);
  EXPECT_TRUE(definitelyExhaustive(
      vc, [](const Cut& cut) { return cut.level() == 0; }));
  EXPECT_TRUE(definitelyExhaustive(
      vc, [](const Cut& cut) { return cut.level() == 4; }));
  // Every run passes through exactly one level-2 cut.
  EXPECT_TRUE(definitelyExhaustive(
      vc, [](const Cut& cut) { return cut.level() == 2; }));
}

TEST(LatticeTest, PossiblyButNotDefinitely) {
  const Computation c = independent(2, 1);
  const VectorClocks vc(c);
  // The cut [1,0]: possible, but the run executing p1 first avoids it.
  const auto phi = [](const Cut& cut) {
    return cut.last[0] == 1 && cut.last[1] == 0;
  };
  EXPECT_TRUE(possiblyExhaustive(vc, phi));
  EXPECT_FALSE(definitelyExhaustive(vc, phi));
}

// Ground truth via run enumeration: possibly(φ) iff some linear extension
// passes a φ-cut; definitely(φ) iff all do.
TEST(LatticeTest, ModalitiesMatchRunEnumeration) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 2 + static_cast<int>(rng.index(2));
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);

    // A pseudo-random but deterministic predicate over cuts.
    const std::uint64_t salt = rng.next();
    const auto phi = [&](const Cut& cut) {
      std::size_t h = std::hash<Cut>{}(cut) ^ salt;
      return h % 5 == 0;
    };

    bool anyRunHits = false;
    bool allRunsHit = true;
    graph::forEachLinearExtension(
        c.toDag(), [&](const std::vector<int>& order) {
          std::vector<int> idx(c.processCount(), 0);
          int placed = 0;
          bool hit = false;
          // The initial events execute first (initial-precedence edges).
          for (int node : order) {
            const EventId e = c.event(node);
            idx[e.process] = e.index;
            ++placed;
            if (placed >= c.processCount()) {
              if (phi(Cut{std::vector<int>(idx)})) hit = true;
            }
          }
          anyRunHits |= hit;
          allRunsHit &= hit;
          return true;
        });

    EXPECT_EQ(possiblyExhaustive(vc, phi), anyRunHits) << "trial " << trial;
    EXPECT_EQ(definitelyExhaustive(vc, phi), allRunsHit) << "trial " << trial;
  }
}

TEST(LatticeTest, EarlyStopCountsVisited) {
  const Computation c = independent(2, 3);
  const VectorClocks vc(c);
  int calls = 0;
  const auto visited = forEachConsistentCut(vc, [&](const Cut&) {
    return ++calls < 4;
  });
  EXPECT_EQ(visited, 4u);
}

TEST(LatticeBudgetTest, ExploreEndDistinguishesThreeStopKinds) {
  const Computation c = independent(2, 3);
  const VectorClocks vc(c);

  const ExploreResult full =
      exploreConsistentCuts(vc, [](const Cut&) { return true; });
  EXPECT_EQ(full.end, ExploreEnd::Exhausted);
  EXPECT_EQ(full.cutsVisited, 16u);
  EXPECT_GT(full.peakFrontierCuts, 0u);
  EXPECT_GT(full.peakFrontierBytes, 0u);

  int calls = 0;
  const ExploreResult stopped =
      exploreConsistentCuts(vc, [&](const Cut&) { return ++calls < 4; });
  EXPECT_EQ(stopped.end, ExploreEnd::VisitorStopped);
  EXPECT_EQ(stopped.cutsVisited, 4u);

  control::BudgetLimits limits;
  limits.maxCuts = 5;
  control::Budget budget(limits);
  const ExploreResult cut =
      exploreConsistentCuts(vc, [](const Cut&) { return true; }, &budget);
  EXPECT_EQ(cut.end, ExploreEnd::BudgetExhausted);
  EXPECT_EQ(cut.cutsVisited, 5u);  // exactly the budget, never more
  EXPECT_EQ(budget.reason(), control::StopReason::CutLimit);
}

TEST(LatticeBudgetTest, UnlimitedBudgetMatchesUnbudgetedCount) {
  Rng rng(91);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 4;
  opt.messageProbability = 0.4;
  const Computation c = randomComputation(opt, rng);
  const VectorClocks vc(c);
  control::Budget unlimited;
  const ExploreResult budgeted =
      exploreConsistentCuts(vc, [](const Cut&) { return true; }, &unlimited);
  EXPECT_EQ(budgeted.end, ExploreEnd::Exhausted);
  EXPECT_EQ(budgeted.cutsVisited,
            forEachConsistentCut(vc, [](const Cut&) { return true; }));
}

TEST(LatticeBudgetTest, FrontierLimitStopsTheGrid) {
  // A wide independent grid has a frontier of many cuts; one byte of
  // frontier budget must trip almost immediately.
  const Computation c = independent(4, 4);
  const VectorClocks vc(c);
  control::BudgetLimits limits;
  limits.maxFrontierBytes = 1;
  control::Budget budget(limits);
  const ExploreResult r =
      exploreConsistentCuts(vc, [](const Cut&) { return true; }, &budget);
  EXPECT_EQ(r.end, ExploreEnd::BudgetExhausted);
  EXPECT_EQ(budget.reason(), control::StopReason::FrontierLimit);
  EXPECT_LT(r.cutsVisited, 625u);  // nowhere near the 5^4 total
}

TEST(LatticeBudgetTest, SearchCompleteSemantics) {
  const Computation c = independent(2, 3);
  const VectorClocks vc(c);

  // A witness found in budget is complete even under a tiny budget: Yes
  // never degrades.
  control::BudgetLimits one;
  one.maxCuts = 1;
  control::Budget witnessBudget(one);
  const CutSearchResult hit = findSatisfyingCutBudgeted(
      vc, [](const Cut& cut) { return cut.level() == 0; }, &witnessBudget);
  ASSERT_TRUE(hit.witness.has_value());
  EXPECT_TRUE(hit.complete);

  // Exhausting the lattice without a witness is an exact No.
  const CutSearchResult miss = findSatisfyingCutBudgeted(
      vc, [](const Cut& cut) { return cut.last[0] > 5; }, nullptr);
  EXPECT_FALSE(miss.witness.has_value());
  EXPECT_TRUE(miss.complete);
  EXPECT_EQ(miss.explore.end, ExploreEnd::Exhausted);

  // A budget stop before a witness is incomplete: no witness is not a No.
  control::Budget tiny(one);
  const CutSearchResult unknown = findSatisfyingCutBudgeted(
      vc, [](const Cut& cut) { return cut.last[0] > 5; }, &tiny);
  EXPECT_FALSE(unknown.witness.has_value());
  EXPECT_FALSE(unknown.complete);
  EXPECT_EQ(unknown.explore.end, ExploreEnd::BudgetExhausted);
}

TEST(LatticeBudgetTest, DefinitelyBudgetedDecidesOrAdmitsIgnorance) {
  const Computation c = independent(2, 2);
  const VectorClocks vc(c);
  const auto midLevel = [](const Cut& cut) { return cut.level() == 2; };

  // Generous budget: decided, and agrees with the unbudgeted oracle.
  control::BudgetLimits generous;
  generous.maxCuts = 1000;
  control::Budget big(generous);
  const DefinitelyDecision d = definitelyExhaustiveBudgeted(vc, midLevel, &big);
  EXPECT_TRUE(d.decided);
  EXPECT_EQ(d.holds, definitelyExhaustive(vc, midLevel));

  // Tiny budget on the same query: undecided, never a guess.
  control::BudgetLimits one;
  one.maxCuts = 1;
  control::Budget tiny(one);
  const DefinitelyDecision u =
      definitelyExhaustiveBudgeted(vc, midLevel, &tiny);
  EXPECT_FALSE(u.decided);

  // φ(⊥) is checked before any charge: an initial-state predicate decides
  // true even when the budget is already exhausted.
  control::Budget spent(one);
  while (spent.chargeCut()) {
  }
  ASSERT_TRUE(spent.exhausted());
  const DefinitelyDecision init = definitelyExhaustiveBudgeted(
      vc, [](const Cut& cut) { return cut.level() == 0; }, &spent);
  EXPECT_TRUE(init.decided);
  EXPECT_TRUE(init.holds);
}

}  // namespace
}  // namespace gpd::lattice
