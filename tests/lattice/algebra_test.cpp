// Order-theoretic properties of the set of consistent cuts: it forms a
// lattice under componentwise min/max (the foundation beneath the whole
// paper — Theorem 4's path arguments and the possibly/definitely modalities
// all live in this lattice).
#include <gtest/gtest.h>
#include <set>

#include "computation/random.h"
#include "graph/linear_extension.h"
#include "lattice/explore.h"

namespace gpd::lattice {
namespace {

std::vector<Cut> allConsistentCuts(const VectorClocks& vc) {
  std::vector<Cut> cuts;
  forEachConsistentCut(vc, [&](const Cut& c) {
    cuts.push_back(c);
    return true;
  });
  return cuts;
}

TEST(LatticeAlgebraTest, ClosedUnderMeetAndJoin) {
  Rng rng(100);
  for (int trial = 0; trial < 15; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 3;
    opt.messageProbability = 0.6;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    const auto cuts = allConsistentCuts(vc);
    for (const Cut& a : cuts) {
      for (const Cut& b : cuts) {
        EXPECT_TRUE(vc.isConsistent(meet(a, b)));
        EXPECT_TRUE(vc.isConsistent(join(a, b)));
      }
    }
  }
}

TEST(LatticeAlgebraTest, BottomAndTopAreExtremal) {
  Rng rng(101);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 4;
  opt.messageProbability = 0.5;
  const Computation c = randomComputation(opt, rng);
  const VectorClocks vc(c);
  const Cut bottom = initialCut(c);
  const Cut top = finalCut(c);
  EXPECT_TRUE(vc.isConsistent(bottom));
  EXPECT_TRUE(vc.isConsistent(top));
  forEachConsistentCut(vc, [&](const Cut& cut) {
    EXPECT_TRUE(bottom.subsetOf(cut));
    EXPECT_TRUE(cut.subsetOf(top));
    return true;
  });
}

TEST(LatticeAlgebraTest, LatticeLawsHold) {
  const Cut a(std::vector<int>{1, 3, 0});
  const Cut b(std::vector<int>{2, 1, 2});
  const Cut c(std::vector<int>{0, 2, 1});
  // Commutativity, associativity, absorption, idempotence.
  EXPECT_EQ(meet(a, b), meet(b, a));
  EXPECT_EQ(join(a, b), join(b, a));
  EXPECT_EQ(meet(a, meet(b, c)), meet(meet(a, b), c));
  EXPECT_EQ(join(a, join(b, c)), join(join(a, b), c));
  EXPECT_EQ(meet(a, join(a, b)), a);
  EXPECT_EQ(join(a, meet(a, b)), a);
  EXPECT_EQ(meet(a, a), a);
  EXPECT_EQ(join(a, a), a);
}

// Every consistent cut lies on some run, and every run visits exactly one
// cut per level — the bijection behind "possibly ⟺ some cut" (paper
// Sec. 2.2/2.3).
TEST(LatticeAlgebraTest, EveryCutLiesOnSomeRun) {
  Rng rng(102);
  for (int trial = 0; trial < 8; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 2;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    const auto cuts = allConsistentCuts(vc);
    std::set<std::vector<int>> visited;
    graph::forEachLinearExtension(c.toDag(), [&](const std::vector<int>& run) {
      std::vector<int> idx(c.processCount(), 0);
      int placed = 0;
      for (int node : run) {
        const EventId e = c.event(node);
        idx[e.process] = e.index;
        if (++placed >= c.processCount()) visited.insert(idx);
      }
      return true;
    });
    for (const Cut& cut : cuts) {
      EXPECT_TRUE(visited.count(cut.last))
          << "cut " << cut.toString() << " on no run, trial " << trial;
    }
    EXPECT_EQ(visited.size(), cuts.size());
  }
}

TEST(LatticeAlgebraTest, RunsVisitOneCutPerLevel) {
  Rng rng(103);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 3;
  opt.messageProbability = 0.5;
  const Computation c = randomComputation(opt, rng);
  const VectorClocks vc(c);
  for (int i = 0; i < 10; ++i) {
    const auto run = graph::randomLinearExtension(c.toDag(), rng);
    std::vector<int> idx(c.processCount(), 0);
    int placed = 0;
    int expectedLevel = 0;
    for (int node : run) {
      const EventId e = c.event(node);
      idx[e.process] = e.index;
      if (++placed >= c.processCount()) {
        const Cut cut{std::vector<int>(idx)};
        EXPECT_TRUE(vc.isConsistent(cut));
        EXPECT_EQ(cut.level(), expectedLevel + placed - c.processCount());
      }
    }
  }
}

}  // namespace
}  // namespace gpd::lattice
