#include "flow/maxflow.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/rng.h"

namespace gpd::flow {
namespace {

struct EdgeSpec {
  int from, to;
  std::int64_t cap;
};

// Brute-force min cut: enumerate all source-side subsets.
std::int64_t bruteMinCut(int n, const std::vector<EdgeSpec>& edges, int s,
                         int t) {
  std::int64_t best = -1;
  for (int mask = 0; mask < (1 << n); ++mask) {
    if (!(mask >> s & 1) || (mask >> t & 1)) continue;
    std::int64_t cut = 0;
    for (const auto& e : edges) {
      if ((mask >> e.from & 1) && !(mask >> e.to & 1)) cut += e.cap;
    }
    if (best < 0 || cut < best) best = cut;
  }
  return best;
}

TEST(MaxFlowTest, SingleEdge) {
  MaxFlow mf(2);
  mf.addEdge(0, 1, 7);
  EXPECT_EQ(mf.solve(0, 1), 7);
}

TEST(MaxFlowTest, SeriesTakesMinimum) {
  MaxFlow mf(3);
  mf.addEdge(0, 1, 10);
  mf.addEdge(1, 2, 4);
  EXPECT_EQ(mf.solve(0, 2), 4);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  MaxFlow mf(4);
  mf.addEdge(0, 1, 3);
  mf.addEdge(1, 3, 3);
  mf.addEdge(0, 2, 5);
  mf.addEdge(2, 3, 5);
  EXPECT_EQ(mf.solve(0, 3), 8);
}

TEST(MaxFlowTest, ClassicDiamondWithCrossEdge) {
  MaxFlow mf(4);
  mf.addEdge(0, 1, 10);
  mf.addEdge(0, 2, 10);
  mf.addEdge(1, 2, 1);
  mf.addEdge(1, 3, 10);
  mf.addEdge(2, 3, 10);
  EXPECT_EQ(mf.solve(0, 3), 20);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlow mf(4);
  mf.addEdge(0, 1, 5);
  mf.addEdge(2, 3, 5);
  EXPECT_EQ(mf.solve(0, 3), 0);
}

TEST(MaxFlowTest, FlowConservationOnEdges) {
  MaxFlow mf(4);
  const int a = mf.addEdge(0, 1, 3);
  const int b = mf.addEdge(1, 3, 2);
  const int c = mf.addEdge(0, 2, 4);
  const int d = mf.addEdge(2, 3, 4);
  EXPECT_EQ(mf.solve(0, 3), 6);
  EXPECT_EQ(mf.flowOn(a), 2);
  EXPECT_EQ(mf.flowOn(b), 2);
  EXPECT_EQ(mf.flowOn(c), 4);
  EXPECT_EQ(mf.flowOn(d), 4);
}

TEST(MaxFlowTest, MinCutSeparatesSourceFromSink) {
  MaxFlow mf(3);
  mf.addEdge(0, 1, 2);
  mf.addEdge(1, 2, 1);
  mf.solve(0, 2);
  const auto side = mf.minCutSourceSide();
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[2]);
}

TEST(MaxFlowTest, SolveTwiceRejected) {
  MaxFlow mf(2);
  mf.addEdge(0, 1, 1);
  mf.solve(0, 1);
  EXPECT_THROW(mf.solve(0, 1), CheckFailure);
}

TEST(MaxFlowTest, NegativeCapacityRejected) {
  MaxFlow mf(2);
  EXPECT_THROW(mf.addEdge(0, 1, -1), CheckFailure);
}

TEST(MaxFlowTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(321);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 4 + static_cast<int>(rng.index(4));  // 4..7 nodes
    std::vector<EdgeSpec> edges;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u != v && rng.chance(0.35)) {
          edges.push_back({u, v, rng.uniform(0, 9)});
        }
      }
    }
    MaxFlow mf(n);
    for (const auto& e : edges) mf.addEdge(e.from, e.to, e.cap);
    const std::int64_t flow = mf.solve(0, n - 1);
    EXPECT_EQ(flow, bruteMinCut(n, edges, 0, n - 1)) << "trial " << trial;
    // Max-flow equals capacity across the reported min cut.
    const auto side = mf.minCutSourceSide();
    std::int64_t cutCap = 0;
    for (const auto& e : edges) {
      if (side[e.from] && !side[e.to]) cutCap += e.cap;
    }
    EXPECT_EQ(cutCap, flow);
  }
}

}  // namespace
}  // namespace gpd::flow
