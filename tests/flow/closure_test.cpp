#include "flow/closure.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gpd::flow {
namespace {

// Exhaustive best closure for cross-validation.
std::int64_t bruteBestClosure(const graph::Dag& g,
                              const std::vector<std::int64_t>& w) {
  const int n = g.size();
  std::int64_t best = 0;  // empty closure
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool closed = true;
    for (int u = 0; u < n && closed; ++u) {
      if (!(mask >> u & 1)) continue;
      for (int v : g.successors(u)) {
        if (!(mask >> v & 1)) {
          closed = false;
          break;
        }
      }
    }
    if (!closed) continue;
    std::int64_t total = 0;
    for (int u = 0; u < n; ++u) {
      if (mask >> u & 1) total += w[u];
    }
    best = std::max(best, total);
  }
  return best;
}

bool isClosure(const graph::Dag& g, const std::vector<char>& in) {
  for (int u = 0; u < g.size(); ++u) {
    if (!in[u]) continue;
    for (int v : g.successors(u)) {
      if (!in[v]) return false;
    }
  }
  return true;
}

TEST(ClosureTest, AllPositiveTakesEverything) {
  graph::Dag g(3);
  g.addEdge(0, 1);
  const auto res = maxWeightClosure(g, {1, 2, 3});
  EXPECT_EQ(res.weight, 6);
  for (char c : res.inClosure) EXPECT_TRUE(c);
}

TEST(ClosureTest, AllNegativeTakesNothing) {
  graph::Dag g(3);
  g.addEdge(0, 1);
  const auto res = maxWeightClosure(g, {-1, -2, -3});
  EXPECT_EQ(res.weight, 0);
  for (char c : res.inClosure) EXPECT_FALSE(c);
}

TEST(ClosureTest, ProjectSelectionTradeoff) {
  // Taking node 0 (+5) forces node 1 (−3): worth it. Node 2 (−10) stays out.
  graph::Dag g(3);
  g.addEdge(0, 1);
  const auto res = maxWeightClosure(g, {5, -3, -10});
  EXPECT_EQ(res.weight, 2);
  EXPECT_TRUE(res.inClosure[0]);
  EXPECT_TRUE(res.inClosure[1]);
  EXPECT_FALSE(res.inClosure[2]);
}

TEST(ClosureTest, UnprofitableDependencyDropsProject) {
  graph::Dag g(2);
  g.addEdge(0, 1);
  const auto res = maxWeightClosure(g, {5, -8});
  EXPECT_EQ(res.weight, 0);
  EXPECT_FALSE(res.inClosure[0]);
}

TEST(ClosureTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(555);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 3 + static_cast<int>(rng.index(8));  // 3..10 nodes
    graph::Dag g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.chance(0.3)) g.addEdge(u, v);
      }
    }
    std::vector<std::int64_t> w(n);
    for (auto& x : w) x = rng.uniform(-10, 10);
    const auto res = maxWeightClosure(g, w);
    EXPECT_EQ(res.weight, bruteBestClosure(g, w)) << "trial " << trial;
    EXPECT_TRUE(isClosure(g, res.inClosure));
    std::int64_t chosen = 0;
    for (int u = 0; u < n; ++u) {
      if (res.inClosure[u]) chosen += w[u];
    }
    EXPECT_EQ(chosen, res.weight);
  }
}

}  // namespace
}  // namespace gpd::flow
