#include "analysis/statistics.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "lattice/explore.h"

namespace gpd::analysis {
namespace {

TEST(StatisticsTest, IndependentProcessesAreMaximallyConcurrent) {
  ComputationBuilder b(3);
  for (ProcessId p = 0; p < 3; ++p) {
    b.appendEvent(p);
    b.appendEvent(p);
  }
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  const ComputationStats stats = computeStats(vc);
  EXPECT_EQ(stats.processes, 3);
  EXPECT_EQ(stats.events, 9);
  EXPECT_EQ(stats.messages, 0);
  EXPECT_EQ(stats.height, 2);  // each process chain
  EXPECT_EQ(stats.width, 3);   // one event per process, pairwise concurrent
  EXPECT_EQ(stats.gridBound, 27.0);
  // Same-process pairs are ordered; cross-process pairs concurrent: of the
  // 15 pairs, 3·1 = 3 are same-process-ordered.
  EXPECT_DOUBLE_EQ(stats.concurrencyIndex, 12.0 / 15.0);
}

TEST(StatisticsTest, FullyChainedComputationHasWidthOne) {
  // p0 → p1 → p0 → p1 … alternating messages make one long chain.
  ComputationBuilder b(2);
  EventId prev = b.appendEvent(0);
  for (int i = 0; i < 3; ++i) {
    const EventId next = b.appendEvent(i % 2 == 0 ? 1 : 0);
    b.addMessage(prev, next);
    prev = next;
  }
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  const ComputationStats stats = computeStats(vc);
  EXPECT_EQ(stats.width, 1);
  EXPECT_EQ(stats.height, 4);
  EXPECT_DOUBLE_EQ(stats.concurrencyIndex, 0.0);
}

TEST(StatisticsTest, MessagesReduceWidthAndConcurrency) {
  Rng rng(6);
  RandomComputationOptions sparse;
  sparse.processes = 4;
  sparse.eventsPerProcess = 6;
  sparse.messageProbability = 0.0;
  RandomComputationOptions dense = sparse;
  dense.messageProbability = 0.9;
  Rng rng2 = rng.fork();
  const Computation a = randomComputation(sparse, rng);
  const Computation b = randomComputation(dense, rng2);
  const ComputationStats sa = computeStats(VectorClocks(a));
  const ComputationStats sb = computeStats(VectorClocks(b));
  EXPECT_GE(sa.width, sb.width);
  EXPECT_GT(sa.concurrencyIndex, sb.concurrencyIndex);
  EXPECT_LE(sa.height, sb.height);
}

TEST(StatisticsTest, WidthBoundsLatticeLevelWidth) {
  // The widest lattice level cannot exceed the number of antichains of size
  // … simpler sanity: lattice max width ≥ 1 and the poset width bounds the
  // number of processes that can advance independently.
  Rng rng(7);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 4;
  opt.messageProbability = 0.4;
  const Computation c = randomComputation(opt, rng);
  const VectorClocks vc(c);
  const ComputationStats stats = computeStats(vc);
  EXPECT_GE(stats.width, 1);
  EXPECT_LE(stats.width, stats.events - stats.processes);
  EXPECT_GE(stats.height, opt.eventsPerProcess);  // each process is a chain
}

TEST(StatisticsTest, EmptyComputation) {
  ComputationBuilder b(2);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  const ComputationStats stats = computeStats(vc);
  EXPECT_EQ(stats.width, 0);  // no non-initial events
  EXPECT_EQ(stats.height, 0);
  EXPECT_EQ(stats.concurrencyIndex, 0.0);
}

}  // namespace
}  // namespace gpd::analysis
