#include "control/serialize.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "detect/cpdhb.h"
#include "lattice/explore.h"
#include "predicates/random_trace.h"
#include "sim/workloads.h"

namespace gpd::control {
namespace {

using detect::TrueInterval;

std::vector<std::vector<TrueInterval>> intervalsOf(
    const VariableTrace& trace, const std::string& var,
    const std::vector<ProcessId>& procs) {
  std::vector<std::vector<TrueInterval>> out;
  for (ProcessId p : procs) {
    out.push_back(
        detect::trueIntervals(trace, varCompare(p, var, Relop::GreaterEq, 1)));
  }
  return out;
}

// No consistent cut of `comp` has two slots active.
bool mutualExclusionHolds(const Computation& comp, const VariableTrace& trace,
                          const std::string& var,
                          const std::vector<ProcessId>& procs) {
  const VectorClocks clocks(comp);
  for (std::size_t i = 0; i < procs.size(); ++i) {
    for (std::size_t j = i + 1; j < procs.size(); ++j) {
      ConjunctivePredicate both{
          {varCompare(procs[i], var, Relop::GreaterEq, 1),
           varCompare(procs[j], var, Relop::GreaterEq, 1)}};
      if (detect::detectConjunctive(clocks, trace, both).found) return false;
    }
  }
  return true;
}

TEST(ControlTest, SerializesRogueTokenRing) {
  sim::TokenRingOptions opt;
  opt.processes = 4;
  opt.rounds = 2;
  opt.seed = 3;
  opt.rogueProcess = 2;
  const sim::SimResult run = sim::tokenRing(opt);
  const std::vector<ProcessId> procs{0, 1, 2, 3};
  // The uncontrolled trace violates mutual exclusion.
  ASSERT_FALSE(mutualExclusionHolds(*run.computation, *run.trace, "cs", procs));

  const VectorClocks clocks(*run.computation);
  const SerializationResult res =
      serializeIntervals(clocks, intervalsOf(*run.trace, "cs", procs));
  ASSERT_TRUE(res.feasible);
  EXPECT_FALSE(res.addedEdges.empty());
  const VariableTrace controlledTrace = run.trace->rebindTo(*res.controlled);
  EXPECT_TRUE(
      mutualExclusionHolds(*res.controlled, controlledTrace, "cs", procs));
}

TEST(ControlTest, NoEdgesNeededWhenAlreadySerialized) {
  // A clean token ring is already mutually exclusive; control may add
  // arrows (it totally serializes), but must stay feasible and correct.
  sim::TokenRingOptions opt;
  opt.processes = 4;
  opt.rounds = 2;
  opt.seed = 5;
  const sim::SimResult run = sim::tokenRing(opt);
  const std::vector<ProcessId> procs{0, 1, 2, 3};
  const VectorClocks clocks(*run.computation);
  const SerializationResult res =
      serializeIntervals(clocks, intervalsOf(*run.trace, "cs", procs));
  ASSERT_TRUE(res.feasible);
  const VariableTrace controlledTrace = run.trace->rebindTo(*res.controlled);
  EXPECT_TRUE(
      mutualExclusionHolds(*res.controlled, controlledTrace, "cs", procs));
}

TEST(ControlTest, DefinitelyOverlappingIntervalsAreInfeasible) {
  // Both processes are active from their initial event to the end: no
  // synchronization can separate them.
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(1);
  const Computation c = std::move(b).build();
  const VectorClocks clocks(c);
  std::vector<std::vector<TrueInterval>> intervals{
      {TrueInterval{{0, 0}, {0, 1}}}, {TrueInterval{{1, 0}, {1, 1}}}};
  const SerializationResult res = serializeIntervals(clocks, intervals);
  EXPECT_FALSE(res.feasible);
  ASSERT_TRUE(res.conflict.has_value());
}

TEST(ControlTest, ControlledRunsAreASubsetOfOriginalRuns) {
  sim::TokenRingOptions opt;
  opt.processes = 3;
  opt.rounds = 2;
  opt.seed = 7;
  opt.rogueProcess = 1;
  const sim::SimResult run = sim::tokenRing(opt);
  const std::vector<ProcessId> procs{0, 1, 2};
  const VectorClocks clocks(*run.computation);
  const SerializationResult res =
      serializeIntervals(clocks, intervalsOf(*run.trace, "cs", procs));
  ASSERT_TRUE(res.feasible);
  // Control only restricts: every consistent cut of the controlled
  // computation is consistent in the original.
  const VectorClocks controlledClocks(*res.controlled);
  const VectorClocks originalClocks(*run.computation);
  lattice::forEachConsistentCut(controlledClocks, [&](const Cut& cut) {
    EXPECT_TRUE(originalClocks.isConsistent(cut)) << cut.toString();
    return true;
  });
  // Original messages all survive.
  for (const Message& m : run.computation->messages()) {
    EXPECT_NE(std::find(res.controlled->messages().begin(),
                        res.controlled->messages().end(), m),
              res.controlled->messages().end());
  }
}

TEST(ControlTest, RandomIntervalsEitherSerializedOrConflicted) {
  Rng rng(1212);
  int feasibleCount = 0;
  int infeasibleCount = 0;
  for (int trial = 0; trial < 50; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 5;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "a", 0.4, rng);
    const std::vector<ProcessId> procs{0, 1, 2};
    const VectorClocks clocks(c);
    const SerializationResult res =
        serializeIntervals(clocks, intervalsOf(trace, "a", procs));
    if (res.feasible) {
      ++feasibleCount;
      const VariableTrace controlled = trace.rebindTo(*res.controlled);
      EXPECT_TRUE(mutualExclusionHolds(*res.controlled, controlled, "a", procs))
          << "trial " << trial;
    } else {
      ++infeasibleCount;
      if (res.conflict) {
        // The reported pair really is mutually inseparable: each starts
        // causally before the other's end (or is open / starts at ⊥).
        const auto& [x, y] = *res.conflict;
        const bool xOpen = x.hi.index + 1 >= c.eventCount(x.hi.process);
        const bool yOpen = y.hi.index + 1 >= c.eventCount(y.hi.process);
        const bool xBeforeYImpossible =
            xOpen || y.lo.isInitial() ||
            clocks.leq(y.lo, {x.hi.process, x.hi.index + 1});
        const bool yBeforeXImpossible =
            yOpen || x.lo.isInitial() ||
            clocks.leq(x.lo, {y.hi.process, y.hi.index + 1});
        EXPECT_TRUE(xBeforeYImpossible && yBeforeXImpossible)
            << "trial " << trial;
      }
    }
  }
  EXPECT_GT(feasibleCount, 5);
  EXPECT_GT(infeasibleCount, 5);
}

}  // namespace
}  // namespace gpd::control
