// control::Budget shared across pool workers (the satellite-1 regression:
// the counter charges used to be non-atomic read-modify-write and raced the
// moment a parallel kernel shared one budget). Under concurrent charging the
// budget must:
//   * let exactly maxX charges succeed — the over-claim giveback means a
//     racing surplus charge is returned uncounted, never double-counted;
//   * latch exhaustion exactly once, with a single stable StopReason even
//     when two different limits trip from different threads;
//   * keep the amortized deadline polls amortized in *aggregate* (the poll
//     counters are shared), not per worker.
// The TSan CI job (GPD_SANITIZE=thread) runs this suite to prove the fix,
// not just observe it.
#include "control/budget.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace gpd::control {
namespace {

constexpr int kThreads = 8;

// Runs body(t) on kThreads std::threads and joins them.
template <typename Body>
void hammer(const Body& body) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) threads.emplace_back([&body, t] { body(t); });
  for (std::thread& th : threads) th.join();
}

TEST(BudgetConcurrencyTest, ExactlyMaxCutsChargesSucceed) {
  constexpr std::uint64_t kMax = 10000;
  BudgetLimits limits;
  limits.maxCuts = kMax;
  Budget b(limits);
  std::atomic<std::uint64_t> successes{0};
  hammer([&](int) {
    std::uint64_t local = 0;
    for (int i = 0; i < 3000; ++i) {  // 8 × 3000 attempts ≫ kMax
      if (b.chargeCut()) ++local;
    }
    successes.fetch_add(local);
  });
  EXPECT_EQ(successes.load(), kMax);
  // The failing charges were given back: the meter shows work performed.
  EXPECT_EQ(b.progress().cutsVisited, kMax);
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.reason(), StopReason::CutLimit);
  EXPECT_EQ(b.remainingCuts(), 0u);
}

TEST(BudgetConcurrencyTest, ExactlyMaxCombinationsChargesSucceed) {
  constexpr std::uint64_t kMax = 7777;  // not a poll-period multiple
  BudgetLimits limits;
  limits.maxCombinations = kMax;
  Budget b(limits);
  std::atomic<std::uint64_t> successes{0};
  hammer([&](int) {
    std::uint64_t local = 0;
    for (int i = 0; i < 2000; ++i) {
      if (b.chargeCombination()) ++local;
    }
    successes.fetch_add(local);
  });
  EXPECT_EQ(successes.load(), kMax);
  EXPECT_EQ(b.progress().combinationsTried, kMax);
  EXPECT_EQ(b.reason(), StopReason::CombinationLimit);
  EXPECT_EQ(b.remainingCombinations(), 0u);
}

TEST(BudgetConcurrencyTest, TwoLimitsTrippingConcurrentlySingleLatch) {
  BudgetLimits limits;
  limits.maxCuts = 500;
  limits.maxCombinations = 500;
  Budget b(limits);
  // Even threads exhaust cuts, odd threads combinations, racing to latch.
  hammer([&](int t) {
    for (int i = 0; i < 1000; ++i) {
      if (t % 2 == 0) {
        b.chargeCut();
      } else {
        b.chargeCombination();
      }
    }
  });
  EXPECT_TRUE(b.exhausted());
  const StopReason first = b.reason();
  EXPECT_TRUE(first == StopReason::CutLimit ||
              first == StopReason::CombinationLimit);
  // The latch is permanent and the reason stable: later charges of the
  // *other* kind fail without overwriting the first cause.
  EXPECT_FALSE(b.chargeCut());
  EXPECT_FALSE(b.chargeCombination());
  EXPECT_FALSE(b.keepGoing());
  EXPECT_EQ(b.reason(), first);
  EXPECT_LE(b.progress().cutsVisited, 500u);
  EXPECT_LE(b.progress().combinationsTried, 500u);
}

TEST(BudgetConcurrencyTest, ConcurrentFrontierNotesTrackTheTruePeak) {
  Budget b;  // unlimited: peak tracking only
  hammer([&](int t) {
    for (std::uint64_t i = 0; i < 1000; ++i) {
      b.noteFrontierBytes(i * 8 + static_cast<std::uint64_t>(t));
    }
  });
  // The CAS-max loop must land on the true maximum over all threads.
  EXPECT_EQ(b.progress().peakFrontierBytes, 999u * 8 + (kThreads - 1));
}

TEST(BudgetConcurrencyTest, CancellationStopsEveryWorker) {
  CancelToken cancel;
  BudgetLimits limits;
  limits.deadlineMillis = 60000;  // never trips; enables the cancel path
  Budget b(limits, &cancel);
  std::atomic<std::uint64_t> successesAfterCancel{0};
  hammer([&](int t) {
    if (t == 0) cancel.requestCancel();
    // Combination charges observe the token on every charge, so at most a
    // handful of in-flight charges can slip through after the request.
    bool failed = false;
    for (int i = 0; i < 5000; ++i) {
      if (!b.chargeCombination()) {
        failed = true;
      } else if (failed) {
        successesAfterCancel.fetch_add(1);  // fail → success: forbidden
      }
    }
  });
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.reason(), StopReason::Cancelled);
  // Once a worker sees a failed charge, every later charge it makes fails
  // too — exhaustion is monotone per observer.
  EXPECT_EQ(successesAfterCancel.load(), 0u);
}

#ifndef GPD_OBS_DISABLED
TEST(BudgetConcurrencyTest, DeadlineClockReadsStayAmortizedInAggregate) {
  obs::Counter& reads = obs::registry().counter("budget_clock_reads");
  const std::uint64_t before = reads.value();
  BudgetLimits limits;
  limits.deadlineMillis = 60000;  // deadline armed → polls read the clock
  Budget b(limits);
  constexpr std::uint64_t kPerThread = 10000;
  hammer([&](int) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) b.chargeCut();
  });
  const std::uint64_t total = kPerThread * kThreads;
  EXPECT_EQ(b.progress().cutsVisited, total);
  // One clock read at construction plus ~total/64 amortized polls — shared
  // poll counters mean one read per period of aggregate charges, not one
  // per worker per period. Allow 2× slack for torn fetch_add interleavings.
  const std::uint64_t delta = reads.value() - before;
  EXPECT_LE(delta, 1 + 2 * (total / 64));
  EXPECT_GE(delta, 1u);
}
#endif  // GPD_OBS_DISABLED

}  // namespace
}  // namespace gpd::control
