#include "control/budget.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>

namespace gpd::control {
namespace {

TEST(BudgetTest, DefaultBudgetIsUnlimited) {
  Budget b;
  EXPECT_TRUE(b.limits().unlimited());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(b.chargeCut());
    EXPECT_TRUE(b.chargeCombination());
  }
  EXPECT_TRUE(b.keepGoing());
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.reason(), StopReason::None);
  // Progress is still metered even when nothing can trip.
  EXPECT_EQ(b.progress().cutsVisited, 1000u);
  EXPECT_EQ(b.progress().combinationsTried, 1000u);
  EXPECT_EQ(b.remainingCombinations(), UINT64_MAX);
}

TEST(BudgetTest, CutLimitTripsWithoutCountingTheFailingCharge) {
  BudgetLimits limits;
  limits.maxCuts = 5;
  Budget b(limits);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.chargeCut()) << "charge " << i;
  EXPECT_FALSE(b.chargeCut());
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.reason(), StopReason::CutLimit);
  // cutsVisited reports work actually performed, not attempts.
  EXPECT_EQ(b.progress().cutsVisited, 5u);
}

TEST(BudgetTest, CombinationLimitTripsAndTracksRemaining) {
  BudgetLimits limits;
  limits.maxCombinations = 3;
  Budget b(limits);
  EXPECT_EQ(b.remainingCombinations(), 3u);
  EXPECT_TRUE(b.chargeCombination());
  EXPECT_EQ(b.remainingCombinations(), 2u);
  EXPECT_TRUE(b.chargeCombination());
  EXPECT_TRUE(b.chargeCombination());
  EXPECT_EQ(b.remainingCombinations(), 0u);
  EXPECT_FALSE(b.chargeCombination());
  EXPECT_EQ(b.reason(), StopReason::CombinationLimit);
  EXPECT_EQ(b.progress().combinationsTried, 3u);
}

TEST(BudgetTest, ExhaustionLatchesAndFirstCauseWins) {
  BudgetLimits limits;
  limits.maxCuts = 1;
  limits.maxCombinations = 1;
  Budget b(limits);
  EXPECT_TRUE(b.chargeCut());
  EXPECT_FALSE(b.chargeCut());  // trips CutLimit first
  // Every later charge of any kind fails, and the reason stays the first.
  EXPECT_FALSE(b.chargeCombination());
  EXPECT_FALSE(b.chargeCut());
  EXPECT_FALSE(b.keepGoing());
  EXPECT_FALSE(b.noteFrontierBytes(1));
  EXPECT_EQ(b.reason(), StopReason::CutLimit);
  // No work was charged after the latch.
  EXPECT_EQ(b.progress().cutsVisited, 1u);
  EXPECT_EQ(b.progress().combinationsTried, 0u);
}

TEST(BudgetTest, FrontierLimitTracksPeakAndTrips) {
  BudgetLimits limits;
  limits.maxFrontierBytes = 1000;
  Budget b(limits);
  EXPECT_TRUE(b.noteFrontierBytes(100));
  EXPECT_TRUE(b.noteFrontierBytes(900));
  EXPECT_TRUE(b.noteFrontierBytes(200));  // shrinking is fine
  EXPECT_EQ(b.progress().peakFrontierBytes, 900u);
  EXPECT_FALSE(b.noteFrontierBytes(1001));
  EXPECT_EQ(b.reason(), StopReason::FrontierLimit);
  // The over-limit report still registers as the peak (it was observed).
  EXPECT_EQ(b.progress().peakFrontierBytes, 1001u);
}

TEST(BudgetTest, DeadlineTripsOnceElapsed) {
  BudgetLimits limits;
  limits.deadlineMillis = 1;
  Budget b(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The combination poll counter starts at zero, so the very first charge
  // reads the clock and observes the passed deadline immediately.
  EXPECT_FALSE(b.chargeCombination());
  EXPECT_EQ(b.reason(), StopReason::Deadline);
}

TEST(BudgetTest, DeadlineObservedWithinOneCombinationPollPeriod) {
  BudgetLimits limits;
  limits.deadlineMillis = 1;
  Budget b(limits);
  ASSERT_TRUE(b.chargeCombination());  // first charge: deadline not yet due
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // The clock read is amortized (every 16th combination charge), so the
  // passed deadline must be observed within one poll period.
  int charges = 1;
  while (b.chargeCombination()) {
    ASSERT_LT(++charges, 17) << "deadline not observed within a poll period";
  }
  EXPECT_EQ(b.reason(), StopReason::Deadline);
}

TEST(BudgetTest, ZeroLimitsMeanUnlimited) {
  Budget b(BudgetLimits{});  // all fields 0
  EXPECT_TRUE(b.limits().unlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(b.chargeCombination());  // no deadline installed
  EXPECT_FALSE(b.exhausted());
}

TEST(BudgetTest, CancelObservedWithinOnePollPeriod) {
  CancelToken cancel;
  Budget b(BudgetLimits{}, &cancel);
  EXPECT_TRUE(b.chargeCut());
  cancel.requestCancel();
  // chargeCut amortizes its poll every 64 charges: the cancellation must be
  // observed within at most two poll periods of amortized charges.
  int survived = 0;
  while (b.chargeCut()) {
    ++survived;
    ASSERT_LE(survived, 128) << "cancellation never observed";
  }
  EXPECT_EQ(b.reason(), StopReason::Cancelled);
}

TEST(BudgetTest, CancelObservedImmediatelyByCombinationCharge) {
  CancelToken cancel;
  Budget b(BudgetLimits{}, &cancel);
  cancel.requestCancel();
  // Combinations are coarse units: polled on every charge, not amortized.
  EXPECT_FALSE(b.chargeCombination());
  EXPECT_EQ(b.reason(), StopReason::Cancelled);
}

TEST(BudgetTest, CanBoundExplorationReflectsStoppableLimits) {
  EXPECT_FALSE(Budget().canBoundExploration());

  BudgetLimits combosOnly;
  combosOnly.maxCombinations = 10;
  // A combinations-only budget cannot stop a lattice BFS (which charges
  // cuts): the degradation walk must not fall through to it.
  EXPECT_FALSE(Budget(combosOnly).canBoundExploration());

  BudgetLimits deadline;
  deadline.deadlineMillis = 100;
  EXPECT_TRUE(Budget(deadline).canBoundExploration());
  BudgetLimits cuts;
  cuts.maxCuts = 10;
  EXPECT_TRUE(Budget(cuts).canBoundExploration());
  BudgetLimits frontier;
  frontier.maxFrontierBytes = 1 << 20;
  EXPECT_TRUE(Budget(frontier).canBoundExploration());
  CancelToken cancel;
  EXPECT_TRUE(Budget(BudgetLimits{}, &cancel).canBoundExploration());
}

TEST(BudgetTest, StopReasonNames) {
  EXPECT_STREQ(toString(StopReason::None), "none");
  EXPECT_STREQ(toString(StopReason::Deadline), "deadline");
  EXPECT_STREQ(toString(StopReason::CutLimit), "cut-limit");
  EXPECT_STREQ(toString(StopReason::CombinationLimit), "combination-limit");
  EXPECT_STREQ(toString(StopReason::FrontierLimit), "frontier-limit");
  EXPECT_STREQ(toString(StopReason::Cancelled), "cancelled");
}

}  // namespace
}  // namespace gpd::control
