#include "clocks/direct_dependency.h"

#include <gtest/gtest.h>

#include "clocks/vector_clock.h"
#include "computation/random.h"

namespace gpd {
namespace {

TEST(DirectDependencyTest, RecordsOnlyDirectMessageEdges) {
  // p0 → p1 → p2: p2's receive depends directly on p1 only.
  ComputationBuilder b(3);
  const EventId a = b.appendEvent(0);
  const EventId m = b.appendEvent(1);
  const EventId r = b.appendEvent(2);
  b.addMessage(a, m);
  b.addMessage(m, r);
  const Computation c = std::move(b).build();
  const DirectDependencyClocks dd(c);
  EXPECT_EQ(dd.direct(r, 1), 1);   // direct: from p1's event 1
  EXPECT_EQ(dd.direct(r, 0), -1);  // transitive only — not recorded
  EXPECT_EQ(dd.direct(r, 2), 1);   // own component
  // Reconstruction recovers the transitive dependency.
  const auto clock = dd.reconstructClock(r);
  EXPECT_EQ(clock[0], 1);
  EXPECT_EQ(clock[1], 1);
  EXPECT_EQ(clock[2], 1);
}

TEST(DirectDependencyTest, InitialEventsHaveOnlyOwnComponent) {
  ComputationBuilder b(2);
  const Computation c = std::move(b).build();
  const DirectDependencyClocks dd(c);
  EXPECT_EQ(dd.direct({0, 0}, 0), 0);
  EXPECT_EQ(dd.direct({0, 0}, 1), -1);
  EXPECT_EQ(dd.reconstructClock({0, 0}), (std::vector<int>{0, 0}));
}

// The classical equivalence: transitive closure of direct dependencies
// equals the Fidge–Mattern vector clock, for every event of many random
// computations.
TEST(DirectDependencyTest, ReconstructionEqualsVectorClocks) {
  Rng rng(424242);
  for (int trial = 0; trial < 40; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(5));
    opt.eventsPerProcess = 1 + static_cast<int>(rng.index(10));
    opt.messageProbability = rng.real();
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    const DirectDependencyClocks dd(c);
    for (ProcessId p = 0; p < c.processCount(); ++p) {
      for (int i = 0; i < c.eventCount(p); ++i) {
        const EventId e{p, i};
        ASSERT_EQ(dd.reconstructClock(e), vc.clockVector(e))
            << "trial " << trial << " event (" << p << "," << i << ")";
      }
    }
  }
}

TEST(DirectDependencyTest, DirectRowIsAlwaysBelowFullClock) {
  Rng rng(515151);
  RandomComputationOptions opt;
  opt.processes = 4;
  opt.eventsPerProcess = 8;
  opt.messageProbability = 0.6;
  const Computation c = randomComputation(opt, rng);
  const VectorClocks vc(c);
  const DirectDependencyClocks dd(c);
  for (int node = 0; node < c.totalEvents(); ++node) {
    const EventId e = c.event(node);
    for (ProcessId q = 0; q < 4; ++q) {
      EXPECT_LE(dd.direct(e, q), vc.clock(e, q));
    }
  }
}

}  // namespace
}  // namespace gpd
