#include "clocks/sk_compression.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "sim/workloads.h"

namespace gpd {
namespace {

TEST(SkCompressionTest, NoMessagesNoTraffic) {
  ComputationBuilder b(3);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  const SkCompressionStats stats = replaySkCompression(vc);
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_TRUE(stats.exact);
  EXPECT_EQ(stats.savings(), 0.0);
}

// The classical guarantee: FIFO channels ⟹ exact reconstruction. Checked
// over random computations and both FIFO workloads.
TEST(SkCompressionTest, FifoChannelsImplyExactReconstruction) {
  Rng rng(77);
  int fifoCount = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3 + static_cast<int>(rng.index(3));
    opt.eventsPerProcess = 3 + static_cast<int>(rng.index(6));
    opt.messageProbability = 0.6;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    const SkCompressionStats stats = replaySkCompression(vc);
    if (isChannelFifo(c)) {
      ++fifoCount;
      EXPECT_TRUE(stats.exact) << "trial " << trial;
    }
  }
  EXPECT_GT(fifoCount, 5);

  sim::SnapshotBankOptions opt;
  opt.processes = 5;
  opt.seed = 2;
  const sim::SimResult run = sim::snapshotBank(opt);  // FIFO channels
  ASSERT_TRUE(isChannelFifo(*run.computation));
  EXPECT_TRUE(replaySkCompression(VectorClocks(*run.computation)).exact);
}

TEST(SkCompressionTest, StaleComponentCrossingBreaksExactness) {
  // p2 informs p0 of its progress; p0's next two sends to p1 cross in the
  // channel. The second send ships no delta for p2's component, so the
  // receiver, seeing it first, reconstructs a stale value.
  ComputationBuilder b(3);
  const EventId w = b.appendEvent(2);
  const EventId u = b.appendEvent(0);  // receives from p2
  const EventId s1 = b.appendEvent(0);
  const EventId s2 = b.appendEvent(0);
  const EventId r1 = b.appendEvent(1);  // receives s2 first
  const EventId r2 = b.appendEvent(1);  // then s1
  b.addMessage(w, u);
  b.addMessage(s2, r1);
  b.addMessage(s1, r2);
  const Computation c = std::move(b).build();
  ASSERT_FALSE(isChannelFifo(c));
  const VectorClocks vc(c);
  EXPECT_FALSE(replaySkCompression(vc).exact);
}

TEST(SkCompressionTest, SavingsDependOnCommunicationLocality) {
  // Producer–consumer: producers never receive, so successive sends differ
  // only in the sender's own component — SK ships almost nothing.
  sim::ProducerConsumerOptions pc;
  pc.producers = 3;
  pc.consumers = 5;
  pc.itemsPerProducer = 6;
  pc.seed = 4;
  const sim::SimResult local = sim::producerConsumer(pc);
  const SkCompressionStats localStats =
      replaySkCompression(VectorClocks(*local.computation));
  EXPECT_GT(localStats.savings(), 0.6);

  // A token ring is SK's worst case: between two uses of a channel the token
  // visited everyone, so almost every component is fresh again.
  sim::TokenRingOptions ring;
  ring.processes = 8;
  ring.rounds = 2;
  ring.seed = 9;
  const sim::SimResult global = sim::tokenRing(ring);
  const SkCompressionStats ringStats =
      replaySkCompression(VectorClocks(*global.computation));
  EXPECT_LT(ringStats.savings(), localStats.savings());
}

TEST(SkCompressionTest, FirstMessageShipsOnlyNonZeroComponents) {
  // One message early in the run: the delta against the all-zero ledger is
  // just the components the sender has actually advanced.
  ComputationBuilder b(6);
  const EventId s = b.appendEvent(0);
  const EventId r = b.appendEvent(1);
  b.addMessage(s, r);
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  const SkCompressionStats stats = replaySkCompression(vc);
  EXPECT_TRUE(stats.exact);
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.fullComponents, 6u);
  EXPECT_EQ(stats.sentComponents, 1u);  // only the sender's own component
}

}  // namespace
}  // namespace gpd
