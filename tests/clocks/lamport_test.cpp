#include "clocks/lamport.h"

#include <gtest/gtest.h>

#include "clocks/vector_clock.h"
#include "computation/random.h"

namespace gpd {
namespace {

TEST(LamportTest, InitialEventsAreZero) {
  ComputationBuilder b(3);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  const auto clock = lamportClocks(c);
  for (ProcessId p = 0; p < 3; ++p) EXPECT_EQ(clock[c.node({p, 0})], 0);
  EXPECT_EQ(clock[c.node({0, 1})], 1);
}

TEST(LamportTest, MessageRaisesReceiverClock) {
  ComputationBuilder b(2);
  EventId s{};
  for (int i = 0; i < 5; ++i) s = b.appendEvent(0);
  const EventId r = b.appendEvent(1);
  b.addMessage(s, r);
  const Computation c = std::move(b).build();
  const auto clock = lamportClocks(c);
  EXPECT_EQ(clock[c.node(s)], 5);
  EXPECT_EQ(clock[c.node(r)], 6);
}

TEST(LamportTest, ClockConsistentWithCausalOrder) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 4;
    opt.eventsPerProcess = 6;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    const auto clock = lamportClocks(c);
    const VectorClocks vc(c);
    for (int u = 0; u < c.totalEvents(); ++u) {
      for (int v = 0; v < c.totalEvents(); ++v) {
        const EventId e = c.event(u);
        const EventId f = c.event(v);
        if (vc.precedes(e, f) && !e.isInitial()) {
          EXPECT_LT(clock[u], clock[v]);
        }
      }
    }
  }
}

TEST(LamportTest, CannotDecideConcurrency) {
  // Two concurrent events can carry ordered Lamport clocks — the classical
  // weakness that motivates vector clocks.
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(0);
  b.appendEvent(1);
  const Computation c = std::move(b).build();
  const auto clock = lamportClocks(c);
  const VectorClocks vc(c);
  EXPECT_TRUE(vc.concurrent({0, 2}, {1, 1}));
  EXPECT_NE(clock[c.node({0, 2})], clock[c.node({1, 1})]);
}

}  // namespace
}  // namespace gpd
