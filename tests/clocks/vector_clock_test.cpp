#include "clocks/vector_clock.h"

#include <gtest/gtest.h>

#include "computation/random.h"
#include "graph/dag.h"
#include "lattice/explore.h"

namespace gpd {
namespace {

// p0: ⊥ a1 a2 ; p1: ⊥ b1 b2 ; message a1 → b2.
Computation diagonal() {
  ComputationBuilder b(2);
  const EventId a1 = b.appendEvent(0);
  b.appendEvent(0);
  b.appendEvent(1);
  const EventId b2 = b.appendEvent(1);
  b.addMessage(a1, b2);
  return std::move(b).build();
}

TEST(VectorClockTest, ClocksOnDiagonal) {
  const Computation c = diagonal();
  const VectorClocks vc(c);
  EXPECT_EQ(vc.clock({0, 1}, 0), 1);
  EXPECT_EQ(vc.clock({0, 1}, 1), 0);
  EXPECT_EQ(vc.clock({1, 2}, 0), 1);  // saw a1 through the message
  EXPECT_EQ(vc.clock({1, 2}, 1), 2);
  EXPECT_EQ(vc.clock({1, 1}, 0), 0);
}

TEST(VectorClockTest, InitialEventsPrecedeEverything) {
  const Computation c = diagonal();
  const VectorClocks vc(c);
  for (ProcessId p = 0; p < 2; ++p) {
    for (ProcessId q = 0; q < 2; ++q) {
      for (int i = 1; i < c.eventCount(q); ++i) {
        EXPECT_TRUE(vc.leq({p, 0}, {q, i}));
      }
    }
  }
  // Distinct initials are incomparable.
  EXPECT_FALSE(vc.leq({0, 0}, {1, 0}));
  EXPECT_FALSE(vc.leq({1, 0}, {0, 0}));
  EXPECT_TRUE(vc.leq({0, 0}, {0, 0}));
}

TEST(VectorClockTest, LeqMatchesDagReachability) {
  Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(4));
    opt.eventsPerProcess = 1 + static_cast<int>(rng.index(7));
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    const graph::Reachability reach(c.toDag());
    for (int u = 0; u < c.totalEvents(); ++u) {
      for (int v = 0; v < c.totalEvents(); ++v) {
        const EventId e = c.event(u);
        const EventId f = c.event(v);
        const bool expected = (u == v) || reach.reaches(u, v);
        EXPECT_EQ(vc.leq(e, f), expected)
            << "trial " << trial << " e=(" << e.process << "," << e.index
            << ") f=(" << f.process << "," << f.index << ")";
      }
    }
  }
}

TEST(VectorClockTest, PairConsistencyMatchesCutEnumeration) {
  Rng rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    for (int u = 0; u < c.totalEvents(); ++u) {
      for (int v = 0; v < c.totalEvents(); ++v) {
        const EventId e = c.event(u);
        const EventId f = c.event(v);
        const bool viaCut = lattice::possiblyExhaustive(vc, [&](const Cut& cut) {
          return cut.passesThrough(e) && cut.passesThrough(f);
        });
        EXPECT_EQ(vc.pairConsistent(e, f), viaCut) << "trial " << trial;
      }
    }
  }
}

TEST(VectorClockTest, CutConsistencyMatchesMessageClosure) {
  // A prefix-vector cut is consistent iff it is closed under message edges.
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.6;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    // Enumerate all prefix vectors.
    std::vector<int> idx(c.processCount(), 0);
    while (true) {
      const Cut cut{std::vector<int>(idx)};
      bool closed = true;
      for (const Message& m : c.messages()) {
        if (cut.contains(m.receive) && !cut.contains(m.send)) {
          closed = false;
          break;
        }
      }
      EXPECT_EQ(vc.isConsistent(cut), closed) << cut.toString();
      // Advance odometer.
      int p = 0;
      while (p < c.processCount() && idx[p] + 1 >= c.eventCount(p)) {
        idx[p] = 0;
        ++p;
      }
      if (p == c.processCount()) break;
      ++idx[p];
    }
  }
}

TEST(VectorClockTest, EnabledMatchesConsistencyOfSuccessor) {
  Rng rng(19);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 5;
  const Computation c = randomComputation(opt, rng);
  const VectorClocks vc(c);
  lattice::forEachConsistentCut(vc, [&](const Cut& cut) {
    for (ProcessId p = 0; p < c.processCount(); ++p) {
      if (cut.last[p] + 1 >= c.eventCount(p)) continue;
      Cut succ = cut;
      ++succ.last[p];
      EXPECT_EQ(vc.enabled(p, cut), vc.isConsistent(succ));
    }
    return true;
  });
}

TEST(VectorClockTest, LeastCutThroughEventsIsMinimal) {
  const Computation c = diagonal();
  const VectorClocks vc(c);
  // a1 and b1 are pairwise consistent; least cut through both is [1,1].
  const Cut cut = vc.leastConsistentCutThrough({{0, 1}, {1, 1}});
  EXPECT_EQ(cut.last, (std::vector<int>{1, 1}));
}

TEST(VectorClockTest, LeastCutPullsInCausalHistory) {
  const Computation c = diagonal();
  const VectorClocks vc(c);
  // A cut through b2 must include a1 (its message sender).
  const Cut cut = vc.leastConsistentCutThrough({{1, 2}});
  EXPECT_EQ(cut.last, (std::vector<int>{1, 2}));
}

TEST(VectorClockTest, LeastCutRejectsInconsistentEvents) {
  ComputationBuilder b(2);
  const EventId a1 = b.appendEvent(0);
  b.appendEvent(0);
  const EventId b1 = b.appendEvent(1);
  b.addMessage(a1, b1);
  // succ(a1)? No: a1 → b1, so a cut through ⊥₀ and b1 is impossible.
  const Computation c = std::move(b).build();
  const VectorClocks vc(c);
  EXPECT_THROW(vc.leastConsistentCutThrough({{0, 0}, {1, 1}}), CheckFailure);
}

// Observation 1 of the paper: pairwise consistent events (not necessarily
// from all processes) always extend to a consistent cut through all of them.
TEST(VectorClockTest, Observation1OnRandomComputations) {
  Rng rng(23);
  for (int trial = 0; trial < 40; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 4;
    opt.eventsPerProcess = 5;
    opt.messageProbability = 0.5;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    // Sample a few random event pairs/triples; when pairwise consistent, a
    // cut through all must exist.
    for (int s = 0; s < 30; ++s) {
      std::vector<EventId> events;
      const int count = 2 + static_cast<int>(rng.index(2));
      for (int i = 0; i < count; ++i) {
        const ProcessId p = static_cast<ProcessId>(rng.index(4));
        events.push_back({p, static_cast<int>(rng.index(c.eventCount(p)))});
      }
      bool pairwise = true;
      for (std::size_t i = 0; i < events.size() && pairwise; ++i) {
        for (std::size_t j = i + 1; j < events.size(); ++j) {
          if (!vc.pairConsistent(events[i], events[j])) {
            pairwise = false;
            break;
          }
        }
      }
      if (!pairwise) continue;
      const Cut cut = vc.leastConsistentCutThrough(events);  // checks inside
      EXPECT_TRUE(vc.isConsistent(cut));
    }
  }
}

}  // namespace
}  // namespace gpd
