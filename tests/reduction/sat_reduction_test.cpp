#include "reduction/sat_to_computation.h"

#include <gtest/gtest.h>

#include "clocks/vector_clock.h"
#include "detect/singular_cnf.h"
#include "sat/dpll.h"
#include "sat/nonmonotone.h"
#include "util/check.h"

namespace gpd::reduction {
namespace {

using sat::Cnf;
using sat::Lit;

TEST(SimplifyTest, UnitPropagationForcesChain) {
  Cnf cnf;
  cnf.numVars = 3;
  cnf.addClause({{0, true}});
  cnf.addClause({{0, false}, {1, true}});
  cnf.addClause({{1, false}, {2, true}});
  const SimplifiedFormula s = simplifyForGadget(cnf);
  EXPECT_FALSE(s.unsatisfiable);
  EXPECT_TRUE(s.formula.clauses.empty());
  EXPECT_EQ(s.forced, (std::vector<int>{1, 1, 1}));
}

TEST(SimplifyTest, DetectsUnsatCore) {
  Cnf cnf;
  cnf.numVars = 1;
  cnf.addClause({{0, true}});
  cnf.addClause({{0, false}});
  EXPECT_TRUE(simplifyForGadget(cnf).unsatisfiable);
}

TEST(SimplifyTest, RemovesTautologiesAndDuplicates) {
  Cnf cnf;
  cnf.numVars = 2;
  cnf.addClause({{0, true}, {0, false}, {1, true}});  // tautology
  cnf.addClause({{0, true}, {0, true}, {1, true}});   // dedupes to 2-clause
  const SimplifiedFormula s = simplifyForGadget(cnf);
  ASSERT_EQ(s.formula.clauses.size(), 1u);
  EXPECT_EQ(s.formula.clauses[0].size(), 2u);
}

TEST(SatGadgetTest, StructureMatchesFigure3) {
  // Two clauses: (x0 ∨ ¬x1) and (x1 ∨ x2 ∨ ¬x0) — non-monotone.
  Cnf cnf;
  cnf.numVars = 3;
  cnf.addClause({{0, true}, {1, false}});
  cnf.addClause({{1, true}, {2, true}, {0, false}});
  const SatGadget g = buildSatGadget(cnf);
  EXPECT_EQ(g.computation->processCount(), 4);  // two per clause
  EXPECT_TRUE(g.predicate.isSingular());
  EXPECT_TRUE(g.predicate.isKCnf(2));
  EXPECT_EQ(g.predicate.clauses.size(), 2u);
  // Conflicts: x0 (clause 0) vs ¬x0 (clause 1) and x1 (clause 1) vs ¬x1
  // (clause 0) → exactly two arrows.
  EXPECT_EQ(g.computation->messages().size(), 2u);
}

TEST(SatGadgetTest, ConflictingOccurrencesAreExactlyTheInconsistentPairs) {
  Rng rng(246);
  for (int trial = 0; trial < 25; ++trial) {
    const Cnf raw = sat::randomKCnf(4, 4, 3, rng);
    const auto t = sat::toNonMonotone(raw);
    const SimplifiedFormula s = simplifyForGadget(t.formula);
    if (s.unsatisfiable || s.formula.clauses.empty()) continue;
    const SatGadget g = buildSatGadget(s.formula);
    const VectorClocks vc(*g.computation);
    for (std::size_t j1 = 0; j1 < g.occurrenceEvents.size(); ++j1) {
      for (std::size_t j2 = 0; j2 < g.occurrenceEvents.size(); ++j2) {
        if (j1 == j2) continue;
        for (std::size_t i1 = 0; i1 < g.occurrenceEvents[j1].size(); ++i1) {
          for (std::size_t i2 = 0; i2 < g.occurrenceEvents[j2].size(); ++i2) {
            const Lit a = g.occurrenceLits[j1][i1];
            const Lit b = g.occurrenceLits[j2][i2];
            const bool conflicting = a.var == b.var && a.positive != b.positive;
            EXPECT_EQ(!vc.pairConsistent(g.occurrenceEvents[j1][i1],
                                         g.occurrenceEvents[j2][i2]),
                      conflicting)
                << "trial " << trial;
          }
        }
      }
    }
  }
}

TEST(SatGadgetTest, GadgetDetectionMatchesDpllOnNonMonotoneFormulas) {
  Rng rng(135);
  int sat = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Cnf raw =
        sat::randomKCnf(3 + static_cast<int>(rng.index(4)),
                        2 + static_cast<int>(rng.index(8)), 3, rng);
    const auto t = sat::toNonMonotone(raw);
    const SimplifiedFormula s = simplifyForGadget(t.formula);
    if (s.unsatisfiable || s.formula.clauses.empty()) continue;
    // Unsatisfiable gadgets force the full (exponential — Theorem 1!)
    // enumeration; keep the product tractable for a unit test.
    if (s.formula.clauses.size() > 12) continue;
    const SatGadget g = buildSatGadget(s.formula);
    const VectorClocks vc(*g.computation);
    const auto res =
        detect::detectSingularByChainCover(vc, *g.trace, g.predicate);
    // The *simplified* formula alone decides detectability.
    const bool expected = sat::solveDpll(s.formula).has_value();
    ASSERT_EQ(res.found, expected) << "trial " << trial;
    sat += res.found;
    if (res.found) {
      const auto a = g.decode(*res.cut, s.formula.numVars);
      EXPECT_TRUE(satisfies(s.formula, a));
    }
  }
  EXPECT_GT(sat, 0);
}

// The headline Theorem 1 round trip: SAT solved through predicate detection
// agrees with DPLL on random formulas (width ≤ 3, 2-CNF-heavy so that
// unsatisfiable instances stay small — an unsatisfiable gadget must pay the
// full exponential enumeration, which is Theorem 1's point), including the
// satisfying assignment's validity.
TEST(SatViaDetectionTest, MatchesDpllOnRandomFormulas) {
  Rng rng(789);
  int satCount = 0;
  int unsatCount = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const int vars = 3 + static_cast<int>(rng.index(3));
    const int numClauses = 3 + static_cast<int>(rng.index(8));
    Cnf cnf;
    cnf.numVars = vars;
    for (int i = 0; i < numClauses; ++i) {
      const double roll = rng.real();
      const int width = roll < 0.05 ? 1 : roll < 0.75 ? 2 : 3;
      const Cnf one = sat::randomKCnf(vars, 1, width, rng);
      cnf.addClause(one.clauses[0]);
    }
    // Keep the unsatisfiable-case enumeration tractable for a unit test.
    const SimplifiedFormula probe =
        simplifyForGadget(sat::toNonMonotone(cnf).formula);
    if (!probe.unsatisfiable && probe.formula.clauses.size() > 12) continue;
    const auto viaDetection = solveSatViaDetection(cnf);
    const auto viaDpll = sat::solveDpll(cnf);
    ASSERT_EQ(viaDetection.has_value(), viaDpll.has_value())
        << "trial " << trial << ": " << sat::toString(cnf);
    if (viaDetection) {
      ++satCount;
      EXPECT_TRUE(satisfies(cnf, *viaDetection));
    } else {
      ++unsatCount;
    }
  }
  EXPECT_GT(satCount, 5);
  EXPECT_GT(unsatCount, 5);
}

TEST(SatViaDetectionTest, HandlesEdgeFormulas) {
  // Empty formula.
  Cnf empty;
  empty.numVars = 2;
  EXPECT_TRUE(solveSatViaDetection(empty).has_value());
  // Single unit clause.
  Cnf unit;
  unit.numVars = 1;
  unit.addClause({{0, false}});
  const auto a = solveSatViaDetection(unit);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE((*a)[0]);
  // Immediate contradiction.
  Cnf contra;
  contra.numVars = 1;
  contra.addClause({{0, true}});
  contra.addClause({{0, false}});
  EXPECT_FALSE(solveSatViaDetection(contra).has_value());
}

TEST(SatGadgetTest, RejectsMonotoneWideClause) {
  Cnf bad;
  bad.numVars = 3;
  bad.addClause({{0, true}, {1, true}, {2, true}});
  EXPECT_THROW(buildSatGadget(bad), CheckFailure);
}

}  // namespace
}  // namespace gpd::reduction
