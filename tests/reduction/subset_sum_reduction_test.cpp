#include "reduction/subset_sum_to_computation.h"

#include <gtest/gtest.h>

#include "clocks/vector_clock.h"
#include "lattice/explore.h"
#include "sat/subset_sum.h"
#include "util/check.h"
#include "util/rng.h"

namespace gpd::reduction {
namespace {

TEST(SubsetSumGadgetTest, OneEventPerElementNoMessages) {
  const auto g = buildSubsetSumGadget({3, 5, 7}, 8);
  EXPECT_EQ(g.computation->processCount(), 3);
  EXPECT_TRUE(g.computation->messages().empty());
  for (ProcessId p = 0; p < 3; ++p) EXPECT_EQ(g.computation->eventCount(p), 2);
  EXPECT_EQ(g.predicate.relop, Relop::Equal);
  EXPECT_EQ(g.predicate.k, 8);
}

TEST(SubsetSumGadgetTest, LatticeIsThePowerSet) {
  const auto g = buildSubsetSumGadget({1, 2, 4, 8}, 5);
  const VectorClocks vc(*g.computation);
  EXPECT_EQ(lattice::latticeStats(vc).cutCount, 16u);  // 2^4 subsets
}

TEST(SubsetSumGadgetTest, CutSumEqualsSubsetSum) {
  const auto g = buildSubsetSumGadget({3, 5, 7}, 0);
  // Cut including elements 0 and 2 only.
  const Cut cut(std::vector<int>{1, 0, 1});
  EXPECT_EQ(g.predicate.sumAtCut(*g.trace, cut), 10);
  EXPECT_EQ(g.decode(cut), (std::vector<int>{0, 2}));
}

TEST(SubsetSumGadgetTest, RejectsNonPositiveSizes) {
  EXPECT_THROW(buildSubsetSumGadget({1, 0}, 1), CheckFailure);
}

TEST(SubsetSumViaDetectionTest, SimpleInstances) {
  const auto hit = solveSubsetSumViaDetection({3, 5, 7}, 12);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(solveSubsetSumViaDetection({10, 20}, 15).has_value());
  EXPECT_TRUE(solveSubsetSumViaDetection({}, 0).has_value());
  EXPECT_FALSE(solveSubsetSumViaDetection({}, 3).has_value());
}

// Theorem 2 round trip: the detector-as-solver agrees with the DP solver.
TEST(SubsetSumViaDetectionTest, MatchesDpSolverOnRandomInstances) {
  Rng rng(987);
  int hits = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 1 + static_cast<int>(rng.index(9));
    std::vector<std::int64_t> sizes(n);
    for (auto& s : sizes) s = rng.uniform(1, 20);
    const std::int64_t target = rng.uniform(0, 50);
    const auto viaDetection = solveSubsetSumViaDetection(sizes, target);
    const auto viaDp = sat::solveSubsetSum(sizes, target);
    ASSERT_EQ(viaDetection.has_value(), viaDp.has_value()) << "trial " << trial;
    if (viaDetection) {
      ++hits;
      std::int64_t sum = 0;
      for (int i : *viaDetection) sum += sizes[i];
      EXPECT_EQ(sum, target);
    }
  }
  EXPECT_GT(hits, 5);
}

}  // namespace
}  // namespace gpd::reduction
