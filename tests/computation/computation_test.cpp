#include "computation/computation.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace gpd {
namespace {

// p0: ⊥ e1 e2 ; p1: ⊥ f1 ; message e1 -> f1.
Computation tinyComputation() {
  ComputationBuilder b(2);
  const EventId e1 = b.appendEvent(0);
  b.appendEvent(0);
  const EventId f1 = b.appendEvent(1);
  b.addMessage(e1, f1);
  return std::move(b).build();
}

TEST(ComputationTest, CountsIncludeInitialEvents) {
  const Computation c = tinyComputation();
  EXPECT_EQ(c.processCount(), 2);
  EXPECT_EQ(c.eventCount(0), 3);
  EXPECT_EQ(c.eventCount(1), 2);
  EXPECT_EQ(c.totalEvents(), 5);
}

TEST(ComputationTest, NodeNumberingRoundTrips) {
  const Computation c = tinyComputation();
  for (ProcessId p = 0; p < c.processCount(); ++p) {
    for (int i = 0; i < c.eventCount(p); ++i) {
      const EventId e{p, i};
      EXPECT_EQ(c.event(c.node(e)), e);
    }
  }
}

TEST(ComputationTest, KindsDerivedFromMessages) {
  const Computation c = tinyComputation();
  EXPECT_EQ(c.kind({0, 0}), EventKind::Initial);
  EXPECT_EQ(c.kind({0, 1}), EventKind::Send);
  EXPECT_EQ(c.kind({0, 2}), EventKind::Internal);
  EXPECT_EQ(c.kind({1, 1}), EventKind::Receive);
}

TEST(ComputationTest, SendReceiveEventAllowed) {
  // p1's event both receives from p0 and sends to p2.
  ComputationBuilder b(3);
  const EventId s = b.appendEvent(0);
  const EventId mid = b.appendEvent(1);
  const EventId r = b.appendEvent(2);
  b.addMessage(s, mid);
  b.addMessage(mid, r);
  const Computation c = std::move(b).build();
  EXPECT_EQ(c.kind(mid), EventKind::SendReceive);
}

TEST(ComputationTest, MessageEndpointsRecorded) {
  const Computation c = tinyComputation();
  ASSERT_EQ(c.messages().size(), 1u);
  EXPECT_EQ(c.messages()[0].send, (EventId{0, 1}));
  EXPECT_EQ(c.messages()[0].receive, (EventId{1, 1}));
  EXPECT_EQ(c.outgoingMessages({0, 1}).size(), 1u);
  EXPECT_EQ(c.incomingMessages({1, 1}).size(), 1u);
}

TEST(ComputationTest, DagHasProcessAndMessageEdges) {
  const Computation c = tinyComputation();
  const graph::Dag g = c.toDagWithoutInitialEdges();
  // 3 process edges (p0: 2, p1: 1) + 1 message edge.
  EXPECT_EQ(g.edgeCount(), 4);
  EXPECT_TRUE(g.isAcyclic());
}

TEST(ComputationTest, FullDagAddsInitialPrecedence) {
  const Computation c = tinyComputation();
  const graph::Dag g = c.toDag();
  // + ⊥0→f1 and ⊥1→e1.
  EXPECT_EQ(g.edgeCount(), 6);
  const graph::Reachability reach(g);
  EXPECT_TRUE(reach.reaches(c.node({0, 0}), c.node({1, 1})));
  EXPECT_TRUE(reach.reaches(c.node({1, 0}), c.node({0, 1})));
  EXPECT_FALSE(reach.reaches(c.node({1, 0}), c.node({0, 0})));
}

TEST(ComputationBuilderTest, RejectsCausalCycle) {
  ComputationBuilder b(2);
  const EventId a1 = b.appendEvent(0);
  const EventId a2 = b.appendEvent(0);
  const EventId b1 = b.appendEvent(1);
  const EventId b2 = b.appendEvent(1);
  b.addMessage(a2, b1);  // a2 -> b1
  b.addMessage(b2, a1);  // b2 -> a1: cycle a1 < a2 < b1 < b2 < a1
  EXPECT_THROW(std::move(b).build(), CheckFailure);
}

TEST(ComputationBuilderTest, RejectsInitialEventMessages) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  EXPECT_THROW(b.addMessage({0, 0}, {1, 1}), CheckFailure);
}

TEST(ComputationBuilderTest, RejectsIntraProcessMessage) {
  ComputationBuilder b(2);
  const EventId a1 = b.appendEvent(0);
  const EventId a2 = b.appendEvent(0);
  EXPECT_THROW(b.addMessage(a1, a2), CheckFailure);
}

TEST(ComputationBuilderTest, MinimalComputationIsJustInitials) {
  ComputationBuilder b(3);
  const Computation c = std::move(b).build();
  EXPECT_EQ(c.totalEvents(), 3);
  for (ProcessId p = 0; p < 3; ++p) EXPECT_EQ(c.kind({p, 0}), EventKind::Initial);
}

}  // namespace
}  // namespace gpd
