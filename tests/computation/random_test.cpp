#include "computation/random.h"

#include <gtest/gtest.h>

namespace gpd {
namespace {

TEST(RandomComputationTest, RespectsShapeParameters) {
  Rng rng(1);
  RandomComputationOptions opt;
  opt.processes = 5;
  opt.eventsPerProcess = 7;
  const Computation c = randomComputation(opt, rng);
  EXPECT_EQ(c.processCount(), 5);
  for (ProcessId p = 0; p < 5; ++p) EXPECT_EQ(c.eventCount(p), 8);
}

TEST(RandomComputationTest, AlwaysAcyclic) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(5));
    opt.eventsPerProcess = static_cast<int>(rng.index(10));
    opt.messageProbability = rng.real();
    const Computation c = randomComputation(opt, rng);  // build() checks
    EXPECT_TRUE(c.toDagWithoutInitialEdges().isAcyclic());
  }
}

TEST(RandomComputationTest, DenseMessagesStillValid) {
  Rng rng(3);
  RandomComputationOptions opt;
  opt.processes = 4;
  opt.eventsPerProcess = 12;
  opt.messageProbability = 1.0;
  const Computation c = randomComputation(opt, rng);
  EXPECT_GT(c.messages().size(), 0u);
  for (const Message& m : c.messages()) {
    EXPECT_GE(m.send.index, 1);
    EXPECT_GE(m.receive.index, 1);
    EXPECT_NE(m.send.process, m.receive.process);
  }
}

TEST(RandomComputationTest, RestrictiveModelSeparatesSendReceive) {
  Rng rng(4);
  RandomComputationOptions opt;
  opt.processes = 4;
  opt.eventsPerProcess = 15;
  opt.messageProbability = 0.9;
  opt.allowSendReceive = false;
  for (int trial = 0; trial < 20; ++trial) {
    const Computation c = randomComputation(opt, rng);
    for (ProcessId p = 0; p < c.processCount(); ++p) {
      for (int i = 1; i < c.eventCount(p); ++i) {
        EXPECT_NE(c.kind({p, i}), EventKind::SendReceive);
      }
    }
  }
}

TEST(RandomComputationTest, ZeroProbabilityMeansNoMessages) {
  Rng rng(5);
  RandomComputationOptions opt;
  opt.messageProbability = 0.0;
  const Computation c = randomComputation(opt, rng);
  EXPECT_TRUE(c.messages().empty());
}

TEST(RandomComputationTest, DeterministicGivenSeed) {
  RandomComputationOptions opt;
  Rng a(99);
  Rng b(99);
  const Computation c1 = randomComputation(opt, a);
  const Computation c2 = randomComputation(opt, b);
  EXPECT_EQ(c1.messages(), c2.messages());
}

}  // namespace
}  // namespace gpd
