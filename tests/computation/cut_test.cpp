#include "computation/cut.h"

#include <gtest/gtest.h>
#include <unordered_set>

namespace gpd {
namespace {

Computation twoByTwo() {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(0);
  b.appendEvent(1);
  b.appendEvent(1);
  return std::move(b).build();
}

TEST(CutTest, InitialAndFinal) {
  const Computation c = twoByTwo();
  EXPECT_EQ(initialCut(c).last, (std::vector<int>{0, 0}));
  EXPECT_EQ(finalCut(c).last, (std::vector<int>{2, 2}));
  EXPECT_EQ(initialCut(c).level(), 0);
  EXPECT_EQ(finalCut(c).level(), 4);
}

TEST(CutTest, PassesThroughAndContains) {
  const Cut cut(std::vector<int>{1, 2});
  EXPECT_TRUE(cut.passesThrough({0, 1}));
  EXPECT_FALSE(cut.passesThrough({0, 0}));
  EXPECT_TRUE(cut.contains({0, 0}));
  EXPECT_TRUE(cut.contains({0, 1}));
  EXPECT_FALSE(cut.contains({0, 2}));
}

TEST(CutTest, MeetAndJoinAreComponentwise) {
  const Cut a(std::vector<int>{1, 3});
  const Cut b(std::vector<int>{2, 0});
  EXPECT_EQ(meet(a, b).last, (std::vector<int>{1, 0}));
  EXPECT_EQ(join(a, b).last, (std::vector<int>{2, 3}));
}

TEST(CutTest, SubsetOrder) {
  const Cut a(std::vector<int>{1, 1});
  const Cut b(std::vector<int>{2, 1});
  EXPECT_TRUE(a.subsetOf(b));
  EXPECT_FALSE(b.subsetOf(a));
  EXPECT_TRUE(a.subsetOf(a));
  EXPECT_TRUE(meet(a, b).subsetOf(a));
  EXPECT_TRUE(a.subsetOf(join(a, b)));
}

TEST(CutTest, HashSeparatesDistinctCuts) {
  std::unordered_set<Cut> set;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      set.insert(Cut(std::vector<int>{i, j}));
    }
  }
  EXPECT_EQ(set.size(), 25u);
}

TEST(CutTest, ToStringReadable) {
  EXPECT_EQ(Cut(std::vector<int>{0, 3, 1}).toString(), "[0 3 1]");
}

}  // namespace
}  // namespace gpd
