// Reconstruction of the paper's Figure 2 (experiment E2).
//
// The OCR of the paper loses the exact message pattern of Figure 2, so this
// is a faithful reconstruction of its *role*: a 4-process computation with
// one distinguished event per process (e, f, g, h) exhibiting each of the
// relations the figure illustrates — a consistent pair, an inconsistent
// pair, an independent (concurrent) pair and a dependent pair — each
// validated against the first-principles definition (existence of a
// consistent cut passing through both events) by lattice enumeration.
#include <gtest/gtest.h>

#include "clocks/vector_clock.h"
#include "computation/computation.h"
#include "lattice/explore.h"

namespace gpd {
namespace {

struct Figure2 {
  Computation comp;
  EventId e, f, g, h;
  VectorClocks clocks;

  Figure2(Computation c, EventId e_, EventId f_, EventId g_, EventId h_)
      : comp(std::move(c)), e(e_), f(f_), g(g_), h(h_), clocks(comp) {}

  static Figure2 make() {
    ComputationBuilder b(4);
    // p0: ⊥ e a      p1: ⊥ f      p2: ⊥ c g      p3: ⊥ h
    const EventId e = b.appendEvent(0);
    const EventId a = b.appendEvent(0);
    const EventId f = b.appendEvent(1);
    const EventId c = b.appendEvent(2);
    const EventId g = b.appendEvent(2);
    const EventId h = b.appendEvent(3);
    b.addMessage(e, f);  // e → f: dependent yet consistent
    b.addMessage(a, c);  // succ(e) = a → c ≺ g: e and g inconsistent
    b.addMessage(g, h);  // g → h
    return Figure2(std::move(b).build(), e, f, g, h);
  }
};

// First-principles pair consistency: some consistent cut passes through both.
bool consistentByEnumeration(const Figure2& fig, EventId x, EventId y) {
  return lattice::possiblyExhaustive(fig.clocks, [&](const Cut& cut) {
    return cut.passesThrough(x) && cut.passesThrough(y);
  });
}

TEST(Figure2Test, DependentPair) {
  const auto fig = Figure2::make();
  // e → f by message: ordered, hence not independent.
  EXPECT_TRUE(fig.clocks.precedes(fig.e, fig.f));
  EXPECT_FALSE(fig.clocks.concurrent(fig.e, fig.f));
}

TEST(Figure2Test, IndependentPair) {
  const auto fig = Figure2::make();
  // f and h share no causal path.
  EXPECT_TRUE(fig.clocks.concurrent(fig.f, fig.h));
}

TEST(Figure2Test, ConsistentPairDespiteOrdering) {
  const auto fig = Figure2::make();
  // e ≺ f, yet a cut can pass through both (ordered events can still be
  // consistent as long as succ(e) does not precede f).
  EXPECT_TRUE(fig.clocks.pairConsistent(fig.e, fig.f));
  EXPECT_TRUE(consistentByEnumeration(fig, fig.e, fig.f));
}

TEST(Figure2Test, InconsistentPair) {
  const auto fig = Figure2::make();
  // succ(e) = a ≺ g via the a→c message, so no cut passes through e and g.
  EXPECT_FALSE(fig.clocks.pairConsistent(fig.e, fig.g));
  EXPECT_FALSE(consistentByEnumeration(fig, fig.e, fig.g));
}

TEST(Figure2Test, InconsistencyImpliesOrdering) {
  // Paper Sec. 2.2: e, f inconsistent iff succ(e) ≤ f or succ(f) ≤ e; either
  // way the two events are causally ordered. Hence independent events are
  // always consistent.
  const auto fig = Figure2::make();
  const EventId events[] = {fig.e, fig.f, fig.g, fig.h};
  for (const EventId& x : events) {
    for (const EventId& y : events) {
      if (!fig.clocks.pairConsistent(x, y)) {
        EXPECT_TRUE(fig.clocks.leq(x, y) || fig.clocks.leq(y, x));
      }
      if (fig.clocks.concurrent(x, y)) {
        EXPECT_TRUE(fig.clocks.pairConsistent(x, y));
      }
    }
  }
}

TEST(Figure2Test, AllPairsMatchEnumeration) {
  const auto fig = Figure2::make();
  const EventId events[] = {fig.e, fig.f, fig.g, fig.h};
  for (const EventId& x : events) {
    for (const EventId& y : events) {
      EXPECT_EQ(fig.clocks.pairConsistent(x, y),
                consistentByEnumeration(fig, x, y))
          << "x=(" << x.process << "," << x.index << ") y=(" << y.process
          << "," << y.index << ")";
    }
  }
}

}  // namespace
}  // namespace gpd
