#include "computation/reverse.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "clocks/vector_clock.h"
#include "computation/random.h"

namespace gpd {
namespace {

TEST(ReverseTest, EventMappingSelfInverse) {
  ComputationBuilder b(1);
  for (int i = 0; i < 4; ++i) b.appendEvent(0);
  const Computation c = std::move(b).build();  // events 0..4
  for (int i = 1; i <= 4; ++i) {
    const EventId e{0, i};
    const EventId r = reverseEvent(c, e);
    EXPECT_EQ(r.index, 5 - i);
    EXPECT_EQ(reverseEvent(c, r), e);
  }
}

TEST(ReverseTest, InitialEventHasNoImage) {
  ComputationBuilder b(1);
  b.appendEvent(0);
  const Computation c = std::move(b).build();
  EXPECT_THROW(reverseEvent(c, {0, 0}), CheckFailure);
}

TEST(ReverseTest, MessagesSwapDirection) {
  ComputationBuilder b(2);
  const EventId s = b.appendEvent(0);
  b.appendEvent(0);
  const EventId r = b.appendEvent(1);
  b.addMessage(s, r);
  const Computation c = std::move(b).build();
  const Computation rev = reverseComputation(c);
  ASSERT_EQ(rev.messages().size(), 1u);
  // Original send (0,1) of 2 non-initial events → reversed event (0,2);
  // original receive (1,1) of 1 → reversed (1,1).
  EXPECT_EQ(rev.messages()[0].send, (EventId{1, 1}));
  EXPECT_EQ(rev.messages()[0].receive, (EventId{0, 2}));
}

TEST(ReverseTest, DoubleReversalIsIdentity) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 4;
    opt.eventsPerProcess = 5;
    opt.messageProbability = 0.6;
    const Computation c = randomComputation(opt, rng);
    const Computation back = reverseComputation(reverseComputation(c));
    auto key = [](const Message& m) {
      return std::tuple(m.send.process, m.send.index, m.receive.process,
                        m.receive.index);
    };
    auto a = c.messages();
    auto b = back.messages();
    ASSERT_EQ(a.size(), b.size());
    std::sort(a.begin(), a.end(),
              [&](const Message& x, const Message& y) { return key(x) < key(y); });
    std::sort(b.begin(), b.end(),
              [&](const Message& x, const Message& y) { return key(x) < key(y); });
    EXPECT_EQ(a, b);
  }
}

TEST(ReverseTest, CutConsistencyPreserved) {
  Rng rng(9);
  for (int trial = 0; trial < 15; ++trial) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = 4;
    opt.messageProbability = 0.6;
    const Computation c = randomComputation(opt, rng);
    const Computation rev = reverseComputation(c);
    const VectorClocks vc(c);
    const VectorClocks rvc(rev);
    // Every grid point: C consistent ⟺ reverseCut(C) consistent in rev.
    std::vector<int> idx(c.processCount(), 0);
    while (true) {
      const Cut cut{std::vector<int>(idx)};
      EXPECT_EQ(vc.isConsistent(cut), rvc.isConsistent(reverseCut(c, cut)))
          << "trial " << trial << " cut " << cut.toString();
      int p = 0;
      while (p < c.processCount() && idx[p] + 1 >= c.eventCount(p)) {
        idx[p] = 0;
        ++p;
      }
      if (p == c.processCount()) break;
      ++idx[p];
    }
  }
}

TEST(ReverseTest, ReverseCutSelfInverse) {
  ComputationBuilder b(2);
  b.appendEvent(0);
  b.appendEvent(0);
  b.appendEvent(1);
  const Computation c = std::move(b).build();
  const Cut cut(std::vector<int>{1, 0});
  EXPECT_EQ(reverseCut(c, reverseCut(c, cut)), cut);
  // Initial ↔ final.
  EXPECT_EQ(reverseCut(c, initialCut(c)), finalCut(c));
}

}  // namespace
}  // namespace gpd
