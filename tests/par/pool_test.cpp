// gpd::par::Pool — fan-out/join semantics, worker-count clamping, reuse
// across runs, exception propagation to the caller, and GPD_THREADS
// resolution. The pool is the substrate of the parallel kernels' determinism
// contract, so run() must invoke every worker exactly once per call and
// surface worker failures instead of swallowing them.
#include "par/pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace gpd::par {
namespace {

TEST(PoolTest, RunInvokesEveryWorkerExactlyOnce) {
  Pool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  std::vector<std::atomic<int>> hits(4);
  pool.run([&](int w) { hits[static_cast<std::size_t>(w)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(PoolTest, ThreadCountClampsToAtLeastOne) {
  Pool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  Pool negative(-3);
  EXPECT_EQ(negative.threads(), 1);
  std::atomic<int> calls{0};
  pool.run([&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(PoolTest, PoolIsReusableAcrossManyRuns) {
  Pool pool(2);
  std::atomic<int> total{0};
  for (int i = 0; i < 100; ++i) {
    pool.run([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(PoolTest, WorkerExceptionRethrowsOnTheCallingThread) {
  Pool pool(3);
  EXPECT_THROW(pool.run([](int w) {
                 if (w == 1) throw std::runtime_error("worker failure");
               }),
               std::runtime_error);
  // The failed run must not wedge the pool: later runs still fan out.
  std::atomic<int> total{0};
  pool.run([&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 3);
}

TEST(PoolTest, EnvThreadsParsesGpdThreads) {
  const char* saved = std::getenv("GPD_THREADS");
  const std::string restore = saved != nullptr ? saved : "";

  unsetenv("GPD_THREADS");
  EXPECT_EQ(envThreads(), 0);
  setenv("GPD_THREADS", "8", 1);
  EXPECT_EQ(envThreads(), 8);
  setenv("GPD_THREADS", "1", 1);
  EXPECT_EQ(envThreads(), 1);
  // Everything non-positive, non-numeric, or absurd means "no pool".
  setenv("GPD_THREADS", "0", 1);
  EXPECT_EQ(envThreads(), 0);
  setenv("GPD_THREADS", "-2", 1);
  EXPECT_EQ(envThreads(), 0);
  setenv("GPD_THREADS", "abc", 1);
  EXPECT_EQ(envThreads(), 0);
  setenv("GPD_THREADS", "", 1);
  EXPECT_EQ(envThreads(), 0);
  setenv("GPD_THREADS", "4097", 1);
  EXPECT_EQ(envThreads(), 0);

  if (saved != nullptr) {
    setenv("GPD_THREADS", restore.c_str(), 1);
  } else {
    unsetenv("GPD_THREADS");
  }
}

}  // namespace
}  // namespace gpd::par
