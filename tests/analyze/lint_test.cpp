// Trace linter tests: seeded corruptions (FIFO, cycles, races, structural
// faults) must produce line-numbered diagnostics, clean traces must lint
// clean, and over a fuzzed mutation corpus the linter must agree with the
// strict reader — at least one Error ⟺ io::readTrace throws InputError —
// without ever crashing.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "gpd.h"

namespace gpd {
namespace {

analyze::LintResult lint(const std::string& text) {
  std::istringstream is(text);
  return analyze::lintTrace(is, {});
}

bool hasCode(const analyze::LintResult& res, const std::string& code,
             int line = -1) {
  for (const analyze::Diagnostic& d : res.diagnostics) {
    if (d.code == code && (line < 0 || d.line == line)) return true;
  }
  return false;
}

std::string render(const analyze::LintResult& res) {
  std::ostringstream os;
  analyze::renderText(os, "trace", res.diagnostics);
  return os.str();
}

TEST(TraceLint, CleanTraceLintsCleanAndBuilds) {
  const analyze::LintResult res = lint(
      "gpd-trace 1\n"
      "processes 2\n"
      "events 3 3\n"
      "message 0 1 1 1\n"
      "var 0 x 0 1 1\n"
      "var 1 x 0 0 1\n"
      "end\n");
  EXPECT_TRUE(res.ok()) << render(res);
  EXPECT_EQ(analyze::warningCount(res.diagnostics), 0) << render(res);
  ASSERT_NE(res.computation, nullptr);
  ASSERT_NE(res.trace, nullptr);
  EXPECT_EQ(res.computation->processCount(), 2);
  EXPECT_EQ(res.computation->totalEvents(), 6);
  EXPECT_TRUE(res.trace->has(0, "x"));
}

TEST(TraceLint, FifoCrossingIsWarnedWithTheCrossingLine) {
  const analyze::LintResult res = lint(
      "gpd-trace 1\n"
      "processes 2\n"
      "events 3 3\n"
      "message 0 1 1 2\n"
      "message 0 2 1 1\n"
      "end\n");
  // FIFO violations are a discipline warning, not an error: the strict
  // reader accepts this trace and so must the linter.
  EXPECT_TRUE(res.ok()) << render(res);
  EXPECT_TRUE(hasCode(res, "W301", 5)) << render(res);
}

TEST(TraceLint, ConcurrentVariableUpdatesAreARace) {
  const analyze::LintResult res = lint(
      "gpd-trace 1\n"
      "processes 2\n"
      "events 2 2\n"
      "var 0 x 0 1\n"
      "var 1 x 0 1\n"
      "end\n");
  EXPECT_TRUE(res.ok()) << render(res);
  EXPECT_TRUE(hasCode(res, "W401", 5)) << render(res);
}

TEST(TraceLint, OrderedUpdatesAreNotARace) {
  const analyze::LintResult res = lint(
      "gpd-trace 1\n"
      "processes 2\n"
      "events 2 2\n"
      "message 0 1 1 1\n"
      "var 0 x 0 1\n"
      "var 1 x 0 1\n"
      "end\n");
  EXPECT_TRUE(res.ok()) << render(res);
  EXPECT_FALSE(hasCode(res, "W401")) << render(res);
}

TEST(TraceLint, HappenedBeforeCycleNamesAMessageLine) {
  const analyze::LintResult res = lint(
      "gpd-trace 1\n"
      "processes 2\n"
      "events 2 2\n"
      "message 0 1 1 1\n"
      "message 1 1 0 1\n"
      "end\n");
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(hasCode(res, "E201")) << render(res);
  bool lineNumbered = false;
  for (const analyze::Diagnostic& d : res.diagnostics) {
    if (d.code == "E201") lineNumbered = d.line == 4 || d.line == 5;
  }
  EXPECT_TRUE(lineNumbered) << render(res);
  EXPECT_EQ(res.computation, nullptr);
}

TEST(TraceLint, MulticastAndAggregatedReceivesAreWarned) {
  const analyze::LintResult res = lint(
      "gpd-trace 1\n"
      "processes 3\n"
      "events 2 3 2\n"
      "message 0 1 1 1\n"
      "message 0 1 1 2\n"
      "message 1 1 2 1\n"
      "message 1 2 2 1\n"
      "end\n");
  EXPECT_TRUE(res.ok()) << render(res);
  EXPECT_TRUE(hasCode(res, "W302", 4)) << render(res);  // (0,1) sends twice
  EXPECT_TRUE(hasCode(res, "W303", 6)) << render(res);  // (2,1) receives twice
}

TEST(TraceLint, StructuralFaultsRecoverPerLine) {
  // Two independent faults: the strict reader stops at line 4, the linter
  // reports both.
  const analyze::LintResult res = lint(
      "gpd-trace 1\n"
      "processes 2\n"
      "events 2 2\n"
      "message 9 1 1 1\n"
      "message 0 7 1 1\n"
      "end\n");
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(hasCode(res, "E105", 4)) << render(res);
  EXPECT_TRUE(hasCode(res, "E105", 5)) << render(res);
}

TEST(TraceLint, DuplicateMessageAndVariableAreErrors) {
  const analyze::LintResult res = lint(
      "gpd-trace 1\n"
      "processes 2\n"
      "events 2 2\n"
      "message 0 1 1 1\n"
      "message 0 1 1 1\n"
      "var 0 x 0 1\n"
      "var 0 x 0 0\n"
      "end\n");
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(hasCode(res, "E105", 5)) << render(res);
  EXPECT_TRUE(hasCode(res, "E106", 7)) << render(res);
}

TEST(TraceLint, TruncatedAndTrailingContentAreErrors) {
  EXPECT_TRUE(hasCode(lint("gpd-trace 1\nprocesses 2\nevents 1 1\n"), "E108"));
  EXPECT_TRUE(hasCode(
      lint("gpd-trace 1\nprocesses 1\nevents 1\nend\nextra\n"), "E108", 5));
  EXPECT_TRUE(hasCode(lint("not-a-trace\n"), "E101", 1));
  EXPECT_TRUE(hasCode(lint(""), "E101"));
}

TEST(TraceLint, JsonRenderingIsWellFormedEnoughToGrep) {
  const analyze::LintResult res = lint("gpd-trace 2\n");
  std::ostringstream os;
  analyze::renderJson(os, res.diagnostics);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\": \"E101\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos) << json;
}

// ---- fuzzed equivalence with the strict reader ----

const std::vector<std::string>& corpus() {
  static const std::vector<std::string> entries = [] {
    std::vector<std::string> out;
    auto add = [&out](const sim::SimResult& run) {
      std::ostringstream os;
      io::writeTrace(os, *run.computation, *run.trace);
      out.push_back(os.str());
    };
    add(sim::tokenRing({.processes = 4, .rounds = 2, .seed = 21}));
    add(sim::leaderElection({.processes = 4, .seed = 22}));
    add(sim::producerConsumer(
        {.producers = 2, .consumers = 2, .itemsPerProducer = 2, .seed = 23}));
    Rng rng(24);
    for (int i = 0; i < 3; ++i) {
      RandomComputationOptions opt;
      opt.processes = 2 + i;
      opt.eventsPerProcess = 3;
      const Computation comp = randomComputation(opt, rng);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.5, rng);
      std::ostringstream os;
      io::writeTrace(os, comp, trace);
      out.push_back(os.str());
    }
    return out;
  }();
  return entries;
}

bool strictAccepts(const std::string& text) {
  std::istringstream is(text);
  try {
    (void)io::readTrace(is);
    return true;
  } catch (const InputError&) {
    return false;
  }
}

// The central contract: the linter errors exactly on the traces the strict
// reader refuses (so `gpdtool lint` exits 1 precisely on unloadable traces),
// it never throws, and hostile traces always get a line-numbered Error.
void expectLintMatchesStrict(const std::string& text) {
  analyze::LintResult res = [&] {
    std::istringstream is(text);
    return analyze::lintTrace(is, {});
  }();
  const bool accepted = strictAccepts(text);
  EXPECT_EQ(res.ok(), accepted)
      << "strict/lint disagreement on:\n" << text << "\n" << render(res);
  if (!res.ok()) {
    bool lineNumbered = false;
    for (const analyze::Diagnostic& d : res.diagnostics) {
      if (d.severity == analyze::Severity::Error && d.line >= 1) {
        lineNumbered = true;
      }
    }
    EXPECT_TRUE(lineNumbered) << render(res) << "\non:\n" << text;
  } else {
    ASSERT_NE(res.computation, nullptr);
    EXPECT_GE(res.computation->processCount(), 1);
  }
}

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

std::string joinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

class LintFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LintFuzz, AgreesWithStrictReaderUnderMutation) {
  Rng rng(GetParam() * 101 + 5);
  const auto& all = corpus();
  const std::vector<std::string> hostile = {
      "-1", "999999999999", "nan", "0x10", "var", "message", "end", "2",
  };
  for (int i = 0; i < 30; ++i) {
    const std::string& text = all[rng.index(all.size())];
    std::string mutated;
    switch (rng.index(4)) {
      case 0:  // truncation
        mutated = text.substr(0, rng.index(text.size() + 1));
        break;
      case 1: {  // byte flips
        mutated = text;
        const int flips = 1 + static_cast<int>(rng.index(4));
        for (int f = 0; f < flips; ++f) {
          mutated[rng.index(mutated.size())] =
              static_cast<char>(rng.uniform(1, 126));
        }
        break;
      }
      case 2: {  // line-level edits
        auto lines = splitLines(text);
        switch (rng.index(3)) {
          case 0:
            lines.erase(lines.begin() + rng.index(lines.size()));
            break;
          case 1:
            lines.insert(lines.begin() + rng.index(lines.size()),
                         lines[rng.index(lines.size())]);
            break;
          default:
            std::swap(lines[rng.index(lines.size())],
                      lines[rng.index(lines.size())]);
            break;
        }
        mutated = joinLines(lines);
        break;
      }
      default: {  // token injection
        auto lines = splitLines(text);
        std::string& line = lines[rng.index(lines.size())];
        const std::string& token = hostile[rng.index(hostile.size())];
        const std::size_t pos = rng.index(line.size() + 1);
        line = line.substr(0, pos) + " " + token + " " + line.substr(pos);
        mutated = joinLines(lines);
        break;
      }
    }
    expectLintMatchesStrict(mutated);
  }
}

TEST_P(LintFuzz, UnmutatedCorpusLintsClean) {
  for (const std::string& text : corpus()) {
    expectLintMatchesStrict(text);
    EXPECT_TRUE(lint(text).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LintFuzz,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace gpd
