// Planner and classifier tests. The load-bearing property: for singular CNF
// predicates the plan's predicted CPDHB-invocation counts equal, exactly,
// the combinationsTotal the Sec. 3.3 detectors later report — the planner
// is a cost oracle, not an estimate. Plus: routing agreement between
// Detector and the lattice ground truth, Sec. 3.2 precondition agreement
// with detect::isReceiveOrdered/isSendOrdered, and hint correctness.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "../detect/detect_test_util.h"
#include "gpd.h"

namespace gpd {
namespace {

using analyze::Algorithm;
using analyze::AnalysisReport;
using analyze::Hint;
using analyze::Modality;
using analyze::PlanStep;

const PlanStep* findStep(const AnalysisReport& report, Algorithm a) {
  for (const PlanStep& s : report.steps) {
    if (s.algorithm == a) return &s;
  }
  return nullptr;
}

struct Scenario {
  Computation comp;
  VariableTrace trace;
  VectorClocks clocks;

  Scenario(Computation c, const std::function<void(VariableTrace&)>& vars)
      : comp(std::move(c)), trace(comp), clocks(comp) {
    vars(trace);
  }
};

Scenario randomBoolScenario(int processes, int eventsPerProcess, Rng& rng,
                            double density = 0.4) {
  RandomComputationOptions opt;
  opt.processes = processes;
  opt.eventsPerProcess = eventsPerProcess;
  return Scenario(randomComputation(opt, rng), [&](VariableTrace& t) {
    defineRandomBools(t, "b", density, rng);
  });
}

TEST(Plan, AlgorithmNamesMatchDetectorHistory) {
  EXPECT_STREQ(toString(Algorithm::Cpdhb), "cpdhb");
  EXPECT_STREQ(toString(Algorithm::CpdscSpecialCase), "cpdsc-special-case");
  EXPECT_STREQ(toString(Algorithm::SingularChainCover),
               "singular-chain-cover");
  EXPECT_STREQ(toString(Algorithm::SingularProcessEnumeration),
               "singular-process-enumeration");
  EXPECT_STREQ(toString(Algorithm::LatticeEnumeration),
               "lattice-enumeration");
  EXPECT_STREQ(toString(Algorithm::MinCutExtrema), "min-cut-extrema");
  EXPECT_STREQ(toString(Algorithm::Theorem7ExactSum), "theorem-7-exact-sum");
  EXPECT_STREQ(toString(Algorithm::SymmetricExactSumDisjunction),
               "symmetric-exact-sum-disjunction");
  EXPECT_STREQ(toString(Algorithm::DnfDecomposition), "dnf-decomposition");
  EXPECT_STREQ(toString(Algorithm::IntervalDefinitely),
               "interval-definitely");
  EXPECT_STREQ(toString(Algorithm::LatticeDefinitely), "lattice-definitely");
  EXPECT_STREQ(toString(Algorithm::Theorem7Definitely),
               "theorem-7-definitely");
}

TEST(Plan, ConjunctiveRoutesToCpdhbWithOneInvocation) {
  Rng rng(31);
  Scenario s = randomBoolScenario(3, 4, rng);
  const ConjunctivePredicate pred{
      {varTrue(0, "b"), varTrue(1, "b"), varTrue(2, "b")}};

  const AnalysisReport possibly =
      analyze::planConjunctive(s.clocks, s.trace, pred, Modality::Possibly);
  EXPECT_EQ(possibly.chosen().algorithm, Algorithm::Cpdhb);
  EXPECT_EQ(possibly.chosen().predictedCpdhbInvocations, 1U);

  const AnalysisReport definitely =
      analyze::planConjunctive(s.clocks, s.trace, pred, Modality::Definitely);
  EXPECT_EQ(definitely.chosen().algorithm, Algorithm::IntervalDefinitely);
}

TEST(Plan, NonSingularCnfWithSkeletonChoosesSliceFirst) {
  Rng rng(32);
  Scenario s = randomBoolScenario(2, 3, rng);
  // Both clauses host process 0 — not singular; the second clause is
  // single-process, so a regular skeleton exists and slice-first leads the
  // plan, with the unsliced lattice ranked below it.
  CnfPredicate pred;
  pred.clauses.push_back({{0, "b", true}, {1, "b", true}});
  pred.clauses.push_back({{0, "b", false}});
  ASSERT_FALSE(pred.isSingular());

  const AnalysisReport report =
      analyze::planCnf(s.clocks, s.trace, pred, Modality::Possibly);
  EXPECT_EQ(report.chosen().algorithm, Algorithm::SliceFirst);
  EXPECT_TRUE(report.chosen().predictedSublatticeCuts.has_value());
  EXPECT_NE(findStep(report, Algorithm::LatticeEnumeration), nullptr);
  ASSERT_TRUE(report.cnf.has_value());
  EXPECT_FALSE(report.cnf->singular);
  EXPECT_EQ(report.cnf->singleProcessClauses, 1);
  EXPECT_EQ(findStep(report, Algorithm::SingularChainCover), nullptr);
}

TEST(Plan, NonSingularCnfWithoutSkeletonFallsBackToLatticeEnumeration) {
  Rng rng(32);
  Scenario s = randomBoolScenario(2, 3, rng);
  // No single-process clause: slice-first is inapplicable and the plain
  // lattice enumeration is chosen.
  CnfPredicate pred;
  pred.clauses.push_back({{0, "b", true}, {1, "b", true}});
  pred.clauses.push_back({{0, "b", false}, {1, "b", false}});
  ASSERT_FALSE(pred.isSingular());

  const AnalysisReport report =
      analyze::planCnf(s.clocks, s.trace, pred, Modality::Possibly);
  EXPECT_EQ(report.chosen().algorithm, Algorithm::LatticeEnumeration);
  ASSERT_TRUE(report.cnf.has_value());
  EXPECT_EQ(report.cnf->singleProcessClauses, 0);
  const PlanStep* sliceStep = findStep(report, Algorithm::SliceFirst);
  ASSERT_NE(sliceStep, nullptr);
  EXPECT_FALSE(sliceStep->applicable);
}

// The acceptance criterion: `plan` predicts the exact combinationsTotal the
// Sec. 3.3 detectors report, for both enumeration orders, over random
// computations of every ordering discipline.
TEST(Plan, PredictsExactCombinationsTotalForSingularCnf) {
  Rng rng(33);
  const OrderingDiscipline disciplines[] = {OrderingDiscipline::None,
                                            OrderingDiscipline::ReceiveOrdered,
                                            OrderingDiscipline::SendOrdered};
  int chainCoverChosen = 0;
  for (int iter = 0; iter < 60; ++iter) {
    GroupedComputationOptions opt;
    opt.groups = 2 + static_cast<int>(rng.index(2));
    opt.groupSize = 2;
    opt.eventsPerProcess = 3;
    opt.discipline = disciplines[rng.index(3)];
    Scenario s(randomGroupedComputation(opt, rng), [&](VariableTrace& t) {
      defineRandomBools(t, "b", 0.5, rng);
    });
    const CnfPredicate pred = detect::testing::randomSingularKCnf(
        opt.groups, opt.groupSize, "b", rng);

    const AnalysisReport report =
        analyze::planCnf(s.clocks, s.trace, pred, Modality::Possibly);

    const PlanStep* chain = findStep(report, Algorithm::SingularChainCover);
    const PlanStep* proc =
        findStep(report, Algorithm::SingularProcessEnumeration);
    ASSERT_NE(chain, nullptr);
    ASSERT_NE(proc, nullptr);
    ASSERT_TRUE(chain->predictedCpdhbInvocations.has_value());
    ASSERT_TRUE(proc->predictedCpdhbInvocations.has_value());

    const auto byChain =
        detect::detectSingularByChainCover(s.clocks, s.trace, pred);
    const auto byProc =
        detect::detectSingularByProcessEnumeration(s.clocks, s.trace, pred);
    EXPECT_EQ(*chain->predictedCpdhbInvocations, byChain.combinationsTotal)
        << "iter " << iter;
    EXPECT_EQ(*proc->predictedCpdhbInvocations, byProc.combinationsTotal)
        << "iter " << iter;
    // Dilworth: a chain cover never needs more chains than the per-process
    // partition, so the chain-cover step always ranks at or below.
    EXPECT_LE(*chain->predictedCpdhbInvocations,
              *proc->predictedCpdhbInvocations);

    // Sec. 3.2 preconditions agree with the detection layer, and so does the
    // special-case step's applicability.
    const detect::Groups groups = detect::groupsOfSingularCnf(pred);
    ASSERT_TRUE(report.cnf.has_value());
    EXPECT_EQ(report.cnf->receiveOrdered,
              detect::isReceiveOrdered(s.clocks, groups));
    EXPECT_EQ(report.cnf->sendOrdered,
              detect::isSendOrdered(s.clocks, groups));
    const PlanStep* special = findStep(report, Algorithm::CpdscSpecialCase);
    ASSERT_NE(special, nullptr);
    EXPECT_EQ(special->applicable,
              report.cnf->receiveOrdered || report.cnf->sendOrdered);
    if (special->applicable) {
      EXPECT_TRUE(detect::detectSingularSpecialCase(s.clocks, s.trace, pred)
                      .applicable());
      EXPECT_EQ(report.chosen().algorithm, Algorithm::CpdscSpecialCase);
    } else {
      EXPECT_EQ(report.chosen().algorithm, Algorithm::SingularChainCover);
      ++chainCoverChosen;
    }

    // End to end: the Detector executes the chosen step and agrees with the
    // lattice ground truth.
    detect::Detector detector(s.trace);
    const std::optional<Cut> cut = detector.possibly(pred);
    EXPECT_EQ(detector.lastAlgorithm(),
              toString(report.chosen().algorithm));
    EXPECT_EQ(cut.has_value(),
              detect::testing::latticePossiblyCnf(detector.clocks(), s.trace,
                                                  pred));
    if (cut) {
      EXPECT_TRUE(pred.holdsAtCut(s.trace, *cut));
    }
  }
  // The sweep must actually exercise the chain-cover path.
  EXPECT_GT(chainCoverChosen, 0);
}

TEST(Plan, SumRoutingFollowsTheoremPreconditions) {
  Rng rng(34);
  RandomComputationOptions opt;
  opt.processes = 3;
  opt.eventsPerProcess = 3;
  Scenario bools(randomComputation(opt, rng), [&](VariableTrace& t) {
    defineRandomBools(t, "x", 0.5, rng);
  });
  Scenario jumps(randomComputation(opt, rng), [&](VariableTrace& t) {
    defineRandomCounters(t, "c", 0, 2, rng);
  });

  const SumPredicate inequality{
      {{0, "x"}, {1, "x"}, {2, "x"}}, Relop::GreaterEq, 2};
  const AnalysisReport ineqReport =
      analyze::planSum(bools.clocks, bools.trace, inequality,
                       Modality::Possibly);
  EXPECT_EQ(ineqReport.chosen().algorithm, Algorithm::MinCutExtrema);

  const SumPredicate smallDelta{
      {{0, "x"}, {1, "x"}, {2, "x"}}, Relop::Equal, 2};
  ASSERT_LE(smallDelta.eventDeltaBound(bools.trace), 1);
  EXPECT_EQ(analyze::planSum(bools.clocks, bools.trace, smallDelta,
                             Modality::Possibly)
                .chosen()
                .algorithm,
            Algorithm::Theorem7ExactSum);
  EXPECT_EQ(analyze::planSum(bools.clocks, bools.trace, smallDelta,
                             Modality::Definitely)
                .chosen()
                .algorithm,
            Algorithm::Theorem7Definitely);

  const SumPredicate bigDelta{{{0, "c"}, {1, "c"}, {2, "c"}}, Relop::Equal, 1};
  if (bigDelta.eventDeltaBound(jumps.trace) > 1) {
    const AnalysisReport big = analyze::planSum(
        jumps.clocks, jumps.trace, bigDelta, Modality::Possibly);
    EXPECT_EQ(big.chosen().algorithm, Algorithm::LatticeEnumeration);
    const PlanStep* thm7 = findStep(big, Algorithm::Theorem7ExactSum);
    ASSERT_NE(thm7, nullptr);
    EXPECT_FALSE(thm7->applicable);
  }
}

// definitely(Σ = K) with |ΔS| > 1 used to trip an internal check; it must
// now route to the exhaustive lattice algorithm and agree with ground truth.
TEST(Plan, DefinitelyExactSumWithLargeDeltaUsesLattice) {
  Rng rng(35);
  for (int iter = 0; iter < 10; ++iter) {
    RandomComputationOptions opt;
    opt.processes = 2 + static_cast<int>(rng.index(2));
    opt.eventsPerProcess = 3;
    Scenario s(randomComputation(opt, rng), [&](VariableTrace& t) {
      defineRandomCounters(t, "c", 0, 2, rng);
    });
    SumPredicate pred;
    for (int p = 0; p < opt.processes; ++p) pred.terms.push_back({p, "c"});
    pred.relop = Relop::Equal;
    pred.k = 2;
    if (pred.eventDeltaBound(s.trace) <= 1) continue;

    const AnalysisReport report = analyze::planSum(
        s.clocks, s.trace, pred, Modality::Definitely);
    EXPECT_EQ(report.chosen().algorithm, Algorithm::LatticeDefinitely);

    detect::Detector detector(s.trace);
    const bool got = detector.definitely(pred);
    EXPECT_EQ(detector.lastAlgorithm(), "lattice-definitely");
    const bool truth = lattice::definitelyExhaustive(
        detector.clocks(),
        [&](const Cut& cut) { return pred.holdsAtCut(s.trace, cut); });
    EXPECT_EQ(got, truth) << "iter " << iter;
  }
}

TEST(Plan, SymmetricAndExpressionPlans) {
  Rng rng(36);
  Scenario s = randomBoolScenario(2, 3, rng);

  const SymmetricPredicate sym =
      exclusiveOr({{0, "b"}, {1, "b"}});
  const AnalysisReport symReport =
      analyze::planSymmetric(s.clocks, s.trace, sym, Modality::Possibly);
  EXPECT_EQ(symReport.chosen().algorithm,
            Algorithm::SymmetricExactSumDisjunction);

  const BoolExprPtr expr = BoolExpr::disjunction(
      {BoolExpr::conjunction({BoolExpr::var(0, "b"), BoolExpr::var(1, "b")}),
       BoolExpr::negate(BoolExpr::var(0, "b"))});
  const AnalysisReport exprReport =
      analyze::planExpression(s.clocks, s.trace, *expr, Modality::Possibly);
  EXPECT_EQ(exprReport.chosen().algorithm, Algorithm::DnfDecomposition);
  ASSERT_TRUE(exprReport.chosen().predictedCpdhbInvocations.has_value());
  EXPECT_EQ(*exprReport.chosen().predictedCpdhbInvocations,
            toDnf(*expr).size());
}

TEST(Classify, StabilityAndLinearityHints) {
  // One process, two non-initial events; x rises monotonically → stable,
  // and conjunctive predicates are linear by construction.
  ComputationBuilder rise(1);
  rise.appendEvent(0);
  rise.appendEvent(0);
  Scenario monotone(std::move(rise).build(), [](VariableTrace& t) {
    t.define(0, "x", {0, 1, 1});
  });
  CnfPredicate pred;
  pred.clauses.push_back({{0, "x", true}});
  const auto stableClass =
      analyze::classifyCnf(monotone.clocks, monotone.trace, pred);
  EXPECT_TRUE(stableClass.conjunctive);
  EXPECT_EQ(stableClass.stable, Hint::Yes);
  EXPECT_EQ(stableClass.linear, Hint::Yes);

  ComputationBuilder dip(1);
  dip.appendEvent(0);
  dip.appendEvent(0);
  Scenario pulse(std::move(dip).build(), [](VariableTrace& t) {
    t.define(0, "x", {0, 1, 0});
  });
  const auto pulseClass =
      analyze::classifyCnf(pulse.clocks, pulse.trace, pred);
  EXPECT_EQ(pulseClass.stable, Hint::No);

  // With the lattice budget zeroed (the Detector's routing configuration)
  // the hints stay Unknown.
  analyze::ClassifyOptions noBudget;
  noBudget.latticeCutLimit = 0;
  const auto capped =
      analyze::classifyCnf(pulse.clocks, pulse.trace, pred, noBudget);
  EXPECT_EQ(capped.stable, Hint::Unknown);
}

TEST(Plan, RenderersIncludeChosenStepAndBounds) {
  Rng rng(37);
  GroupedComputationOptions opt;
  opt.groups = 2;
  opt.groupSize = 2;
  opt.eventsPerProcess = 3;
  Scenario s(randomGroupedComputation(opt, rng), [&](VariableTrace& t) {
    defineRandomBools(t, "b", 0.5, rng);
  });
  const CnfPredicate pred =
      detect::testing::randomSingularKCnf(2, 2, "b", rng);
  const AnalysisReport report =
      analyze::planCnf(s.clocks, s.trace, pred, Modality::Possibly);

  std::ostringstream text;
  analyze::renderPlanText(text, report);
  EXPECT_NE(text.str().find("[chosen]"), std::string::npos) << text.str();
  EXPECT_NE(text.str().find(toString(report.chosen().algorithm)),
            std::string::npos);

  std::ostringstream json;
  analyze::renderPlanJson(json, report);
  EXPECT_NE(json.str().find("\"chosen\": true"), std::string::npos)
      << json.str();
  EXPECT_NE(json.str().find("\"algorithm\""), std::string::npos);
}

}  // namespace
}  // namespace gpd
