#include "srclint/checks.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace gpd::srclint {

namespace {

using analyze::Diagnostic;
using analyze::Severity;

// ---------------------------------------------------------------------------
// Shared vocabulary
// ---------------------------------------------------------------------------

// Direct Budget/CancelToken charge or poll calls (control/budget.h).
const std::set<std::string>& chargeCalls() {
  static const std::set<std::string> s = {
      "chargeCut", "chargeCombination", "keepGoing", "noteFrontierBytes",
      "cancelRequested", "exhausted",
  };
  return s;
}

// Enumeration/advance kernels: calls that expand a super-polynomial search
// space one step (or run a whole unbudgeted search). A loop around any of
// these must charge a budget or poll a cancel token (gpd-budget-charge).
const std::set<std::string>& kernelCalls() {
  static const std::set<std::string> s = {
      // lattice BFS expansion and the unbudgeted exploration wrappers
      "expand", "exploreConsistentCuts", "forEachConsistentCut",
      "findSatisfyingCut", "possiblyExhaustive", "definitelyExhaustive",
      "latticeStats",
      // CPDHB scan — one invocation per enumeration combination (Sec. 3.3)
      "findConsistentSelection", "findConsistentSelectionImpl",
      // slicing kernels: the per-event linear-detector fixpoint and the
      // whole-slice builders (a loop around any of these walks the event
      // set or the sublattice and must stay budget-stoppable)
      "detectLinearFrom", "computeSlice", "countSatisfyingCuts",
      // DNF expansion (distribution is exponential in the expression)
      "toDnf", "dnfOf", "mergeTerms",
      // whole-search solvers
      "solveDpll", "solveSubsetSum",
  };
  return s;
}

// Directories whose loops the budget-charge check gates.
bool inBudgetedDir(const std::string& relPath) {
  for (const char* dir :
       {"src/lattice/", "src/detect/", "src/sat/", "src/predicates/"}) {
    if (relPath.find(dir) != std::string::npos) return true;
  }
  return false;
}

bool inClockSanctionedDir(const std::string& relPath) {
  return relPath.find("src/control/") != std::string::npos ||
         relPath.find("src/obs/") != std::string::npos;
}

Finding makeFinding(const FileModel& file, int line, const char* check,
                    std::string message) {
  Finding f;
  f.file = file.relPath;
  f.diag.severity = Severity::Error;
  f.diag.code = check;
  f.diag.line = line;
  f.diag.message = std::move(message);
  return f;
}

// ---------------------------------------------------------------------------
// gpd-budget-charge
// ---------------------------------------------------------------------------

std::vector<Finding> checkBudgetCharge(const FileModel& file,
                                       const Context& ctx) {
  std::vector<Finding> out;
  if (!inBudgetedDir(file.relPath)) return out;
  for (const Loop& loop : file.loops) {
    bool charges = false;
    const Call* kernel = nullptr;
    for (const Call* c : file.callsIn(loop.body)) {
      if (chargeCalls().count(c->name) != 0 ||
          ctx.chargingFunctions.count(c->name) != 0) {
        charges = true;
        break;
      }
      if (kernel == nullptr && kernelCalls().count(c->name) != 0) {
        kernel = c;
      }
    }
    if (charges || kernel == nullptr) continue;
    out.push_back(makeFinding(
        file, loop.line, "gpd-budget-charge",
        "loop calls enumeration kernel '" + kernel->name +
            "' but neither the loop body nor its callee chain charges a "
            "control::Budget or polls a CancelToken; thread a Budget through "
            "(chargeCut/chargeCombination/keepGoing) so the anytime contract "
            "(DESIGN.md §8) can stop this scan"));
  }
  return out;
}

// ---------------------------------------------------------------------------
// gpd-clock-discipline
// ---------------------------------------------------------------------------

std::vector<Finding> checkClockDiscipline(const FileModel& file,
                                          const Context&) {
  std::vector<Finding> out;
  if (inClockSanctionedDir(file.relPath)) return out;
  const std::vector<Tok>& toks = file.toks;
  for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident) continue;
    const std::string& name = toks[i].text;
    if (name != "steady_clock" && name != "system_clock" &&
        name != "high_resolution_clock") {
      continue;
    }
    if (toks[i + 1].text != "::" || toks[i + 2].text != "now" ||
        toks[i + 3].text != "(") {
      continue;
    }
    out.push_back(makeFinding(
        file, toks[i].line, "gpd-clock-discipline",
        "direct " + name +
            "::now() outside src/control and src/obs; hot paths must read "
            "time through util/stopwatch.h steadyNowNanos() consumers "
            "(obs spans, Budget's amortized polls) so clock reads stay "
            "amortized (the A9 contract)"));
  }
  return out;
}

// ---------------------------------------------------------------------------
// gpd-span-raii
// ---------------------------------------------------------------------------

// A statement-initial `gpd::obs::Span("x");` (or obs::Span / Span /
// NullSpan) constructs a temporary that records a zero-length span and
// closes immediately — the result must bind to a named local, which is what
// GPD_TRACE_SPAN / GPD_TRACE_SPAN_NAMED do.
std::vector<Finding> checkSpanRaii(const FileModel& file, const Context&) {
  std::vector<Finding> out;
  const std::vector<Tok>& toks = file.toks;
  const std::size_t n = toks.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Statement start: beginning of file or after ; { }.
    if (i != 0) {
      const Tok& prev = toks[i - 1];
      if (!(prev.kind == TokKind::Punct &&
            (prev.text == ";" || prev.text == "{" || prev.text == "}"))) {
        continue;
      }
    }
    // Optional leading '::', then an (ident '::')* chain ending in
    // Span/NullSpan immediately followed by '('.
    std::size_t j = i;
    if (toks[j].kind == TokKind::Punct && toks[j].text == "::") ++j;
    if (j >= n || toks[j].kind != TokKind::Ident) continue;
    std::size_t last = j;
    while (last + 1 < n && toks[last + 1].text == "::" &&
           last + 2 < n && toks[last + 2].kind == TokKind::Ident) {
      last += 2;
    }
    const std::string& name = toks[last].text;
    if (name != "Span" && name != "NullSpan") continue;
    if (last + 1 >= n || toks[last + 1].text != "(") continue;
    const auto it = file.match.find(last + 1);
    if (it == file.match.end()) continue;
    const std::size_t closeParen = it->second;
    if (closeParen + 1 >= n || toks[closeParen + 1].text != ";") continue;
    out.push_back(makeFinding(
        file, toks[last].line, "gpd-span-raii",
        "obs::" + name +
            " constructed as a discarded temporary — it destructs at the "
            "';' and records a zero-length span; bind it to a named local "
            "(use GPD_TRACE_SPAN / GPD_TRACE_SPAN_NAMED) so the span covers "
            "the scope"));
  }
  return out;
}

// ---------------------------------------------------------------------------
// gpd-pool-capture
// ---------------------------------------------------------------------------

bool isKeywordName(const std::string& s);

// Variables declared std::atomic<...> (or mutex types) inside `range`.
void scanDecls(const FileModel& file, const TokRange& range,
               std::set<std::string>* atomics, std::set<std::string>* plain) {
  const std::vector<Tok>& toks = file.toks;
  for (std::size_t i = range.begin; i + 1 < range.end; ++i) {
    if (toks[i].kind != TokKind::Ident) continue;
    if (toks[i].text == "atomic" || toks[i].text == "atomic_bool" ||
        toks[i].text == "atomic_int" || toks[i].text == "atomic_uint64_t") {
      // std::atomic<T> name  — find the identifier after the closing '>'.
      std::size_t j = i + 1;
      if (j < range.end && toks[j].text == "<") {
        int depth = 0;
        while (j < range.end) {
          if (toks[j].text == "<") ++depth;
          if (toks[j].text == ">") {
            --depth;
            if (depth == 0) break;
          }
          if (toks[j].text == ">>") {
            depth -= 2;
            if (depth <= 0) break;
          }
          ++j;
        }
        ++j;
      }
      if (j < range.end && toks[j].kind == TokKind::Ident) {
        atomics->insert(toks[j].text);
      }
      continue;
    }
    // Plain declaration heuristic: ident ident followed by = ; { ( — the
    // second identifier is a declared name (covers `std::uint64_t count`,
    // `int i`, `std::vector<Cut> next` via the '>' branch below).
    const bool typePrev = toks[i].kind == TokKind::Ident ||
                          toks[i].text == ">" || toks[i].text == "&" ||
                          toks[i].text == "*";
    if (!typePrev) continue;
    const Tok& nameTok = toks[i + 1];
    if (nameTok.kind != TokKind::Ident || isKeywordName(nameTok.text)) {
      continue;
    }
    if (i + 2 < range.end) {
      const std::string& after = toks[i + 2].text;
      if (after == "=" || after == ";" || after == "{" || after == "(") {
        plain->insert(nameTok.text);
      }
    }
  }
}

bool isKeywordName(const std::string& s) {
  static const std::set<std::string> kw = {
      "if", "for", "while", "return", "else", "break", "continue", "const",
      "auto", "case", "switch", "do", "new", "delete", "sizeof", "true",
      "false", "nullptr", "this", "operator", "throw", "catch", "try",
  };
  return kw.count(s) != 0;
}

// Does `range` contain a lock-guard declaration before token index `until`?
bool lockHeldBefore(const FileModel& file, const TokRange& range,
                    std::size_t until) {
  const std::vector<Tok>& toks = file.toks;
  for (std::size_t i = range.begin; i < until && i < range.end; ++i) {
    if (toks[i].kind != TokKind::Ident) continue;
    const std::string& t = toks[i].text;
    if (t == "lock_guard" || t == "unique_lock" || t == "scoped_lock" ||
        t == "shared_lock") {
      return true;
    }
  }
  return false;
}

std::vector<Finding> checkPoolCapture(const FileModel& file, const Context&) {
  std::vector<Finding> out;
  const std::vector<Tok>& toks = file.toks;
  for (const Call& call : file.calls) {
    if (call.name != "run" || call.receiver.empty()) continue;
    // Receiver must look like a par::Pool: name contains "pool" (pool,
    // pool_, workerPool, ...), case-insensitive.
    std::string lower = call.receiver;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower.find("pool") == std::string::npos) continue;
    // Lambdas passed in the argument list.
    for (const Lambda& lam : file.lambdas) {
      if (lam.full.begin < call.argsBegin || lam.full.end > call.argsEnd + 1) {
        continue;
      }
      // Atomic / plain declarations visible to the lambda: scan the
      // enclosing function's body up to the lambda.
      const FnDef* fn = file.enclosingFunction(call.tok);
      std::set<std::string> atomics;
      std::set<std::string> enclosingPlain;
      if (fn != nullptr) {
        TokRange before{fn->body.begin, lam.full.begin};
        scanDecls(file, before, &atomics, &enclosingPlain);
      }
      // Locals declared inside the lambda (including its parameters).
      std::set<std::string> locals(lam.params.begin(), lam.params.end());
      {
        std::set<std::string> lamAtomics;
        scanDecls(file, lam.body, &lamAtomics, &locals);
        locals.insert(lamAtomics.begin(), lamAtomics.end());
      }
      const std::string workerParam =
          lam.params.empty() ? std::string() : lam.params.front();
      // Mutations of by-ref captured, non-atomic, visible-declared names.
      for (std::size_t i = lam.body.begin; i < lam.body.end; ++i) {
        if (toks[i].kind != TokKind::Ident) continue;
        // Member accesses mutate through the object before the '.'/'->';
        // that object, not the member name, is what capture rules govern.
        if (i > lam.body.begin &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
          continue;
        }
        const std::string& name = toks[i].text;
        if (locals.count(name) != 0 || atomics.count(name) != 0) continue;
        const bool byRef = lam.capturesAllByRef
                               ? lam.valueCaptures.count(name) == 0
                               : lam.refCaptures.count(name) != 0;
        if (!byRef) continue;
        if (enclosingPlain.count(name) == 0) continue;  // unknown: skip
        // Skip subscripted access indexed by the worker parameter
        // (per-worker slots are the sanctioned pattern).
        if (i + 1 < lam.body.end && toks[i + 1].text == "[") {
          const auto it = file.match.find(i + 1);
          bool byWorker = false;
          if (it != file.match.end() && !workerParam.empty()) {
            for (std::size_t j = i + 2; j < it->second; ++j) {
              if (toks[j].kind == TokKind::Ident &&
                  toks[j].text == workerParam) {
                byWorker = true;
                break;
              }
            }
          }
          if (byWorker) continue;
          // Mutation through a non-worker subscript: check the operator
          // after the closing ']'.
          if (it == file.match.end()) continue;
          const std::size_t after = it->second + 1;
          if (after >= lam.body.end) continue;
          const std::string& op = toks[after].text;
          if (op != "=" && op != "+=" && op != "-=" && op != "*=" &&
              op != "/=" && op != "|=" && op != "&=" && op != "^=" &&
              op != "++" && op != "--") {
            continue;
          }
          if (lockHeldBefore(file, lam.body, i)) continue;
          out.push_back(makeFinding(
              file, toks[i].line, "gpd-pool-capture",
              "'" + name + "' is captured by reference and mutated ('" + op +
                  "') inside a lambda passed to par::Pool::run without "
                  "atomics or a lock, and the subscript does not involve "
                  "the worker index — concurrent workers race (the PR 5 "
                  "bug class); use std::atomic, a per-worker slot, or a "
                  "mutex"));
          continue;
        }
        // Plain mutation: prefix ++/--, or name followed by a mutating op.
        const bool prefixMut =
            i > lam.body.begin && (toks[i - 1].text == "++" ||
                                   toks[i - 1].text == "--");
        std::string op;
        if (prefixMut) {
          op = toks[i - 1].text;
        } else if (i + 1 < lam.body.end) {
          const std::string& next = toks[i + 1].text;
          if (next == "++" || next == "--" || next == "+=" || next == "-=" ||
              next == "*=" || next == "/=" || next == "|=" || next == "&=" ||
              next == "^=" || next == "<<=" || next == ">>=") {
            op = next;
          } else if (next == "=" && (i + 2 >= lam.body.end ||
                                     toks[i + 2].text != "=")) {
            // Assignment, not ==; exclude declarations (type token right
            // before the name).
            const Tok& prev = toks[i - 1];
            const bool declLike = prev.kind == TokKind::Ident ||
                                  prev.text == ">" || prev.text == "*" ||
                                  prev.text == "&";
            if (!declLike) op = "=";
          }
        }
        if (op.empty()) continue;
        if (lockHeldBefore(file, lam.body, i)) continue;
        out.push_back(makeFinding(
            file, toks[i].line, "gpd-pool-capture",
            "'" + name + "' is captured by reference and mutated ('" + op +
                "') inside a lambda passed to par::Pool::run without "
                "std::atomic or a lock — concurrent workers race (the PR 5 "
                "bug class); use std::atomic, a per-worker slot indexed by "
                "the worker id, or a mutex"));
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// gpd-checkpoint-symmetry
// ---------------------------------------------------------------------------

// Identifier-shaped checkpoint field key: strip trailing "\n"/spaces as
// written in the literal, then require [A-Za-z][A-Za-z0-9_-]*.
std::string keyOf(const std::string& literal) {
  std::string s = literal;
  // Strip escape sequences and surrounding spaces.
  while (s.size() >= 2 && s.compare(s.size() - 2, 2, "\\n") == 0) {
    s.resize(s.size() - 2);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.pop_back();
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.erase(0, 1);
  if (s.empty()) return {};
  if (!std::isalpha(static_cast<unsigned char>(s[0]))) return {};
  for (char c : s) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-')) {
      return {};
    }
  }
  return s;
}

struct KeyUse {
  std::string key;
  int line = 1;
};

std::vector<KeyUse> keysIn(const FileModel& file, const TokRange& range) {
  std::vector<KeyUse> out;
  for (std::size_t i = range.begin; i < range.end; ++i) {
    if (file.toks[i].kind != TokKind::Str) continue;
    std::string key = keyOf(file.toks[i].text);
    if (!key.empty()) out.push_back({std::move(key), file.toks[i].line});
  }
  return out;
}

// save*/write*/capture* functions pair with restore*/read*/load*/apply* of
// the same suffix in the same file.
const FnDef* pairedReader(const FileModel& file, const std::string& suffix) {
  for (const char* verb : {"read", "restore", "load", "apply"}) {
    const std::string want = verb + suffix;
    for (const FnDef& fn : file.functions) {
      if (fn.name == want) return &fn;
    }
  }
  return nullptr;
}

std::vector<Finding> checkCheckpointSymmetry(const FileModel& file,
                                             const Context&) {
  std::vector<Finding> out;
  for (const FnDef& writer : file.functions) {
    std::string suffix;
    if (writer.name.compare(0, 5, "write") == 0) {
      suffix = writer.name.substr(5);
    } else if (writer.name.compare(0, 4, "save") == 0) {
      suffix = writer.name.substr(4);
    } else if (writer.name.compare(0, 7, "capture") == 0) {
      suffix = writer.name.substr(7);
    } else {
      continue;
    }
    if (suffix.empty()) continue;
    const FnDef* reader = pairedReader(file, suffix);
    if (reader == nullptr) continue;  // no pair in this TU: out of scope
    std::set<std::string> readKeys;
    for (const KeyUse& k : keysIn(file, reader->body)) readKeys.insert(k.key);
    std::set<std::string> reported;
    for (const KeyUse& k : keysIn(file, writer.body)) {
      if (readKeys.count(k.key) != 0) continue;
      if (!reported.insert(k.key).second) continue;
      out.push_back(makeFinding(
          file, k.line, "gpd-checkpoint-symmetry",
          "field key '" + k.key + "' is written by " + writer.name +
              "() but never matched in the paired " + reader->name +
              "() — a checkpoint written today would lose this field on "
              "restore (the PR 6 durability contract); read it back or "
              "drop the write"));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// gpd-log-discipline
// ---------------------------------------------------------------------------

// The service and its tools log through src/obs/log (levels, rate limits,
// JSON mode, a single sink); a raw std::cerr or fprintf(stderr, ...) there
// bypasses all of it and breaks machine-readable operation. Scope:
// src/service/ plus tools/, except tools/srclint/ itself — the linter links
// only gpd_analyze and cannot depend on the library it lints.
bool inLogDisciplinedDir(const std::string& relPath) {
  if (relPath.find("tools/srclint/") != std::string::npos) return false;
  return relPath.find("src/service/") != std::string::npos ||
         relPath.find("tools/") != std::string::npos;
}

std::vector<Finding> checkLogDiscipline(const FileModel& file,
                                        const Context&) {
  std::vector<Finding> out;
  if (!inLogDisciplinedDir(file.relPath)) return out;
  const std::vector<Tok>& toks = file.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Ident) continue;
    const std::string& name = toks[i].text;
    if (name == "cerr") {
      out.push_back(makeFinding(
          file, toks[i].line, "gpd-log-discipline",
          "raw std::cerr in a service/tool translation unit bypasses the "
          "structured log module (levels, rate limiting, JSON mode); emit "
          "through gpd::obs::log — GPD_LOG_* / log::error — or, for usage "
          "banners only, obs::log::rawStderr()"));
      continue;
    }
    if (name == "fprintf" && i + 2 < toks.size() &&
        toks[i + 1].text == "(" && toks[i + 2].text == "stderr") {
      out.push_back(makeFinding(
          file, toks[i].line, "gpd-log-discipline",
          "fprintf(stderr, ...) in a service/tool translation unit bypasses "
          "the structured log module (levels, rate limiting, JSON mode); "
          "emit through gpd::obs::log instead"));
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry and context
// ---------------------------------------------------------------------------

const std::vector<std::string>& checkNames() {
  static const std::vector<std::string> names = {
      "gpd-budget-charge",       "gpd-clock-discipline", "gpd-span-raii",
      "gpd-pool-capture",        "gpd-checkpoint-symmetry",
      "gpd-log-discipline",
  };
  return names;
}

bool isCheckName(const std::string& name) {
  const auto& names = checkNames();
  return std::find(names.begin(), names.end(), name) != names.end();
}

Context buildContext(const std::vector<FileModel>& files) {
  Context ctx;
  // Name -> called names, across every scanned file (bare-name resolution;
  // overloads collapse, which errs toward "charges" — acceptable for a
  // structural gate).
  std::map<std::string, std::set<std::string>> callGraph;
  for (const FileModel& file : files) {
    for (const FnDef& fn : file.functions) {
      std::set<std::string>& callees = callGraph[fn.name];
      for (const Call* c : file.callsIn(fn.body)) callees.insert(c->name);
    }
  }
  // Seed: functions that call a charge primitive directly.
  for (const auto& [name, callees] : callGraph) {
    for (const std::string& callee : callees) {
      if (chargeCalls().count(callee) != 0) {
        ctx.chargingFunctions.insert(name);
        break;
      }
    }
  }
  // Fixpoint: calling a charging function makes the caller charging.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [name, callees] : callGraph) {
      if (ctx.chargingFunctions.count(name) != 0) continue;
      for (const std::string& callee : callees) {
        if (ctx.chargingFunctions.count(callee) != 0) {
          ctx.chargingFunctions.insert(name);
          changed = true;
          break;
        }
      }
    }
  }
  return ctx;
}

std::vector<Finding> runCheck(const std::string& check, const FileModel& file,
                              const Context& ctx) {
  if (check == "gpd-budget-charge") return checkBudgetCharge(file, ctx);
  if (check == "gpd-clock-discipline") return checkClockDiscipline(file, ctx);
  if (check == "gpd-span-raii") return checkSpanRaii(file, ctx);
  if (check == "gpd-pool-capture") return checkPoolCapture(file, ctx);
  if (check == "gpd-checkpoint-symmetry") {
    return checkCheckpointSymmetry(file, ctx);
  }
  if (check == "gpd-log-discipline") return checkLogDiscipline(file, ctx);
  return {};
}

}  // namespace gpd::srclint
