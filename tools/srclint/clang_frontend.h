// Optional libclang lexing frontend.
//
// When the build found clang-c/Index.h + libclang (GPD_SRCLINT_HAVE_LIBCLANG),
// srclint can lex through the real Clang lexer instead of the built-in token
// scanner: preprocessor state, raw strings, and digraphs are then handled by
// the production lexer, and allow-comments are read from CXToken_Comment
// tokens. The structural pass (model.cpp) and the checks are shared by both
// frontends, so fixtures exercise identical logic either way.
//
// The container this repo is developed in ships no libclang, so the default
// build compiles this translation unit to nothing and `--frontend=clang`
// reports unavailability at runtime.
#pragma once

#include <string>
#include <vector>

#include "srclint/lex.h"

namespace gpd::srclint {

// True when srclint was compiled against libclang.
bool clangFrontendAvailable();

// Lexes `path` through libclang. On failure returns false and sets *error;
// `extraArgs` are passed to the clang invocation (e.g. from a
// compile_commands.json entry). Only callable when clangFrontendAvailable().
bool lexWithClang(const std::string& path,
                  const std::vector<std::string>& extraArgs, LexResult* out,
                  std::string* error);

}  // namespace gpd::srclint
