// The five srclint domain checks (DESIGN.md §14).
//
// Each check walks the FileModels of one run and emits findings as
// analyze::Diagnostic records (severity Error, code = check name) so the
// driver can reuse the PR 2 renderers. Cross-file facts — the
// "this function charges a budget somewhere in its callee chain" closure —
// are computed once over the whole scan set and shared.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analyze/diagnostic.h"
#include "srclint/model.h"

namespace gpd::srclint {

// One finding, bound to its file (analyze::Diagnostic has no file field —
// the lint pass it was built for is single-stream).
struct Finding {
  std::string file;  // relPath
  analyze::Diagnostic diag;
};

// Registered check names, in reporting order.
const std::vector<std::string>& checkNames();
bool isCheckName(const std::string& name);

// Cross-file context shared by the checks.
struct Context {
  // Functions whose body (transitively) contains a Budget/CancelToken
  // charge or poll call, keyed by bare function name.
  std::set<std::string> chargingFunctions;
};

Context buildContext(const std::vector<FileModel>& files);

// Runs the named check over one file. `ctx` must come from buildContext on
// the full scan set.
std::vector<Finding> runCheck(const std::string& check, const FileModel& file,
                              const Context& ctx);

}  // namespace gpd::srclint
