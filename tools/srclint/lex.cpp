#include "srclint/lex.h"

#include <cctype>
#include <cstddef>

namespace gpd::srclint {

namespace {

// Multi-character operators, longest first within each leading byte.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=",  "^=", "==", "!=", "<=", ">=", "&&",
    "||",  "<<",  ">>",  ".*",
};

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Parses a comment body that starts with "srclint:"; returns true when it
// is a well-formed allow() annotation (appended to `out`).
bool parseControl(const std::string& body, int line,
                  std::vector<AllowComment>& out) {
  std::string rest = trim(body.substr(8));  // past "srclint:"
  if (rest.compare(0, 5, "allow") != 0) return false;
  rest = trim(rest.substr(5));
  if (rest.size() < 2 || rest.front() != '(' || rest.back() != ')') {
    return false;
  }
  AllowComment allow;
  allow.line = line;
  std::string inner = rest.substr(1, rest.size() - 2);
  std::size_t pos = 0;
  while (pos <= inner.size()) {
    const std::size_t comma = inner.find(',', pos);
    const std::string name =
        trim(inner.substr(pos, comma == std::string::npos ? std::string::npos
                                                          : comma - pos));
    if (name.empty()) return false;
    allow.checks.push_back(name);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (allow.checks.empty()) return false;
  out.push_back(std::move(allow));
  return true;
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  LexResult run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        atLineStart_ = true;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '#' && atLineStart_) {
        skipDirective();
        continue;
      }
      atLineStart_ = false;
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        lineComment();
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        blockComment();
        continue;
      }
      if (c == '"') {
        if (!result_.toks.empty() &&
            result_.toks.back().kind == TokKind::Ident &&
            !result_.toks.back().text.empty() &&
            result_.toks.back().text.back() == 'R') {
          rawString();
        } else {
          quoted('"', TokKind::Str);
        }
        continue;
      }
      if (c == '\'') {
        // Digit separators (1'000) — treat ' after a number token as part
        // of it and keep lexing the number.
        if (!result_.toks.empty() && result_.toks.back().kind == TokKind::Num &&
            pos_ + 1 < src_.size() &&
            std::isalnum(static_cast<unsigned char>(src_[pos_ + 1]))) {
          ++pos_;
          number(true);
          continue;
        }
        quoted('\'', TokKind::Chr);
        continue;
      }
      if (isIdentStart(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        number(false);
        continue;
      }
      punct();
    }
    return std::move(result_);
  }

 private:
  void push(TokKind kind, std::string text) {
    result_.toks.push_back({kind, std::move(text), line_});
  }

  // Skips one directive including backslash-continued lines.
  void skipDirective() {
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '\n') {
        ++line_;
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == '\n') break;  // newline handled by the main loop
      ++pos_;
    }
  }

  void lineComment() {
    const int line = line_;
    std::size_t end = src_.find('\n', pos_);
    if (end == std::string::npos) end = src_.size();
    const std::string body = trim(src_.substr(pos_ + 2, end - pos_ - 2));
    maybeControl(body, line);
    pos_ = end;
  }

  void blockComment() {
    const int line = line_;
    std::size_t end = src_.find("*/", pos_ + 2);
    if (end == std::string::npos) end = src_.size();
    const std::string body = trim(src_.substr(pos_ + 2, end - pos_ - 2));
    maybeControl(body, line);
    for (std::size_t i = pos_; i < end && i < src_.size(); ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = end == src_.size() ? end : end + 2;
  }

  void maybeControl(const std::string& body, int line) {
    if (body.compare(0, 8, "srclint:") != 0) return;
    if (!parseControl(body, line, result_.allows)) {
      result_.malformedControlLines.push_back(line);
    }
  }

  void quoted(char close, TokKind kind) {
    const int line = line_;
    std::string text;
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != close && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        text += src_[pos_ + 1];
        pos_ += 2;
        continue;
      }
      text += src_[pos_];
      ++pos_;
    }
    if (pos_ < src_.size() && src_[pos_] == close) ++pos_;
    result_.toks.push_back({kind, std::move(text), line});
  }

  // R"delim( ... )delim" — the preceding R/u8R token has already been
  // pushed; it is left in place (harmless) and the body becomes a Str.
  void rawString() {
    const int line = line_;
    ++pos_;  // opening quote
    std::string delim;
    while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
    if (pos_ < src_.size()) ++pos_;  // '('
    const std::string closer = ")" + delim + "\"";
    std::size_t end = src_.find(closer, pos_);
    if (end == std::string::npos) end = src_.size();
    std::string text = src_.substr(pos_, end - pos_);
    for (char c : text) {
      if (c == '\n') ++line_;
    }
    pos_ = end == src_.size() ? end : end + closer.size();
    result_.toks.push_back({TokKind::Str, std::move(text), line});
  }

  void identifier() {
    const std::size_t start = pos_;
    while (pos_ < src_.size() && isIdentChar(src_[pos_])) ++pos_;
    push(TokKind::Ident, src_.substr(start, pos_ - start));
  }

  void number(bool append) {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
            src_[pos_] == '.' ||
            ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
             (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' ||
              src_[pos_ - 1] == 'p' || src_[pos_ - 1] == 'P')))) {
      ++pos_;
    }
    if (append && !result_.toks.empty()) {
      result_.toks.back().text += src_.substr(start, pos_ - start);
      return;
    }
    push(TokKind::Num, src_.substr(start, pos_ - start));
  }

  void punct() {
    for (const char* p : kPuncts) {
      const std::size_t n = std::char_traits<char>::length(p);
      if (src_.compare(pos_, n, p) == 0) {
        push(TokKind::Punct, p);
        pos_ += n;
        return;
      }
    }
    push(TokKind::Punct, std::string(1, src_[pos_]));
    ++pos_;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool atLineStart_ = true;
  LexResult result_;
};

}  // namespace

LexResult lex(const std::string& source) { return Lexer(source).run(); }

}  // namespace gpd::srclint
