// srclint token stream — a comment- and preprocessor-aware C++ lexer.
//
// srclint's built-in frontend works on raw tokens, not a full AST: the five
// domain checks (DESIGN.md §14) need function extents, loops, lambdas, call
// names, and string literals, all of which a token scan recovers reliably
// for this codebase's style. The lexer therefore:
//   - splits source text into identifier / punctuation / literal tokens,
//     each carrying its 1-based line;
//   - strips comments but *collects* `// srclint: allow(<check>)` control
//     comments (and reports malformed ones) for the suppression pass;
//   - skips preprocessor directives wholesale (including continuation
//     lines), so macro *definitions* are never linted — only their uses.
#pragma once

#include <string>
#include <vector>

namespace gpd::srclint {

enum class TokKind {
  Ident,  // identifiers and keywords
  Punct,  // operators and punctuation (longest-match, e.g. "::", "+=")
  Str,    // string literal, text WITHOUT quotes, escapes left as written
  Chr,    // character literal, text without quotes
  Num,    // numeric literal
};

struct Tok {
  TokKind kind = TokKind::Punct;
  std::string text;
  int line = 1;
};

// One `// srclint: allow(a, b)` annotation. `checks` holds the comma-split
// names exactly as written (trimmed); validation against the registered
// check list happens in the driver.
struct AllowComment {
  int line = 1;
  std::vector<std::string> checks;
};

struct LexResult {
  std::vector<Tok> toks;
  std::vector<AllowComment> allows;
  // Lines carrying a comment that starts with "srclint:" but does not parse
  // as "srclint: allow(<names>)" — surfaced as findings by the driver.
  std::vector<int> malformedControlLines;
};

// Tokenizes one translation unit / header. Never throws on weird input —
// unterminated literals are closed at end-of-line, unknown bytes skipped.
LexResult lex(const std::string& source);

}  // namespace gpd::srclint
