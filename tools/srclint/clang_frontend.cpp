#include "srclint/clang_frontend.h"

#if defined(GPD_SRCLINT_HAVE_LIBCLANG)

#include <clang-c/Index.h>

#include <cstring>
#include <vector>

namespace gpd::srclint {

namespace {

std::string toStd(CXString s) {
  const char* c = clang_getCString(s);
  std::string out = c != nullptr ? c : "";
  clang_disposeString(s);
  return out;
}

TokKind kindOf(CXTokenKind k, const std::string& text) {
  switch (k) {
    case CXToken_Identifier:
      return TokKind::Ident;
    case CXToken_Keyword:
      // The built-in lexer does not distinguish keywords either; the model
      // layer owns that classification.
      return TokKind::Ident;
    case CXToken_Literal:
      if (!text.empty() && (text[0] == '"' || text[0] == 'R' ||
                            text.compare(0, 2, "u8") == 0 ||
                            text[0] == 'L' || text[0] == 'u' ||
                            text[0] == 'U')) {
        if (text.find('"') != std::string::npos) return TokKind::Str;
      }
      if (!text.empty() && text[0] == '\'') return TokKind::Chr;
      return TokKind::Num;
    default:
      return TokKind::Punct;
  }
}

// Strips quotes/prefix from a string literal so Str tokens carry the same
// payload the built-in lexer produces (contents without the quotes).
std::string literalPayload(const std::string& text) {
  const std::size_t open = text.find('"');
  if (open == std::string::npos) return text;
  std::size_t close = text.rfind('"');
  if (close <= open) close = text.size();
  return text.substr(open + 1, close - open - 1);
}

}  // namespace

bool clangFrontendAvailable() { return true; }

bool lexWithClang(const std::string& path,
                  const std::vector<std::string>& extraArgs, LexResult* out,
                  std::string* error) {
  CXIndex index = clang_createIndex(/*excludeDeclsFromPCH=*/0,
                                    /*displayDiagnostics=*/0);
  std::vector<const char*> args;
  args.push_back("-std=c++17");
  for (const std::string& a : extraArgs) args.push_back(a.c_str());
  CXTranslationUnit tu = nullptr;
  const CXErrorCode rc = clang_parseTranslationUnit2(
      index, path.c_str(), args.data(), static_cast<int>(args.size()),
      nullptr, 0, CXTranslationUnit_DetailedPreprocessingRecord, &tu);
  if (rc != CXError_Success || tu == nullptr) {
    if (error != nullptr) {
      *error = "libclang failed to parse '" + path + "' (code " +
               std::to_string(static_cast<int>(rc)) + ")";
    }
    clang_disposeIndex(index);
    return false;
  }
  const CXFile file = clang_getFile(tu, path.c_str());
  const CXSourceRange range = clang_getRange(
      clang_getLocationForOffset(tu, file, 0),
      clang_getLocation(tu, file, 1u << 30, 1));
  CXToken* toks = nullptr;
  unsigned count = 0;
  clang_tokenize(tu, range, &toks, &count);
  for (unsigned i = 0; i < count; ++i) {
    const CXSourceLocation loc = clang_getTokenLocation(tu, toks[i]);
    CXFile tokFile;
    unsigned line = 1, col = 0, off = 0;
    clang_getSpellingLocation(loc, &tokFile, &line, &col, &off);
    const std::string text = toStd(clang_getTokenSpelling(tu, toks[i]));
    const CXTokenKind k = clang_getTokenKind(toks[i]);
    if (k == CXToken_Comment) {
      // Re-use the built-in lexer's control-comment grammar on the body.
      std::string body = text;
      if (body.compare(0, 2, "//") == 0) body = body.substr(2);
      if (body.compare(0, 2, "/*") == 0) {
        body = body.substr(2);
        if (body.size() >= 2 && body.compare(body.size() - 2, 2, "*/") == 0) {
          body.resize(body.size() - 2);
        }
      }
      const LexResult sub = lex("//" + body + "\n");
      for (AllowComment allow : sub.allows) {
        allow.line = static_cast<int>(line);
        out->allows.push_back(std::move(allow));
      }
      for (int l : sub.malformedControlLines) {
        (void)l;
        out->malformedControlLines.push_back(static_cast<int>(line));
      }
      continue;
    }
    if (k == CXToken_Punctuation && text == "#") {
      // Preprocessor tokens are skipped by matching the built-in frontend:
      // clang_tokenize surfaces directives as plain tokens, so drop tokens
      // until the next line.
      unsigned dirLine = line;
      while (i + 1 < count) {
        unsigned l2 = 1;
        clang_getSpellingLocation(clang_getTokenLocation(tu, toks[i + 1]),
                                  nullptr, &l2, nullptr, nullptr);
        if (l2 != dirLine) break;
        ++i;
      }
      continue;
    }
    const TokKind kind = kindOf(k, text);
    const std::string payload =
        kind == TokKind::Str ? literalPayload(text) : text;
    out->toks.push_back({kind, payload, static_cast<int>(line)});
  }
  clang_disposeTokens(tu, toks, count);
  clang_disposeTranslationUnit(tu);
  clang_disposeIndex(index);
  return true;
}

}  // namespace gpd::srclint

#else  // !GPD_SRCLINT_HAVE_LIBCLANG

namespace gpd::srclint {

bool clangFrontendAvailable() { return false; }

bool lexWithClang(const std::string&, const std::vector<std::string>&,
                  LexResult*, std::string* error) {
  if (error != nullptr) {
    *error = "srclint was built without libclang; use --frontend=token";
  }
  return false;
}

}  // namespace gpd::srclint

#endif
