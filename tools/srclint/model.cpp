#include "srclint/model.h"

#include <algorithm>

namespace gpd::srclint {

namespace {

bool isKeyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",     "for",      "while",  "switch",   "catch",  "return",
      "sizeof", "alignof",  "new",    "delete",   "throw",  "case",
      "do",     "else",     "const",  "static",   "struct", "class",
      "enum",   "union",    "public", "private",  "protected",
      "typedef", "using",   "template", "typename", "namespace",
      "operator", "co_await", "co_return", "co_yield", "decltype",
      "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
      "alignas", "noexcept", "constexpr", "consteval", "constinit",
      "requires", "concept", "explicit", "inline", "virtual", "override",
      "final",  "mutable",  "volatile", "register", "thread_local",
      "default", "break",   "continue", "goto",   "try",
  };
  return kw.count(s) != 0;
}

bool opens(const std::string& t) {
  return t == "(" || t == "[" || t == "{";
}
bool closes(const std::string& t) {
  return t == ")" || t == "]" || t == "}";
}

// Is the '[' at index i a lambda introducer (vs a subscript / attribute)?
// Preceded by an identifier, ')', ']', or '>' means subscript/array-decl;
// "[[" is an attribute.
bool isLambdaIntro(const std::vector<Tok>& toks, std::size_t i) {
  if (i + 1 < toks.size() && toks[i + 1].text == "[" &&
      toks[i + 1].kind == TokKind::Punct) {
    return false;  // [[attribute]]
  }
  if (i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == "[") {
    return false;  // second bracket of [[
  }
  if (i == 0) return true;
  const Tok& prev = toks[i - 1];
  if (prev.kind == TokKind::Ident) return isKeyword(prev.text);
  if (prev.kind == TokKind::Num || prev.kind == TokKind::Str) return false;
  return !(prev.text == ")" || prev.text == "]");
}

}  // namespace

const FnDef* FileModel::enclosingFunction(std::size_t i) const {
  const FnDef* best = nullptr;
  for (const FnDef& fn : functions) {
    if (fn.body.contains(i) &&
        (best == nullptr || fn.body.begin > best->body.begin)) {
      best = &fn;
    }
  }
  return best;
}

std::vector<const Call*> FileModel::callsIn(const TokRange& range) const {
  std::vector<const Call*> out;
  for (const Call& c : calls) {
    if (range.contains(c.tok)) out.push_back(&c);
  }
  return out;
}

FileModel buildModel(std::string path, LexResult lexed) {
  FileModel m;
  m.path = std::move(path);
  m.relPath = m.path;
  while (m.relPath.compare(0, 2, "./") == 0) m.relPath = m.relPath.substr(2);
  m.toks = std::move(lexed.toks);
  m.allows = std::move(lexed.allows);
  m.malformedControlLines = std::move(lexed.malformedControlLines);
  const std::vector<Tok>& toks = m.toks;
  const std::size_t n = toks.size();

  // ---- Bracket matching (tolerant: unmatched closers are ignored). ----
  {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < n; ++i) {
      if (toks[i].kind != TokKind::Punct) continue;
      if (opens(toks[i].text)) {
        stack.push_back(i);
      } else if (closes(toks[i].text) && !stack.empty()) {
        m.match[stack.back()] = i;
        stack.pop_back();
      }
    }
  }
  const auto matchOf = [&](std::size_t i) -> std::size_t {
    const auto it = m.match.find(i);
    return it == m.match.end() ? n : it->second;
  };

  // ---- Lambdas (collected first: their '{' must not look like a function
  // body to the function scan below). ----
  std::set<std::size_t> lambdaBodyOpens;
  for (std::size_t i = 0; i < n; ++i) {
    if (toks[i].kind != TokKind::Punct || toks[i].text != "[") continue;
    if (!isLambdaIntro(toks, i)) continue;
    const std::size_t closeBracket = matchOf(i);
    if (closeBracket >= n) continue;
    Lambda lam;
    lam.line = toks[i].line;
    // Capture list.
    for (std::size_t j = i + 1; j < closeBracket; ++j) {
      const Tok& t = toks[j];
      if (t.kind == TokKind::Punct && t.text == "&") {
        if (j + 1 < closeBracket && toks[j + 1].kind == TokKind::Ident) {
          lam.refCaptures.insert(toks[j + 1].text);
          ++j;
        } else {
          lam.capturesAllByRef = true;
        }
      } else if (t.kind == TokKind::Ident && t.text != "this") {
        lam.valueCaptures.insert(t.text);
        // Skip an init-capture's initializer.
        if (j + 1 < closeBracket && toks[j + 1].text == "=") {
          while (j + 1 < closeBracket && toks[j + 1].text != ",") ++j;
        }
      }
    }
    // Optional parameter list.
    std::size_t k = closeBracket + 1;
    if (k < n && toks[k].text == "(") {
      const std::size_t closeParen = matchOf(k);
      if (closeParen >= n) continue;
      // Parameter names: the identifier right before ',' or the final ')'.
      std::size_t depth = 0;
      for (std::size_t j = k + 1; j < closeParen; ++j) {
        if (opens(toks[j].text) && toks[j].kind == TokKind::Punct) ++depth;
        if (closes(toks[j].text) && toks[j].kind == TokKind::Punct) --depth;
        const bool boundary =
            depth == 0 && ((toks[j].text == "," ) || j + 1 == closeParen);
        if (!boundary) continue;
        const std::size_t last = toks[j].text == "," ? j - 1 : j;
        if (toks[last].kind == TokKind::Ident && !isKeyword(toks[last].text)) {
          lam.params.push_back(toks[last].text);
        }
      }
      k = closeParen + 1;
    }
    // Skip specifiers (mutable, noexcept, -> type) up to the body brace.
    while (k < n && !(toks[k].kind == TokKind::Punct && toks[k].text == "{")) {
      if (toks[k].kind == TokKind::Punct &&
          (toks[k].text == ";" || toks[k].text == ")" || toks[k].text == ",")) {
        break;  // not a lambda after all (e.g. array subscript heuristics)
      }
      ++k;
    }
    if (k >= n || toks[k].text != "{") continue;
    const std::size_t closeBrace = matchOf(k);
    if (closeBrace >= n) continue;
    lam.body = {k + 1, closeBrace};
    lam.full = {i, closeBrace + 1};
    lambdaBodyOpens.insert(k);
    m.lambdas.push_back(std::move(lam));
  }

  // ---- Function definitions: ident '(' ... ')' [qualifiers / ctor-inits]
  // '{'. The tokens between ')' and '{' must not contain ';' or '='. ----
  for (std::size_t i = 0; i < n; ++i) {
    if (toks[i].kind != TokKind::Ident || isKeyword(toks[i].text)) continue;
    if (i + 1 >= n || toks[i + 1].text != "(" ||
        toks[i + 1].kind != TokKind::Punct) {
      continue;
    }
    const std::size_t closeParen = matchOf(i + 1);
    if (closeParen >= n) continue;
    // Walk from ')' to the body '{', tolerating qualifiers, trailing return
    // types, and constructor initializer lists (with nested brackets).
    std::size_t k = closeParen + 1;
    bool isDef = false;
    while (k < n) {
      const Tok& t = toks[k];
      if (t.kind == TokKind::Punct) {
        if (t.text == "{") {
          isDef = true;
          break;
        }
        if (t.text == ";" || t.text == "=" || t.text == "}" ||
            t.text == ")") {
          break;
        }
        if (t.text == "(") {
          const std::size_t c = matchOf(k);
          if (c >= n) break;
          k = c + 1;
          continue;
        }
      }
      ++k;
    }
    if (!isDef || lambdaBodyOpens.count(k) != 0) continue;
    // Constructor-initializer braces between ')' and '{' can fool the walk:
    // `Foo() : member_{0} {` stops at member_'s '{'. Detect: if this '{'
    // is immediately preceded by an identifier and its matching '}' is NOT
    // followed by '{', ',' or another init, treat conservatively — accept
    // the brace whose match is followed by something statement-like. We
    // simply accept the first '{' whose previous token is not an identifier
    // or '>' when a ':' was seen (init-list member braces).
    bool sawColon = false;
    for (std::size_t j = closeParen + 1; j < k; ++j) {
      if (toks[j].kind == TokKind::Punct && toks[j].text == ":") {
        sawColon = true;
        break;
      }
    }
    if (sawColon && k > 0 &&
        (toks[k - 1].kind == TokKind::Ident || toks[k - 1].text == ">")) {
      // `: member_{...}` — the real body brace follows the init list; find
      // the next '{' at the same level after this one's match.
      std::size_t brace = k;
      bool found = false;
      while (brace < n) {
        const std::size_t c = matchOf(brace);
        if (c >= n) break;
        std::size_t next = c + 1;
        if (next < n && toks[next].text == ",") {
          // more initializers; advance to the following '{'
          while (next < n && toks[next].text != "{") ++next;
          brace = next;
          continue;
        }
        if (next < n && toks[next].text == "{") {
          brace = next;
          found = true;
        }
        break;
      }
      if (found) k = brace;
    }
    const std::size_t closeBrace = matchOf(k);
    if (closeBrace >= n) continue;
    FnDef fn;
    fn.name = toks[i].text;
    fn.line = toks[i].line;
    fn.body = {k + 1, closeBrace};
    m.functions.push_back(std::move(fn));
  }

  // ---- Loops. ----
  for (std::size_t i = 0; i < n; ++i) {
    if (toks[i].kind != TokKind::Ident) continue;
    const std::string& t = toks[i].text;
    if (t == "for" || t == "while") {
      if (i + 1 >= n || toks[i + 1].text != "(") continue;
      const std::size_t closeParen = matchOf(i + 1);
      if (closeParen >= n) continue;
      // `while (...)` directly after a do-body's '}' is the do-loop's tail
      // condition, not a new loop; the do branch below already covered it.
      if (t == "while" && i > 0 && toks[i - 1].text == "}") {
        bool isDoTail = i > 0 && closeParen + 1 < n &&
                        toks[closeParen + 1].text == ";";
        if (isDoTail) continue;
      }
      Loop loop;
      loop.line = toks[i].line;
      std::size_t b = closeParen + 1;
      if (b < n && toks[b].text == "{") {
        const std::size_t closeBrace = matchOf(b);
        if (closeBrace >= n) continue;
        loop.body = {b + 1, closeBrace};
      } else {
        // Single-statement body: through the next ';' at bracket level 0.
        std::size_t j = b;
        int depth = 0;
        while (j < n) {
          if (toks[j].kind == TokKind::Punct) {
            if (opens(toks[j].text)) ++depth;
            if (closes(toks[j].text)) --depth;
            if (toks[j].text == ";" && depth <= 0) break;
          }
          ++j;
        }
        loop.body = {b, j};
      }
      m.loops.push_back(loop);
    } else if (t == "do") {
      if (i + 1 < n && toks[i + 1].text == "{") {
        const std::size_t closeBrace = matchOf(i + 1);
        if (closeBrace >= n) continue;
        Loop loop;
        loop.line = toks[i].line;
        loop.body = {i + 2, closeBrace};
        m.loops.push_back(loop);
      }
    }
  }

  // ---- Calls: ident '(' with optional receiver chain. ----
  for (std::size_t i = 0; i < n; ++i) {
    if (toks[i].kind != TokKind::Ident || isKeyword(toks[i].text)) continue;
    if (i + 1 >= n || toks[i + 1].text != "(" ||
        toks[i + 1].kind != TokKind::Punct) {
      continue;
    }
    const std::size_t closeParen = matchOf(i + 1);
    if (closeParen >= n) continue;
    Call call;
    call.name = toks[i].text;
    call.line = toks[i].line;
    call.tok = i;
    call.argsBegin = i + 2;
    call.argsEnd = closeParen;
    if (i >= 2 && toks[i - 1].kind == TokKind::Punct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
        toks[i - 2].kind == TokKind::Ident) {
      call.receiver = toks[i - 2].text;
    }
    m.calls.push_back(std::move(call));
  }

  return m;
}

}  // namespace gpd::srclint
