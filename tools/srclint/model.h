// srclint structural model — function extents, loops, lambdas, calls.
//
// Built from the token stream by a bracket-matching pass (or, when srclint
// was compiled against libclang and --frontend=clang is in effect, refined
// from the real AST). The model is deliberately lightweight: every entity
// is a token range plus the few attributes the checks consume. Heuristics
// and their known limits are documented in DESIGN.md §14.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "srclint/lex.h"

namespace gpd::srclint {

// Half-open token index range [begin, end).
struct TokRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool contains(std::size_t i) const { return i >= begin && i < end; }
};

// One function (or method) definition: `name` is the last identifier of the
// declarator chain; `body` covers the tokens between its braces.
struct FnDef {
  std::string name;
  int line = 1;
  TokRange body;  // excludes the braces themselves
};

// One for/while/do loop; `body` covers the loop's statement (block body
// without the braces, or the single statement).
struct Loop {
  int line = 1;
  TokRange body;
};

// One lambda expression.
struct Lambda {
  int line = 1;
  bool capturesAllByRef = false;          // [&] or [&, ...]
  std::set<std::string> refCaptures;      // explicit &name captures
  std::set<std::string> valueCaptures;    // explicit name / name=... captures
  std::vector<std::string> params;        // parameter names, declaration order
  TokRange body;                          // without the braces
  TokRange full;                          // '[' .. closing '}'
};

// One call site: identifier followed by '('. `receiver` is the identifier
// chain before a '.'/'->' (empty for free calls), e.g. "pool" in
// pool.run(...) or pool->run(...).
struct Call {
  std::string name;
  std::string receiver;
  int line = 1;
  std::size_t tok = 0;       // index of the name token
  std::size_t argsBegin = 0;  // token index just past '('
  std::size_t argsEnd = 0;    // index of the matching ')'
};

struct FileModel {
  std::string path;      // as given on the command line
  std::string relPath;   // path with "./" stripped, for dir matching
  std::vector<Tok> toks;
  std::vector<AllowComment> allows;
  std::vector<int> malformedControlLines;
  std::vector<FnDef> functions;
  std::vector<Loop> loops;
  std::vector<Lambda> lambdas;
  std::vector<Call> calls;
  // For every '{' / '(' / '[' token index, the index of its match.
  std::map<std::size_t, std::size_t> match;

  // Innermost function whose body contains token i; nullptr when none.
  const FnDef* enclosingFunction(std::size_t i) const;
  // Calls whose name token lies inside `range`.
  std::vector<const Call*> callsIn(const TokRange& range) const;
};

// Runs the structural pass over a lexed file.
FileModel buildModel(std::string path, LexResult lexed);

}  // namespace gpd::srclint
