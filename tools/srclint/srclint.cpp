// srclint — domain-invariant analyzer for the gpd codebase.
//
// Enforces five repo-specific contracts that generic linters cannot see
// (DESIGN.md §14): budget charging in enumeration loops, the amortized-clock
// discipline, GPD_TRACE_SPAN RAII binding, racy by-reference captures in
// par::Pool lambdas, and checkpoint write/read key symmetry.
//
//   srclint [options] <path>...          scan files or directories
//   srclint --compile-commands FILE      scan the files of a compilation DB
//
// Options:
//   --checks a,b       run only the named checks (default: all)
//   --list-checks      print registered check names and exit
//   -f text|json       output format (default text)
//   --stats            print per-check finding/allowed counts to stderr
//   --frontend auto|token|clang
//                      lexer frontend; 'clang' needs a libclang build
//   --help             usage
//
// Suppression: `// srclint: allow(check-name)` silences findings of that
// check on the comment's own line and the next line. Allowed findings are
// counted in --stats but do not affect the exit code. An unknown check name
// inside an allow() is itself a diagnostic.
//
// Exit codes follow the repo taxonomy: 0 clean, 1 findings, 2 bad
// input/usage, 3 internal error.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/diagnostic.h"
#include "srclint/checks.h"
#include "srclint/clang_frontend.h"
#include "srclint/lex.h"
#include "srclint/model.h"

namespace {

namespace fs = std::filesystem;
using gpd::analyze::Diagnostic;
using gpd::analyze::Severity;
using gpd::srclint::AllowComment;
using gpd::srclint::FileModel;
using gpd::srclint::Finding;

constexpr int kExitClean = 0;
constexpr int kExitFindings = 1;
constexpr int kExitUsage = 2;
constexpr int kExitInternal = 3;

struct Options {
  std::vector<std::string> paths;
  std::set<std::string> checks;  // empty = all
  std::string format = "text";
  std::string frontend = "auto";
  std::string compileCommands;
  bool stats = false;
  bool listChecks = false;
};

void usage(std::ostream& os) {
  os << "usage: srclint [--checks a,b] [--list-checks] [-f text|json]\n"
        "               [--stats] [--frontend auto|token|clang]\n"
        "               [--compile-commands FILE] <path>...\n";
}

// Accepts "--opt value" and "--opt=value"; returns false on missing value.
bool takeValue(const std::vector<std::string>& args, std::size_t& i,
               const std::string& name, std::string* out) {
  const std::string& a = args[i];
  if (a.size() > name.size() && a.compare(0, name.size() + 1, name + "=") == 0) {
    *out = a.substr(name.size() + 1);
    return true;
  }
  if (i + 1 >= args.size()) return false;
  *out = args[++i];
  return true;
}

bool parseArgs(const std::vector<std::string>& args, Options* opt,
               std::string* error) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto is = [&](const char* name) {
      return a == name || a.compare(0, std::string(name).size() + 1,
                                    std::string(name) + "=") == 0;
    };
    if (a == "--help" || a == "-h") {
      usage(std::cout);
      std::exit(kExitClean);
    }
    if (a == "--list-checks") {
      opt->listChecks = true;
      continue;
    }
    if (a == "--stats") {
      opt->stats = true;
      continue;
    }
    if (is("--checks")) {
      std::string v;
      if (!takeValue(args, i, "--checks", &v)) {
        *error = "--checks needs a value";
        return false;
      }
      std::stringstream ss(v);
      std::string name;
      while (std::getline(ss, name, ',')) {
        if (name.empty()) continue;
        if (!gpd::srclint::isCheckName(name)) {
          *error = "unknown check '" + name + "' (see --list-checks)";
          return false;
        }
        opt->checks.insert(name);
      }
      continue;
    }
    if (is("-f") || is("--format")) {
      std::string v;
      const std::string name = is("-f") ? "-f" : "--format";
      if (!takeValue(args, i, name, &v)) {
        *error = name + " needs a value";
        return false;
      }
      if (v != "text" && v != "json") {
        *error = "unknown format '" + v + "' (text|json)";
        return false;
      }
      opt->format = v;
      continue;
    }
    if (is("--frontend")) {
      std::string v;
      if (!takeValue(args, i, "--frontend", &v)) {
        *error = "--frontend needs a value";
        return false;
      }
      if (v != "auto" && v != "token" && v != "clang") {
        *error = "unknown frontend '" + v + "' (auto|token|clang)";
        return false;
      }
      opt->frontend = v;
      continue;
    }
    if (is("--compile-commands")) {
      if (!takeValue(args, i, "--compile-commands", &opt->compileCommands)) {
        *error = "--compile-commands needs a value";
        return false;
      }
      continue;
    }
    if (!a.empty() && a[0] == '-') {
      *error = "unknown option '" + a + "'";
      return false;
    }
    opt->paths.push_back(a);
  }
  return true;
}

bool isSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" ||
         ext == ".hpp";
}

// Expands the path arguments into a sorted, de-duplicated file list.
bool gatherFiles(const Options& opt, std::vector<std::string>* out,
                 std::string* error) {
  std::set<std::string> files;
  for (const std::string& path : opt.paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (fs::recursive_directory_iterator it(path, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && isSourceFile(it->path())) {
          files.insert(it->path().generic_string());
        }
      }
      continue;
    }
    if (fs::is_regular_file(path, ec)) {
      files.insert(fs::path(path).generic_string());
      continue;
    }
    *error = "no such file or directory: '" + path + "'";
    return false;
  }
  if (!opt.compileCommands.empty()) {
    // Minimal extraction of "file" entries; the DB is machine-written JSON,
    // so scanning for the key is sufficient and avoids a JSON dependency.
    std::ifstream in(opt.compileCommands);
    if (!in) {
      *error = "cannot read compile database '" + opt.compileCommands + "'";
      return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string db = buf.str();
    const std::string key = "\"file\"";
    for (std::size_t pos = db.find(key); pos != std::string::npos;
         pos = db.find(key, pos + key.size())) {
      const std::size_t colon = db.find(':', pos + key.size());
      if (colon == std::string::npos) break;
      const std::size_t q1 = db.find('"', colon);
      if (q1 == std::string::npos) break;
      const std::size_t q2 = db.find('"', q1 + 1);
      if (q2 == std::string::npos) break;
      const std::string file = db.substr(q1 + 1, q2 - q1 - 1);
      if (isSourceFile(file)) files.insert(file);
      pos = q2;
    }
  }
  out->assign(files.begin(), files.end());
  return true;
}

std::string stripDotSlash(std::string p) {
  while (p.compare(0, 2, "./") == 0) p = p.substr(2);
  return p;
}

// Loads one file through the selected frontend.
bool loadFile(const std::string& path, const std::string& frontend,
              FileModel* out, std::string* error) {
  gpd::srclint::LexResult lexed;
  const bool wantClang =
      frontend == "clang" ||
      (frontend == "auto" && gpd::srclint::clangFrontendAvailable());
  if (wantClang) {
    if (!gpd::srclint::lexWithClang(path, {}, &lexed, error)) return false;
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      *error = "cannot read '" + path + "'";
      return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    lexed = gpd::srclint::lex(buf.str());
  }
  *out = gpd::srclint::buildModel(path, std::move(lexed));
  out->relPath = stripDotSlash(out->relPath);
  return true;
}

// A finding on line L is suppressed by an allow() for its check on line L
// or L-1 (the comment covers its own line and the next).
bool isAllowed(const FileModel& file, const Finding& f) {
  for (const AllowComment& allow : file.allows) {
    if (allow.line != f.diag.line && allow.line + 1 != f.diag.line) continue;
    for (const std::string& check : allow.checks) {
      if (check == f.diag.code) return true;
    }
  }
  return false;
}

// Diagnostics about the suppression comments themselves: malformed control
// lines and unknown check names. Never suppressible.
std::vector<Finding> allowDiagnostics(const FileModel& file) {
  std::vector<Finding> out;
  for (int line : file.malformedControlLines) {
    Finding f;
    f.file = file.relPath;
    f.diag.severity = Severity::Error;
    f.diag.code = "srclint-allow";
    f.diag.line = line;
    f.diag.message =
        "malformed srclint control comment; expected "
        "'srclint: allow(check-name[, check-name])'";
    out.push_back(std::move(f));
  }
  for (const AllowComment& allow : file.allows) {
    for (const std::string& check : allow.checks) {
      if (gpd::srclint::isCheckName(check)) continue;
      Finding f;
      f.file = file.relPath;
      f.diag.severity = Severity::Error;
      f.diag.code = "srclint-allow";
      f.diag.line = allow.line;
      f.diag.message = "allow() names unknown check '" + check +
                       "' (see --list-checks)";
      out.push_back(std::move(f));
    }
  }
  return out;
}

void renderJsonFindings(std::ostream& os, const std::vector<Finding>& all) {
  os << "[";
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Finding& f = all[i];
    if (i != 0) os << ",";
    os << "\n  {\"file\": \"" << gpd::analyze::jsonEscape(f.file)
       << "\", \"severity\": \"" << gpd::analyze::toString(f.diag.severity)
       << "\", \"code\": \"" << gpd::analyze::jsonEscape(f.diag.code)
       << "\", \"line\": " << f.diag.line << ", \"message\": \""
       << gpd::analyze::jsonEscape(f.diag.message) << "\"}";
  }
  os << (all.empty() ? "]" : "\n]") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  Options opt;
  std::string error;
  if (!parseArgs(args, &opt, &error)) {
    std::cerr << "srclint: " << error << "\n";
    usage(std::cerr);
    return kExitUsage;
  }
  if (opt.listChecks) {
    for (const std::string& name : gpd::srclint::checkNames()) {
      std::cout << name << "\n";
    }
    return kExitClean;
  }
  if (opt.frontend == "clang" && !gpd::srclint::clangFrontendAvailable()) {
    std::cerr << "srclint: this build has no libclang; rebuild with "
                 "GPD_SRCLINT and a clang-c SDK, or use --frontend=token\n";
    return kExitUsage;
  }
  if (opt.paths.empty() && opt.compileCommands.empty()) {
    std::cerr << "srclint: no input paths\n";
    usage(std::cerr);
    return kExitUsage;
  }

  std::vector<std::string> files;
  if (!gatherFiles(opt, &files, &error)) {
    std::cerr << "srclint: " << error << "\n";
    return kExitUsage;
  }

  try {
    std::vector<FileModel> models;
    models.reserve(files.size());
    for (const std::string& path : files) {
      FileModel model;
      if (!loadFile(path, opt.frontend, &model, &error)) {
        std::cerr << "srclint: " << error << "\n";
        return kExitUsage;
      }
      models.push_back(std::move(model));
    }

    const gpd::srclint::Context ctx = gpd::srclint::buildContext(models);

    std::vector<Finding> emitted;   // unsuppressed — drive the exit code
    std::map<std::string, int> found;
    std::map<std::string, int> allowed;
    for (const FileModel& model : models) {
      for (const std::string& check : gpd::srclint::checkNames()) {
        if (!opt.checks.empty() && opt.checks.count(check) == 0) continue;
        for (Finding& f : gpd::srclint::runCheck(check, model, ctx)) {
          ++found[check];
          if (isAllowed(model, f)) {
            ++allowed[check];
            continue;
          }
          emitted.push_back(std::move(f));
        }
      }
      for (Finding& f : allowDiagnostics(model)) {
        ++found[f.diag.code];
        emitted.push_back(std::move(f));
      }
    }

    if (opt.format == "json") {
      renderJsonFindings(std::cout, emitted);
    } else {
      // Group by file, preserving scan order, and reuse the PR 2 renderer.
      std::vector<std::string> order;
      std::map<std::string, std::vector<Diagnostic>> byFile;
      for (const Finding& f : emitted) {
        if (byFile.find(f.file) == byFile.end()) order.push_back(f.file);
        byFile[f.file].push_back(f.diag);
      }
      for (const std::string& file : order) {
        gpd::analyze::renderText(std::cout, file, byFile[file]);
      }
    }

    if (opt.stats) {
      std::cerr << "== srclint stats ==\n";
      for (const std::string& check : gpd::srclint::checkNames()) {
        std::cerr << check << ": " << found[check] << " finding(s), "
                  << allowed[check] << " allowed\n";
      }
      if (found.count("srclint-allow") != 0) {
        std::cerr << "srclint-allow: " << found["srclint-allow"]
                  << " finding(s), 0 allowed\n";
      }
      std::cerr << "files scanned: " << models.size() << "\n"
                << "frontend: "
                << (opt.frontend == "auto"
                        ? (gpd::srclint::clangFrontendAvailable() ? "clang"
                                                                  : "token")
                        : opt.frontend)
                << "\n";
    }

    return emitted.empty() ? kExitClean : kExitFindings;
  } catch (const std::exception& e) {
    std::cerr << "srclint: internal error: " << e.what() << "\n";
    return kExitInternal;
  }
}
