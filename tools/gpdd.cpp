// gpdd — the long-lived multi-tenant detection service.
//
// Front-ends a gpd::service::Engine with two byte-stream transports:
//
//   gpdd [flags]                 stdin/stdout pipe pair (one endpoint; this
//                                is how the chaos harness drives it)
//   gpdd --socket PATH [flags]   UNIX-domain socket, one endpoint per
//                                connection; responses route back to the
//                                connection whose command caused them
//
// Wire format: length-prefixed checksummed frames (service/frame.h) whose
// payloads are engine protocol commands (service/engine.h). The decoder
// resynchronizes across garbage, so a corrupted region costs only the
// frames it covered — unless --strict-proto, where any damaged byte is an
// InputError (exit 1).
//
// Service flags:
//   --shards N          engine shards (default 8)
//   --threads N         par::Pool workers for the shard phase (default:
//                       GPD_THREADS, else sequential); verdicts and
//                       responses are identical for any N
//   --max-sessions N    global concurrent-session cap
//   --max-per-tenant N  per-tenant concurrent-session cap
//   --rate-bytes N      per-tenant EV/EVB payload bytes accepted per pump
//   --mem-watermark B   estimated-bytes watermark arming the overload
//                       ladder (reject new → degrade in place → shed)
//   --idle-pumps N      shed sessions idle for N pumps
//   --max-combinations N / --budget-ms D   per-session budget
//   --window W --retries K --timeout T --queue-limit Q
//   --degrade-on-overflow --max-comparisons-per-report C
//                       per-session MonitorSession/monitor options
//
// Robustness flags:
//   --checkpoint FILE   manifest chain head; every CHECKPOINT command and
//                       every --checkpoint-every N pumps captures a
//                       checkpoint through the ManifestLog (full manifest
//                       at FILE, deltas beside it), plus one final full on
//                       graceful shutdown
//   --checkpoint-every N  periodic checkpoint cadence, in pumps
//   --full-every N      every N-th checkpoint is a full manifest; the ones
//                       between are deltas holding only dirtied sessions
//                       (default 1 = always full)
//   --recover           restore from the --checkpoint chain (full manifest
//                       plus its deltas, in order) before serving; a
//                       missing or corrupt link is an InputError
//   --stats-dump FILE   atomically rewrite FILE with one JSON object
//                       (engine stats + the gpd::obs registry) every
//                       --stats-every N pumps (default 200)
//   --strict-proto      any discarded byte / truncated frame is fatal
//
// High availability (service/replica.h):
//   --replication-socket PATH   leader: accept one hot-standby follower
//                       here and stream it a snapshot plus every pump
//                       (commands + checkpoint records) before clients see
//                       the pump's responses
//   --follow PATH       follower: consume the leader's stream at PATH,
//                       replaying every pump into a local engine; when the
//                       stream dies (EOF or silence past the deadline),
//                       promote: emit PROMOTED, the unflushed response
//                       frames, and RESUME <token> on stdout, then serve
//   --failover-after-ms MS      follower's silence deadline (default 2000)
//
// SIGTERM/SIGINT drain gracefully: pending decoded frames are executed,
// every open session is settled, the final manifest is written, and only
// then are the VERDICT frames flushed and the fds closed (durability before
// acknowledgment, even on the way out), exit 0. SIGKILL is the crash the
// manifest chain and the follower exist for.
//
// Exit code: 0 = clean shutdown/drain, 1 = bad input (flags, bind failure,
// corrupt recovery manifest, replication divergence, strict-mode protocol
// violation), 2 = internal failure (a library invariant broke).
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "io/checkpoint_io.h"
#include "obs/metrics.h"
#include "par/pool.h"
#include "service/engine.h"
#include "service/frame.h"
#include "service/manifest_log.h"
#include "service/replica.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "version.h"

namespace {

using namespace gpd;

volatile std::sig_atomic_t gStop = 0;

void onSignal(int) { gStop = 1; }

int usage() {
  std::cerr
      << "usage: gpdd [--socket PATH] [--shards N] [--threads N]\n"
      << "            [--max-sessions N] [--max-per-tenant N] [--rate-bytes N]\n"
      << "            [--mem-watermark BYTES] [--idle-pumps N]\n"
      << "            [--max-combinations N] [--budget-ms D]\n"
      << "            [--window W] [--retries K] [--timeout T]\n"
      << "            [--queue-limit Q] [--degrade-on-overflow]\n"
      << "            [--max-comparisons-per-report C]\n"
      << "            [--checkpoint FILE] [--checkpoint-every N]\n"
      << "            [--full-every N] [--recover]\n"
      << "            [--replication-socket PATH]\n"
      << "            [--follow PATH] [--failover-after-ms MS]\n"
      << "            [--stats-dump FILE] [--stats-every N] [--strict-proto]\n"
      << "       gpdd --version\n";
  return 1;
}

long long parseInt(const std::string& word, const char* what) {
  std::size_t used = 0;
  long long v = 0;
  try {
    v = std::stoll(word, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  GPD_INPUT_CHECK(used == word.size() && !word.empty(),
                  "'" << word << "' is not an integer (" << what << ")");
  return v;
}

struct Options {
  std::string socketPath;
  int threads = par::envThreads();
  std::string checkpointPath;
  std::uint64_t checkpointEvery = 0;
  std::uint64_t fullEvery = 1;
  bool recover = false;
  std::string statsDumpPath;
  std::uint64_t statsEvery = 200;
  bool strictProto = false;
  std::string replicationSocket;
  std::string followPath;
  std::uint64_t failoverAfterMs = 2000;
  service::EngineOptions engine;
};

Options parseFlags(const std::vector<std::string>& args) {
  Options o;
  auto need = [&](std::size_t i) -> const std::string& {
    GPD_INPUT_CHECK(i < args.size(), "flag '" << args[i - 1]
                                              << "' needs a value");
    return args[i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--socket") {
      o.socketPath = need(++i);
    } else if (a == "--shards") {
      o.engine.shards = static_cast<int>(parseInt(need(++i), "--shards"));
      GPD_INPUT_CHECK(o.engine.shards >= 1 && o.engine.shards <= 1024,
                      "--shards out of range");
    } else if (a == "--threads") {
      o.threads = static_cast<int>(parseInt(need(++i), "--threads"));
      GPD_INPUT_CHECK(o.threads >= 0 && o.threads <= 1024,
                      "--threads out of range");
    } else if (a == "--max-sessions") {
      o.engine.maxSessions =
          static_cast<std::size_t>(parseInt(need(++i), "--max-sessions"));
    } else if (a == "--max-per-tenant") {
      o.engine.maxSessionsPerTenant =
          static_cast<std::size_t>(parseInt(need(++i), "--max-per-tenant"));
    } else if (a == "--rate-bytes") {
      o.engine.tenantRateBytesPerPump =
          static_cast<std::uint64_t>(parseInt(need(++i), "--rate-bytes"));
    } else if (a == "--mem-watermark") {
      o.engine.memWatermarkBytes =
          static_cast<std::uint64_t>(parseInt(need(++i), "--mem-watermark"));
    } else if (a == "--idle-pumps") {
      o.engine.idleTimeoutPumps =
          static_cast<std::uint64_t>(parseInt(need(++i), "--idle-pumps"));
    } else if (a == "--max-combinations") {
      o.engine.sessionMaxCombinations = static_cast<std::uint64_t>(
          parseInt(need(++i), "--max-combinations"));
    } else if (a == "--budget-ms") {
      o.engine.sessionBudgetMs =
          static_cast<std::uint64_t>(parseInt(need(++i), "--budget-ms"));
    } else if (a == "--window") {
      o.engine.session.reorderWindow =
          static_cast<std::size_t>(parseInt(need(++i), "--window"));
      GPD_INPUT_CHECK(o.engine.session.reorderWindow >= 1,
                      "--window must be >= 1");
    } else if (a == "--retries") {
      o.engine.session.maxRetries =
          static_cast<int>(parseInt(need(++i), "--retries"));
      GPD_INPUT_CHECK(o.engine.session.maxRetries >= 1,
                      "--retries must be >= 1");
    } else if (a == "--timeout") {
      o.engine.session.retryTimeout =
          static_cast<std::uint64_t>(parseInt(need(++i), "--timeout"));
      GPD_INPUT_CHECK(o.engine.session.retryTimeout >= 1,
                      "--timeout must be >= 1");
    } else if (a == "--queue-limit") {
      o.engine.session.monitor.maxQueuePerProcess =
          static_cast<std::size_t>(parseInt(need(++i), "--queue-limit"));
    } else if (a == "--degrade-on-overflow") {
      o.engine.session.monitor.overflowPolicy =
          monitor::OverflowPolicy::Degrade;
    } else if (a == "--max-comparisons-per-report") {
      o.engine.session.monitor.maxComparisonsPerReport =
          static_cast<std::uint64_t>(
              parseInt(need(++i), "--max-comparisons-per-report"));
    } else if (a == "--checkpoint") {
      o.checkpointPath = need(++i);
    } else if (a == "--checkpoint-every") {
      o.checkpointEvery = static_cast<std::uint64_t>(
          parseInt(need(++i), "--checkpoint-every"));
      GPD_INPUT_CHECK(o.checkpointEvery >= 1,
                      "--checkpoint-every must be >= 1");
    } else if (a == "--full-every") {
      o.fullEvery =
          static_cast<std::uint64_t>(parseInt(need(++i), "--full-every"));
      GPD_INPUT_CHECK(o.fullEvery >= 1, "--full-every must be >= 1");
    } else if (a == "--recover") {
      o.recover = true;
    } else if (a == "--replication-socket") {
      o.replicationSocket = need(++i);
    } else if (a == "--follow") {
      o.followPath = need(++i);
    } else if (a == "--failover-after-ms") {
      o.failoverAfterMs = static_cast<std::uint64_t>(
          parseInt(need(++i), "--failover-after-ms"));
      GPD_INPUT_CHECK(o.failoverAfterMs >= 1,
                      "--failover-after-ms must be >= 1");
    } else if (a == "--stats-dump") {
      o.statsDumpPath = need(++i);
    } else if (a == "--stats-every") {
      o.statsEvery =
          static_cast<std::uint64_t>(parseInt(need(++i), "--stats-every"));
      GPD_INPUT_CHECK(o.statsEvery >= 1, "--stats-every must be >= 1");
    } else if (a == "--strict-proto") {
      o.strictProto = true;
    } else {
      usage();
      GPD_INPUT_CHECK(false, "unknown flag '" << a << "'");
    }
  }
  GPD_INPUT_CHECK(!o.recover || !o.checkpointPath.empty(),
                  "--recover needs --checkpoint FILE");
  GPD_INPUT_CHECK(o.checkpointEvery == 0 || !o.checkpointPath.empty(),
                  "--checkpoint-every needs --checkpoint FILE");
  GPD_INPUT_CHECK(o.followPath.empty() || !o.recover,
                  "--follow gets its state from the leader, not --recover");
  GPD_INPUT_CHECK(o.followPath.empty() || o.replicationSocket.empty(),
                  "--follow and --replication-socket are mutually exclusive");
  return o;
}

// One transport endpoint. Keyed by a monotonically assigned origin id, not
// by fd: the kernel reuses fds the moment a connection closes, and keying
// by fd would route a dead client's late responses to whoever inherited
// its number.
struct Conn {
  int readFd = -1;
  int writeFd = -1;
  service::FrameDecoder decoder;
  bool eof = false;
  std::uint64_t reportedDiscarded = 0;  // decoder bytes already counted
};

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void writeAll(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // endpoint gone (EPIPE etc.): responses to it are moot
    }
    off += static_cast<std::size_t>(n);
  }
}

// Bounded write to a nonblocking fd: polls for writability between chunks
// and gives up after `timeoutMs` of no progress. Returns false when the
// peer is gone or wedged — the replication path uses this so a stalled
// follower can never stall the leader's clients.
bool writeAllTimed(int fd, const std::string& bytes, int timeoutMs) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      const int r = ::poll(&p, 1, timeoutMs);
      if (r <= 0 || (p.revents & (POLLERR | POLLHUP)) != 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

void dumpStats(const service::Engine& engine, const std::string& path) {
  std::ostringstream os;
  os << "{\"engine\":" << engine.statsJson() << ",\"obs\":";
  obs::renderMetricsJson(os, obs::registry());
  os << "}\n";
  io::atomicWriteFile(path, os.str());
}

int listenOn(const std::string& path) {
  // strerror below: gpdd's listen/accept path is single-threaded (the pool
  // only runs detection kernels), so the static buffer cannot race.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  GPD_INPUT_CHECK(fd >= 0, "cannot create UNIX socket: "
                               << strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  GPD_INPUT_CHECK(path.size() < sizeof(addr.sun_path),
                  "socket path too long: '" << path << "'");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    GPD_INPUT_CHECK(false, "cannot bind '"
                               << path << "': "
                               << strerror(err));  // NOLINT(concurrency-mt-unsafe)
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    GPD_INPUT_CHECK(false, "cannot listen on '"
                               << path << "': "
                               << strerror(err));  // NOLINT(concurrency-mt-unsafe)
  }
  setNonBlocking(fd);
  return fd;
}

int connectTo(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// The serve loop shared by a fresh leader, a recovered leader, and a
// promoted follower. `log` (optional) owns the on-disk checkpoint chain;
// `prelude` is raw frame bytes flushed to stdout before serving (the
// promotion announcement).
int serveLoop(const Options& o, std::unique_ptr<service::Engine> engine,
              service::ManifestLog* log, const std::string& prelude) {
  std::unique_ptr<par::Pool> pool;
  if (o.threads > 1) pool = std::make_unique<par::Pool>(o.threads);

  int listenFd = -1;
  int nextOrigin = 1;
  std::map<int, Conn> conns;  // keyed by origin
  if (o.socketPath.empty()) {
    // The pipe (or file) feeding stdin is dedicated to this process; make it
    // nonblocking so the drain loop below can never stall mid-chunk.
    setNonBlocking(0);
    conns[0] = Conn{0, 1, {}, false, 0};
  } else {
    listenFd = listenOn(o.socketPath);
  }

  int replListenFd = -1;
  int followerFd = -1;
  if (!o.replicationSocket.empty()) replListenFd = listenOn(o.replicationSocket);

  auto dropFollower = [&]() {
    if (followerFd >= 0) {
      ::close(followerFd);
      followerFd = -1;
      GPD_OBS_COUNTER_ADD("gpdd_follower_drops", 1);
    }
  };
  auto sendToFollower = [&](const std::vector<std::string>& records) {
    if (followerFd < 0) return;
    std::string bytes;
    for (const std::string& rec : records) bytes += service::encodeFrame(rec);
    if (!writeAllTimed(followerFd, bytes, 5000)) dropFollower();
  };

  if (!prelude.empty()) writeAll(1, prelude);

  std::uint64_t pumpsSinceCheckpoint = 0;
  std::uint64_t pumpsSinceStats = 0;
  char buf[1 << 16];
  while (gStop == 0 && !engine->shutdownRequested()) {
    // ---- Gather readable endpoints ----
    std::vector<pollfd> fds;
    if (listenFd >= 0) fds.push_back({listenFd, POLLIN, 0});
    if (replListenFd >= 0) fds.push_back({replListenFd, POLLIN, 0});
    for (auto& [origin, conn] : conns) {
      if (!conn.eof) fds.push_back({conn.readFd, POLLIN, 0});
    }
    const bool stdioDone =
        o.socketPath.empty() && (conns.empty() || conns.begin()->second.eof);
    if (fds.empty() && !stdioDone && listenFd < 0 && replListenFd < 0) break;
    if (!fds.empty()) {
      const int r = ::poll(fds.data(), fds.size(), 10);
      if (r < 0 && errno != EINTR) break;
    }
    if (listenFd >= 0) {
      for (;;) {
        const int cfd = ::accept(listenFd, nullptr, nullptr);
        if (cfd < 0) break;
        setNonBlocking(cfd);
        conns[nextOrigin++] = Conn{cfd, cfd, {}, false, 0};
      }
    }
    if (replListenFd >= 0) {
      for (;;) {
        const int cfd = ::accept(replListenFd, nullptr, nullptr);
        if (cfd < 0) break;
        dropFollower();  // a new follower replaces the old one
        setNonBlocking(cfd);
        followerFd = cfd;
        // Seed the replica from a forced-full capture taken through the
        // log, so the disk chain and the replication stream share one
        // parent from here on.
        const service::CheckpointCapture snap =
            log ? log->store(*engine, /*forceFull=*/true)
                : engine->captureCheckpoint(/*preferDelta=*/false);
        if (log) pumpsSinceCheckpoint = 0;
        std::vector<std::string> records;
        records.push_back(service::captureHelloRecord());
        for (std::string& rec : service::captureSnapshotRecord(snap)) {
          records.push_back(std::move(rec));
        }
        sendToFollower(records);
        if (followerFd >= 0) {
          std::cerr << "gpdd: follower attached (snapshot epoch "
                    << snap.epoch << ")\n";
        }
      }
    }
    std::vector<int> dead;
    std::vector<service::ReplicatedCmd> batch;
    for (auto& [origin, conn] : conns) {
      if (conn.eof) continue;
      // Nonblocking reads for sockets; the stdio fd blocks only while poll
      // said it is readable, so drain one chunk per loop there too.
      for (;;) {
        const ssize_t n = ::read(conn.readFd, buf, sizeof(buf));
        if (n > 0) {
          conn.decoder.feed({buf, static_cast<std::size_t>(n)});
          if (static_cast<std::size_t>(n) < sizeof(buf)) break;
          continue;
        }
        if (n == 0) {
          conn.eof = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        conn.eof = true;
        break;
      }
      while (auto payload = conn.decoder.pop()) {
        batch.push_back({origin, std::move(*payload)});
      }
      if (conn.decoder.bytesDiscarded() > conn.reportedDiscarded) {
        GPD_OBS_COUNTER_ADD("gpdd_bytes_discarded",
                            conn.decoder.bytesDiscarded() -
                                conn.reportedDiscarded);
        conn.reportedDiscarded = conn.decoder.bytesDiscarded();
      }
      if (o.strictProto) {
        GPD_INPUT_CHECK(conn.decoder.bytesDiscarded() == 0,
                        "protocol violation: " << conn.decoder.bytesDiscarded()
                                               << " bytes discarded");
        GPD_INPUT_CHECK(!conn.eof || conn.decoder.bytesPending() == 0,
                        "protocol violation: truncated frame at EOF");
      }
      if (conn.eof && origin != 0) dead.push_back(origin);
    }
    for (int origin : dead) {
      ::close(conns[origin].readFd);
      conns.erase(origin);
    }

    // ---- Replicate, then execute ----
    // The follower receives this pump's commands before the engine runs
    // them — durability (on the standby) before acknowledgment, the same
    // contract the on-disk manifest keeps. Every pump is sent, including
    // empty ones: idle sweeps are pump-indexed state changes too, and the
    // steady record stream doubles as the leader's heartbeat.
    if (followerFd >= 0) {
      sendToFollower(service::capturePumpRecord(engine->stats().pumps, batch));
    }
    for (service::ReplicatedCmd& cmd : batch) {
      engine->submit(std::move(cmd.payload), cmd.origin);
    }
    std::vector<service::Response> out;
    engine->pump(out, pool.get());

    // ---- Checkpoints and stats ----
    // Durability before acknowledgment: the manifest is written *before*
    // the pump's responses are flushed, so a client that has seen this
    // pump's OK CHECKPOINT (or the SYNC behind it) may kill -9 the server
    // and still recover this pump's state. The soak harness does exactly
    // that.
    ++pumpsSinceCheckpoint;
    ++pumpsSinceStats;
    const bool requested = engine->consumeCheckpointRequest();
    if (log != nullptr &&
        (requested || (o.checkpointEvery != 0 &&
                       pumpsSinceCheckpoint >= o.checkpointEvery))) {
      const service::CheckpointCapture cap = log->store(*engine);
      if (followerFd >= 0) {
        sendToFollower({service::captureCkptRecord(engine->stats().pumps, cap)});
      }
      pumpsSinceCheckpoint = 0;
    }
    if (!o.statsDumpPath.empty() && pumpsSinceStats >= o.statsEvery) {
      dumpStats(*engine, o.statsDumpPath);
      pumpsSinceStats = 0;
    }

    std::map<int, std::string> byOrigin;
    for (service::Response& r : out) {
      byOrigin[r.origin] += service::encodeFrame(r.payload);
    }
    for (auto& [origin, bytes] : byOrigin) {
      const auto it = conns.find(origin);
      if (it != conns.end()) {
        writeAll(it->second.writeFd, bytes);
      } else if (origin == 0 && o.socketPath.empty()) {
        writeAll(1, bytes);
      }
    }
    // Everything up to this pump is acknowledged to clients; the follower
    // can retire its retained copies.
    if (followerFd >= 0) {
      sendToFollower({service::captureFlushRecord(engine->stats().pumps)});
    }

    // Pipe mode ends when stdin is exhausted and every frame was answered.
    if (stdioDone && !engine->shutdownRequested()) break;
  }

  // ---- Graceful drain ----
  // First settle the frames that were decoded but not yet executed when the
  // signal landed: replicate and pump them like any other batch, then drain
  // the engine. The final manifest is written *before* the responses are
  // flushed — a drain is still durability before acknowledgment.
  std::vector<service::ReplicatedCmd> finalBatch;
  for (auto& [origin, conn] : conns) {
    while (auto payload = conn.decoder.pop()) {
      finalBatch.push_back({origin, std::move(*payload)});
    }
  }
  std::vector<service::Response> out;
  if (!finalBatch.empty()) {
    if (followerFd >= 0) {
      sendToFollower(
          service::capturePumpRecord(engine->stats().pumps, finalBatch));
    }
    for (service::ReplicatedCmd& cmd : finalBatch) {
      engine->submit(std::move(cmd.payload), cmd.origin);
    }
    engine->pump(out, pool.get());
  }
  engine->drain(out);
  if (log != nullptr) log->store(*engine, /*forceFull=*/true);
  if (!o.statsDumpPath.empty()) dumpStats(*engine, o.statsDumpPath);
  std::map<int, std::string> byOrigin;
  for (service::Response& r : out) {
    byOrigin[r.origin] += service::encodeFrame(r.payload);
  }
  for (auto& [origin, bytes] : byOrigin) {
    const auto it = conns.find(origin);
    if (it != conns.end()) {
      writeAll(it->second.writeFd, bytes);
    } else if (origin == 0 && o.socketPath.empty()) {
      writeAll(1, bytes);
    }
  }
  for (auto& [origin, conn] : conns) {
    if (origin != 0) ::close(conn.readFd);
  }
  dropFollower();
  if (replListenFd >= 0) {
    ::close(replListenFd);
    ::unlink(o.replicationSocket.c_str());
  }
  if (listenFd >= 0) {
    ::close(listenFd);
    ::unlink(o.socketPath.c_str());
  }
  return 0;
}

// Hot-standby mode: replay the leader's stream until it dies, then promote
// and serve in its place.
int runFollower(const Options& o) {
  std::unique_ptr<service::ManifestLog> log;
  if (!o.checkpointPath.empty()) {
    log = std::make_unique<service::ManifestLog>(o.checkpointPath,
                                                 o.fullEvery);
  }
  service::ReplicationFollower follower(
      o.engine, log ? [&log](const service::CheckpointCapture& cap) {
        log->persist(cap);
      } : std::function<void(const service::CheckpointCapture&)>{});

  // Connect with jittered exponential backoff: a follower typically starts
  // while the leader is still binding its socket.
  Stopwatch connecting;
  Rng rng;
  std::uint64_t backoffMs = 10;
  int fd = -1;
  while (gStop == 0) {
    fd = connectTo(o.followPath);
    if (fd >= 0) break;
    GPD_INPUT_CHECK(
        connecting.elapsedMillis() < static_cast<double>(o.failoverAfterMs),
        "cannot reach leader at '" << o.followPath
                                   << "' within the failover deadline");
    const auto jittered = static_cast<int>(
        rng.uniform(static_cast<std::int64_t>(backoffMs / 2),
                    static_cast<std::int64_t>(backoffMs)));
    ::poll(nullptr, 0, jittered);
    backoffMs = backoffMs * 2 < 200 ? backoffMs * 2 : 200;
  }
  if (gStop != 0) {
    if (fd >= 0) ::close(fd);
    return 0;
  }
  setNonBlocking(fd);

  service::FrameDecoder decoder;
  Stopwatch silence;
  char buf[1 << 16];
  bool leaderGone = false;
  while (gStop == 0 && !leaderGone) {
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, 10);
    if (r < 0 && errno != EINTR) break;
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        decoder.feed({buf, static_cast<std::size_t>(n)});
        silence.reset();
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {
        leaderGone = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      leaderGone = true;
      break;
    }
    while (auto payload = decoder.pop()) {
      follower.consume(*payload);
    }
    if (silence.elapsedMillis() > static_cast<double>(o.failoverAfterMs)) {
      leaderGone = true;  // heartbeat (the pump stream) went quiet
    }
  }
  ::close(fd);
  if (gStop != 0) return 0;  // terminated while on standby: nothing to save

  // ---- Promote ----
  service::ReplicationFollower::Promotion promo = follower.promote();
  GPD_OBS_COUNTER_ADD("gpdd_promotions", 1);
  std::cerr << "gpdd: leader gone; promoted at pump "
            << promo.engine->stats().pumps << " (replayed " << promo.pumps
            << " pumps, epoch " << promo.engine->checkpointEpoch() << ")\n";
  std::string prelude = service::encodeFrame(
      "PROMOTED " + std::to_string(promo.engine->stats().pumps) + " " +
      std::to_string(promo.engine->checkpointEpoch()));
  for (const service::Response& r : promo.retained) {
    prelude += service::encodeFrame(r.payload);
  }
  prelude += service::encodeFrame(
      "RESUME " + (promo.lastSyncToken.empty() ? std::string("-")
                                               : promo.lastSyncToken));
  return serveLoop(o, std::move(promo.engine), log.get(), prelude);
}

int runService(const Options& o) {
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);
  if (!o.followPath.empty()) return runFollower(o);

  std::unique_ptr<service::ManifestLog> log;
  if (!o.checkpointPath.empty()) {
    log = std::make_unique<service::ManifestLog>(o.checkpointPath,
                                                 o.fullEvery);
  }
  std::unique_ptr<service::Engine> engine;
  if (o.recover) {
    engine = log->recover(o.engine);
    std::cerr << "gpdd: recovered " << engine->openSessions()
              << " sessions from '" << o.checkpointPath << "' (+"
              << log->deltasSinceFull() << " deltas, epoch "
              << engine->checkpointEpoch() << ")\n";
  } else {
    engine = std::make_unique<service::Engine>(o.engine);
  }
  return serveLoop(o, std::move(engine), log.get(), {});
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 1 && (args[0] == "--version" || args[0] == "version")) {
      std::cout << gpd::tools::versionLine("gpdd") << '\n';
      return 0;
    }
    return runService(parseFlags(args));
  } catch (const gpd::InputError& e) {
    std::cerr << "gpdd: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "gpdd: internal failure: " << e.what() << '\n';
    return 2;
  }
}
