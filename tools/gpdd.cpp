// gpdd — the long-lived multi-tenant detection service.
//
// Front-ends a gpd::service::Engine with two byte-stream transports:
//
//   gpdd [flags]                 stdin/stdout pipe pair (one endpoint; this
//                                is how the chaos harness drives it)
//   gpdd --socket PATH [flags]   UNIX-domain socket, one endpoint per
//                                connection; responses route back to the
//                                connection whose command caused them
//
// Wire format: length-prefixed checksummed frames (service/frame.h) whose
// payloads are engine protocol commands (service/engine.h). The decoder
// resynchronizes across garbage, so a corrupted region costs only the
// frames it covered — unless --strict-proto, where any damaged byte is an
// InputError (exit 1).
//
// Service flags:
//   --shards N          engine shards (default 8)
//   --threads N         par::Pool workers for the shard phase (default:
//                       GPD_THREADS, else sequential); verdicts and
//                       responses are identical for any N
//   --max-sessions N    global concurrent-session cap
//   --max-per-tenant N  per-tenant concurrent-session cap
//   --rate-bytes N      per-tenant EV/EVB payload bytes accepted per pump
//   --mem-watermark B   estimated-bytes watermark arming the overload
//                       ladder (reject new → degrade in place → shed)
//   --idle-pumps N      shed sessions idle for N pumps
//   --max-combinations N / --budget-ms D   per-session budget
//   --window W --retries K --timeout T --queue-limit Q
//   --degrade-on-overflow --max-comparisons-per-report C
//                       per-session MonitorSession/monitor options
//
// Robustness flags:
//   --checkpoint FILE   manifest chain head; every CHECKPOINT command and
//                       every --checkpoint-every N pumps captures a
//                       checkpoint through the ManifestLog (full manifest
//                       at FILE, deltas beside it), plus one final full on
//                       graceful shutdown
//   --checkpoint-every N  periodic checkpoint cadence, in pumps
//   --full-every N      every N-th checkpoint is a full manifest; the ones
//                       between are deltas holding only dirtied sessions
//                       (default 1 = always full)
//   --recover           restore from the --checkpoint chain (full manifest
//                       plus its deltas, in order) before serving; a
//                       missing or corrupt link is an InputError
//   --stats-dump FILE   atomically rewrite FILE with one JSON object
//                       (engine stats + the gpd::obs registry) every
//                       --stats-every N pumps (default 200)
//   --strict-proto      any discarded byte / truncated frame is fatal
//
// Telemetry (DESIGN.md §16):
//   --telemetry-file FILE     atomically rewrite FILE with an OpenMetrics
//                       text exposition (obs registry + service gauges +
//                       gpdd_build_info) every --telemetry-every N pumps
//                       (default 200) and once at drain; `gpdtool scrape`
//                       parses and pretty-prints it
//   --telemetry-socket PATH   UNIX socket; each connection receives one
//                       exposition snapshot and is closed (a scrape)
//   --flight-recorder FILE    arm the crash flight recorder: a mmap-backed
//                       ring of the last --flight-slots events (pump
//                       summaries, admission decisions, replication
//                       events) that survives SIGKILL; fatal signals
//                       (SIGSEGV/SIGABRT), CheckFailure quarantine, and
//                       SIGTERM drain additionally dump FILE.postmortem
//   --flight-slots N    ring capacity in events (default 256)
//   --log-level L       debug|info|warn|error (default info)
//   --log-json          structured JSON-lines log output instead of text
//
// High availability (service/replica.h):
//   --replication-socket PATH   leader: accept one hot-standby follower
//                       here and stream it a snapshot plus every pump
//                       (commands + checkpoint records) before clients see
//                       the pump's responses
//   --follow PATH       follower: consume the leader's stream at PATH,
//                       replaying every pump into a local engine; when the
//                       stream dies (EOF or silence past the deadline),
//                       promote: emit PROMOTED, the unflushed response
//                       frames, and RESUME <token> on stdout, then serve
//   --failover-after-ms MS      follower's silence deadline (default 2000)
//
// SIGTERM/SIGINT drain gracefully: pending decoded frames are executed,
// every open session is settled, the final manifest is written, and only
// then are the VERDICT frames flushed and the fds closed (durability before
// acknowledgment, even on the way out), exit 0. SIGKILL is the crash the
// manifest chain and the follower exist for.
//
// Exit code: 0 = clean shutdown/drain, 1 = bad input (flags, bind failure,
// corrupt recovery manifest, replication divergence, strict-mode protocol
// violation), 2 = internal failure (a library invariant broke).
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "io/checkpoint_io.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "par/pool.h"
#include "service/engine.h"
#include "service/frame.h"
#include "service/manifest_log.h"
#include "service/replica.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "version.h"

namespace {

using namespace gpd;

volatile std::sig_atomic_t gStop = 0;

void onSignal(int) { gStop = 1; }

// The flight recorder outlives every scope so the fatal-signal handler can
// reach it; gPostmortemPath is pre-formatted at arm time because a SIGSEGV
// handler must not touch the heap.
obs::FlightRecorder gRecorder;
char gPostmortemPath[512] = {0};

void onFatalSignal(int sig) {
  if (gPostmortemPath[0] != '\0') {
    gRecorder.dumpNow(gPostmortemPath, sig == SIGSEGV ? "sigsegv" : "sigabrt");
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

int usage() {
  obs::log::rawStderr()
      << "usage: gpdd [--socket PATH] [--shards N] [--threads N]\n"
      << "            [--max-sessions N] [--max-per-tenant N] [--rate-bytes N]\n"
      << "            [--mem-watermark BYTES] [--idle-pumps N]\n"
      << "            [--max-combinations N] [--budget-ms D]\n"
      << "            [--window W] [--retries K] [--timeout T]\n"
      << "            [--queue-limit Q] [--degrade-on-overflow]\n"
      << "            [--max-comparisons-per-report C] [--slice]\n"
      << "            [--checkpoint FILE] [--checkpoint-every N]\n"
      << "            [--full-every N] [--recover]\n"
      << "            [--replication-socket PATH]\n"
      << "            [--follow PATH] [--failover-after-ms MS]\n"
      << "            [--stats-dump FILE] [--stats-every N] [--strict-proto]\n"
      << "            [--telemetry-file FILE] [--telemetry-every N]\n"
      << "            [--telemetry-socket PATH]\n"
      << "            [--flight-recorder FILE] [--flight-slots N]\n"
      << "            [--log-level debug|info|warn|error] [--log-json]\n"
      << "       gpdd --version\n";
  return 1;
}

long long parseInt(const std::string& word, const char* what) {
  std::size_t used = 0;
  long long v = 0;
  try {
    v = std::stoll(word, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  GPD_INPUT_CHECK(used == word.size() && !word.empty(),
                  "'" << word << "' is not an integer (" << what << ")");
  return v;
}

struct Options {
  std::string socketPath;
  int threads = par::envThreads();
  std::string checkpointPath;
  std::uint64_t checkpointEvery = 0;
  std::uint64_t fullEvery = 1;
  bool recover = false;
  std::string statsDumpPath;
  std::uint64_t statsEvery = 200;
  std::string telemetryFile;
  std::string telemetrySocket;
  std::uint64_t telemetryEvery = 200;
  std::string flightRecorderPath;
  std::uint64_t flightSlots = 256;
  bool strictProto = false;
  std::string replicationSocket;
  std::string followPath;
  std::uint64_t failoverAfterMs = 2000;
  service::EngineOptions engine;
};

Options parseFlags(const std::vector<std::string>& args) {
  Options o;
  auto need = [&](std::size_t i) -> const std::string& {
    GPD_INPUT_CHECK(i < args.size(), "flag '" << args[i - 1]
                                              << "' needs a value");
    return args[i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--socket") {
      o.socketPath = need(++i);
    } else if (a == "--shards") {
      o.engine.shards = static_cast<int>(parseInt(need(++i), "--shards"));
      GPD_INPUT_CHECK(o.engine.shards >= 1 && o.engine.shards <= 1024,
                      "--shards out of range");
    } else if (a == "--threads") {
      o.threads = static_cast<int>(parseInt(need(++i), "--threads"));
      GPD_INPUT_CHECK(o.threads >= 0 && o.threads <= 1024,
                      "--threads out of range");
    } else if (a == "--max-sessions") {
      o.engine.maxSessions =
          static_cast<std::size_t>(parseInt(need(++i), "--max-sessions"));
    } else if (a == "--max-per-tenant") {
      o.engine.maxSessionsPerTenant =
          static_cast<std::size_t>(parseInt(need(++i), "--max-per-tenant"));
    } else if (a == "--rate-bytes") {
      o.engine.tenantRateBytesPerPump =
          static_cast<std::uint64_t>(parseInt(need(++i), "--rate-bytes"));
    } else if (a == "--mem-watermark") {
      o.engine.memWatermarkBytes =
          static_cast<std::uint64_t>(parseInt(need(++i), "--mem-watermark"));
    } else if (a == "--idle-pumps") {
      o.engine.idleTimeoutPumps =
          static_cast<std::uint64_t>(parseInt(need(++i), "--idle-pumps"));
    } else if (a == "--max-combinations") {
      o.engine.sessionMaxCombinations = static_cast<std::uint64_t>(
          parseInt(need(++i), "--max-combinations"));
    } else if (a == "--budget-ms") {
      o.engine.sessionBudgetMs =
          static_cast<std::uint64_t>(parseInt(need(++i), "--budget-ms"));
    } else if (a == "--window") {
      o.engine.session.reorderWindow =
          static_cast<std::size_t>(parseInt(need(++i), "--window"));
      GPD_INPUT_CHECK(o.engine.session.reorderWindow >= 1,
                      "--window must be >= 1");
    } else if (a == "--retries") {
      o.engine.session.maxRetries =
          static_cast<int>(parseInt(need(++i), "--retries"));
      GPD_INPUT_CHECK(o.engine.session.maxRetries >= 1,
                      "--retries must be >= 1");
    } else if (a == "--timeout") {
      o.engine.session.retryTimeout =
          static_cast<std::uint64_t>(parseInt(need(++i), "--timeout"));
      GPD_INPUT_CHECK(o.engine.session.retryTimeout >= 1,
                      "--timeout must be >= 1");
    } else if (a == "--queue-limit") {
      o.engine.session.monitor.maxQueuePerProcess =
          static_cast<std::size_t>(parseInt(need(++i), "--queue-limit"));
    } else if (a == "--degrade-on-overflow") {
      o.engine.session.monitor.overflowPolicy =
          monitor::OverflowPolicy::Degrade;
    } else if (a == "--max-comparisons-per-report") {
      o.engine.session.monitor.maxComparisonsPerReport =
          static_cast<std::uint64_t>(
              parseInt(need(++i), "--max-comparisons-per-report"));
    } else if (a == "--slice") {
      // Every session maintains the online slice (monitor/slice.h); the
      // aggregates surface as slice_* STATS keys and gpdd_slice_* gauges.
      o.engine.session.enableSlice = true;
    } else if (a == "--checkpoint") {
      o.checkpointPath = need(++i);
    } else if (a == "--checkpoint-every") {
      o.checkpointEvery = static_cast<std::uint64_t>(
          parseInt(need(++i), "--checkpoint-every"));
      GPD_INPUT_CHECK(o.checkpointEvery >= 1,
                      "--checkpoint-every must be >= 1");
    } else if (a == "--full-every") {
      o.fullEvery =
          static_cast<std::uint64_t>(parseInt(need(++i), "--full-every"));
      GPD_INPUT_CHECK(o.fullEvery >= 1, "--full-every must be >= 1");
    } else if (a == "--recover") {
      o.recover = true;
    } else if (a == "--replication-socket") {
      o.replicationSocket = need(++i);
    } else if (a == "--follow") {
      o.followPath = need(++i);
    } else if (a == "--failover-after-ms") {
      o.failoverAfterMs = static_cast<std::uint64_t>(
          parseInt(need(++i), "--failover-after-ms"));
      GPD_INPUT_CHECK(o.failoverAfterMs >= 1,
                      "--failover-after-ms must be >= 1");
    } else if (a == "--stats-dump") {
      o.statsDumpPath = need(++i);
    } else if (a == "--stats-every") {
      o.statsEvery =
          static_cast<std::uint64_t>(parseInt(need(++i), "--stats-every"));
      GPD_INPUT_CHECK(o.statsEvery >= 1, "--stats-every must be >= 1");
    } else if (a == "--telemetry-file") {
      o.telemetryFile = need(++i);
    } else if (a == "--telemetry-socket") {
      o.telemetrySocket = need(++i);
    } else if (a == "--telemetry-every") {
      o.telemetryEvery =
          static_cast<std::uint64_t>(parseInt(need(++i), "--telemetry-every"));
      GPD_INPUT_CHECK(o.telemetryEvery >= 1, "--telemetry-every must be >= 1");
    } else if (a == "--flight-recorder") {
      o.flightRecorderPath = need(++i);
    } else if (a == "--flight-slots") {
      o.flightSlots =
          static_cast<std::uint64_t>(parseInt(need(++i), "--flight-slots"));
      GPD_INPUT_CHECK(o.flightSlots >= 1 && o.flightSlots <= (1u << 20),
                      "--flight-slots out of range");
    } else if (a == "--log-level") {
      obs::log::setLevel(obs::log::parseLevel(need(++i)));
    } else if (a == "--log-json") {
      obs::log::setFormat(obs::log::Format::kJson);
    } else if (a == "--strict-proto") {
      o.strictProto = true;
    } else {
      usage();
      GPD_INPUT_CHECK(false, "unknown flag '" << a << "'");
    }
  }
  GPD_INPUT_CHECK(!o.recover || !o.checkpointPath.empty(),
                  "--recover needs --checkpoint FILE");
  GPD_INPUT_CHECK(o.checkpointEvery == 0 || !o.checkpointPath.empty(),
                  "--checkpoint-every needs --checkpoint FILE");
  GPD_INPUT_CHECK(o.followPath.empty() || !o.recover,
                  "--follow gets its state from the leader, not --recover");
  GPD_INPUT_CHECK(o.followPath.empty() || o.replicationSocket.empty(),
                  "--follow and --replication-socket are mutually exclusive");
  return o;
}

// One transport endpoint. Keyed by a monotonically assigned origin id, not
// by fd: the kernel reuses fds the moment a connection closes, and keying
// by fd would route a dead client's late responses to whoever inherited
// its number.
struct Conn {
  int readFd = -1;
  int writeFd = -1;
  service::FrameDecoder decoder;
  bool eof = false;
  std::uint64_t reportedDiscarded = 0;  // decoder bytes already counted
};

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void writeAll(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // endpoint gone (EPIPE etc.): responses to it are moot
    }
    off += static_cast<std::size_t>(n);
  }
}

// Bounded write to a nonblocking fd: polls for writability between chunks
// and gives up after `timeoutMs` of no progress. Returns false when the
// peer is gone or wedged — the replication path uses this so a stalled
// follower can never stall the leader's clients.
bool writeAllTimed(int fd, const std::string& bytes, int timeoutMs) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      const int r = ::poll(&p, 1, timeoutMs);
      if (r <= 0 || (p.revents & (POLLERR | POLLHUP)) != 0) return false;
      continue;
    }
    return false;
  }
  return true;
}

void dumpStats(const service::Engine& engine, const std::string& path) {
  std::ostringstream os;
  os << "{\"engine\":" << engine.statsJson() << ",\"obs\":";
  obs::renderMetricsJson(os, obs::registry());
  os << "}\n";
  io::atomicWriteFile(path, os.str());
}

// Pre-registers the gpdd service metric inventory so a scrape always shows
// the full set — including in a GPD_OBS_DISABLED build, where the hot-path
// macros compile out but the registry (and this direct registration) stays,
// rendering the inventory as zeros.
void registerServiceMetrics() {
  static constexpr const char* kCounters[] = {
      "gpdd_bytes_discarded",    "gpdd_checkpoints_captured",
      "gpdd_deltas_applied",     "gpdd_detections",
      "gpdd_follower_drops",     "gpdd_promotions",
      "gpdd_pumps",              "gpdd_quarantine_dumps",
      "gpdd_recoveries",         "gpdd_sessions_closed",
      "gpdd_sessions_opened",    "gpdd_shed_budget",
      "gpdd_shed_idle",          "gpdd_shed_mem",
      "gpdd_degraded_mem",       "gpdd_telemetry_snapshots",
  };
  static constexpr const char* kGauges[] = {
      "gpdd_failover_gap_ms",       "gpdd_follower_staleness_ms",
      "gpdd_manifest_chain_length", "gpdd_mem_bytes",
      "gpdd_mem_level",             "gpdd_queue_depth",
      "gpdd_replication_lag_bytes", "gpdd_replication_lag_epochs",
      "gpdd_replication_lag_pumps", "gpdd_sessions_open",
      "gpdd_slice_sessions",        "gpdd_slice_notifications",
      "gpdd_slice_resolved",        "gpdd_slice_pending",
      "gpdd_slice_degraded",
  };
  static constexpr const char* kHistograms[] = {
      "gpdd_checkpoint_capture_nanos",
      "gpdd_manifest_restore_nanos",
      "gpdd_pump_nanos",
  };
  for (const char* name : kCounters) obs::registry().counter(name);
  for (const char* name : kGauges) obs::registry().gauge(name);
  for (const char* name : kHistograms) obs::registry().histogram(name);
}

// One OpenMetrics exposition snapshot: per-tenant gauges refreshed, the
// whole registry copied under its lock, and the build-identity info gauge.
std::string renderTelemetry(const service::Engine& engine) {
  engine.publishTenantMetrics();
  GPD_OBS_COUNTER_ADD("gpdd_telemetry_snapshots", 1);
  std::ostringstream os;
  obs::renderOpenMetrics(os, obs::registry().snapshot(),
                         tools::buildInfoFields());
  return os.str();
}

// Mirrors admission/overload decisions into the flight recorder and turns a
// CheckFailure quarantine — the engine sheds the poisoned session with
// reason "internal-error" — into an immediate postmortem dump: the ring
// still holds the pumps that led up to the library bug.
void scanResponses(const std::vector<service::Response>& out) {
  if (!gRecorder.armed()) return;
  static const std::string kQuarantine = " internal-error";
  for (const service::Response& r : out) {
    const std::string& p = r.payload;
    const bool shed = p.compare(0, 5, "SHED ") == 0;
    const bool degrade = p.compare(0, 8, "DEGRADE ") == 0;
    const bool err = p.compare(0, 4, "ERR ") == 0;
    if (!shed && !degrade && !err) continue;
    GPD_FR_RECORD(gRecorder, "admit", "%.120s", p.c_str());
    if (shed && p.size() >= kQuarantine.size() &&
        p.compare(p.size() - kQuarantine.size(), kQuarantine.size(),
                  kQuarantine) == 0) {
      GPD_OBS_COUNTER_ADD("gpdd_quarantine_dumps", 1);
      if (gPostmortemPath[0] != '\0') {
        gRecorder.dumpNow(gPostmortemPath, "check-failure-quarantine");
      }
      obs::log::Event(obs::log::Level::kError, "gpdd",
                      "session quarantined by CheckFailure")
          .kv("response", p);
    }
  }
}

int listenOn(const std::string& path) {
  // strerror below: gpdd's listen/accept path is single-threaded (the pool
  // only runs detection kernels), so the static buffer cannot race.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  GPD_INPUT_CHECK(fd >= 0, "cannot create UNIX socket: "
                               << strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  GPD_INPUT_CHECK(path.size() < sizeof(addr.sun_path),
                  "socket path too long: '" << path << "'");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    GPD_INPUT_CHECK(false, "cannot bind '"
                               << path << "': "
                               << strerror(err));  // NOLINT(concurrency-mt-unsafe)
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    GPD_INPUT_CHECK(false, "cannot listen on '"
                               << path << "': "
                               << strerror(err));  // NOLINT(concurrency-mt-unsafe)
  }
  setNonBlocking(fd);
  return fd;
}

int connectTo(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// The serve loop shared by a fresh leader, a recovered leader, and a
// promoted follower. `log` (optional) owns the on-disk checkpoint chain;
// `prelude` is raw frame bytes flushed to stdout before serving (the
// promotion announcement).
int serveLoop(const Options& o, std::unique_ptr<service::Engine> engine,
              service::ManifestLog* log, const std::string& prelude) {
  std::unique_ptr<par::Pool> pool;
  if (o.threads > 1) pool = std::make_unique<par::Pool>(o.threads);

  int listenFd = -1;
  int nextOrigin = 1;
  std::map<int, Conn> conns;  // keyed by origin
  if (o.socketPath.empty()) {
    // The pipe (or file) feeding stdin is dedicated to this process; make it
    // nonblocking so the drain loop below can never stall mid-chunk.
    setNonBlocking(0);
    conns[0] = Conn{0, 1, {}, false, 0};
  } else {
    listenFd = listenOn(o.socketPath);
  }

  int replListenFd = -1;
  int followerFd = -1;
  if (!o.replicationSocket.empty()) replListenFd = listenOn(o.replicationSocket);
  int telListenFd = -1;
  if (!o.telemetrySocket.empty()) telListenFd = listenOn(o.telemetrySocket);

  // Replication lag: work accumulated since the follower last received the
  // corresponding records. Sends happen before execution, so a healthy
  // attached follower keeps all three at zero; they grow while no follower
  // is attached (or a send fails) and snap back on catch-up.
  std::uint64_t lagPumps = 0;
  std::uint64_t lagBytes = 0;
  std::uint64_t lagEpochs = 0;
  auto publishLag = [&]() {
    GPD_OBS_GAUGE_SET("gpdd_replication_lag_pumps", lagPumps);
    GPD_OBS_GAUGE_SET("gpdd_replication_lag_bytes", lagBytes);
    GPD_OBS_GAUGE_SET("gpdd_replication_lag_epochs", lagEpochs);
  };

  auto dropFollower = [&]() {
    if (followerFd >= 0) {
      ::close(followerFd);
      followerFd = -1;
      GPD_OBS_COUNTER_ADD("gpdd_follower_drops", 1);
      GPD_FR_RECORD(gRecorder, "repl", "follower-dropped");
      obs::log::warn("gpdd", "follower dropped");
    }
  };
  // Returns true when the records reached the follower (false also covers
  // "no follower attached"); the caller charges the lag gauges.
  auto sendToFollower = [&](const std::vector<std::string>& records) {
    if (followerFd < 0) return false;
    std::string bytes;
    for (const std::string& rec : records) bytes += service::encodeFrame(rec);
    if (!writeAllTimed(followerFd, bytes, 5000)) {
      dropFollower();
      return false;
    }
    return true;
  };

  if (!prelude.empty()) writeAll(1, prelude);

  std::uint64_t pumpsSinceCheckpoint = 0;
  std::uint64_t pumpsSinceStats = 0;
  std::uint64_t pumpsSinceTelemetry = 0;
  char buf[1 << 16];
  while (gStop == 0 && !engine->shutdownRequested()) {
    // ---- Gather readable endpoints ----
    std::vector<pollfd> fds;
    if (listenFd >= 0) fds.push_back({listenFd, POLLIN, 0});
    if (replListenFd >= 0) fds.push_back({replListenFd, POLLIN, 0});
    if (telListenFd >= 0) fds.push_back({telListenFd, POLLIN, 0});
    for (auto& [origin, conn] : conns) {
      if (!conn.eof) fds.push_back({conn.readFd, POLLIN, 0});
    }
    const bool stdioDone =
        o.socketPath.empty() && (conns.empty() || conns.begin()->second.eof);
    if (fds.empty() && !stdioDone && listenFd < 0 && replListenFd < 0) break;
    if (!fds.empty()) {
      const int r = ::poll(fds.data(), fds.size(), 10);
      if (r < 0 && errno != EINTR) break;
    }
    if (listenFd >= 0) {
      for (;;) {
        const int cfd = ::accept(listenFd, nullptr, nullptr);
        if (cfd < 0) break;
        setNonBlocking(cfd);
        conns[nextOrigin++] = Conn{cfd, cfd, {}, false, 0};
      }
    }
    if (replListenFd >= 0) {
      for (;;) {
        const int cfd = ::accept(replListenFd, nullptr, nullptr);
        if (cfd < 0) break;
        dropFollower();  // a new follower replaces the old one
        setNonBlocking(cfd);
        followerFd = cfd;
        // Seed the replica from a forced-full capture taken through the
        // log, so the disk chain and the replication stream share one
        // parent from here on.
        const service::CheckpointCapture snap =
            log ? log->store(*engine, /*forceFull=*/true)
                : engine->captureCheckpoint(/*preferDelta=*/false);
        if (log) pumpsSinceCheckpoint = 0;
        std::vector<std::string> records;
        records.push_back(service::captureHelloRecord());
        for (std::string& rec : service::captureSnapshotRecord(snap)) {
          records.push_back(std::move(rec));
        }
        if (sendToFollower(records)) {
          lagPumps = lagBytes = lagEpochs = 0;
          publishLag();
          GPD_FR_RECORD(gRecorder, "repl", "follower-attached epoch=%llu",
                        static_cast<unsigned long long>(snap.epoch));
          obs::log::Event(obs::log::Level::kInfo, "gpdd", "follower attached")
              .kv("snapshot_epoch", snap.epoch);
        }
      }
    }
    if (telListenFd >= 0) {
      // A scrape: each connection gets one exposition snapshot and is
      // closed. The bounded write keeps a wedged scraper from stalling the
      // serve loop for more than a second.
      for (;;) {
        const int cfd = ::accept(telListenFd, nullptr, nullptr);
        if (cfd < 0) break;
        setNonBlocking(cfd);
        writeAllTimed(cfd, renderTelemetry(*engine), 1000);
        ::close(cfd);
      }
    }
    std::vector<int> dead;
    std::vector<service::ReplicatedCmd> batch;
    for (auto& [origin, conn] : conns) {
      if (conn.eof) continue;
      // Nonblocking reads for sockets; the stdio fd blocks only while poll
      // said it is readable, so drain one chunk per loop there too.
      for (;;) {
        const ssize_t n = ::read(conn.readFd, buf, sizeof(buf));
        if (n > 0) {
          conn.decoder.feed({buf, static_cast<std::size_t>(n)});
          if (static_cast<std::size_t>(n) < sizeof(buf)) break;
          continue;
        }
        if (n == 0) {
          conn.eof = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        conn.eof = true;
        break;
      }
      while (auto payload = conn.decoder.pop()) {
        batch.push_back({origin, std::move(*payload)});
      }
      if (conn.decoder.bytesDiscarded() > conn.reportedDiscarded) {
        GPD_OBS_COUNTER_ADD("gpdd_bytes_discarded",
                            conn.decoder.bytesDiscarded() -
                                conn.reportedDiscarded);
        conn.reportedDiscarded = conn.decoder.bytesDiscarded();
      }
      if (o.strictProto) {
        GPD_INPUT_CHECK(conn.decoder.bytesDiscarded() == 0,
                        "protocol violation: " << conn.decoder.bytesDiscarded()
                                               << " bytes discarded");
        GPD_INPUT_CHECK(!conn.eof || conn.decoder.bytesPending() == 0,
                        "protocol violation: truncated frame at EOF");
      }
      if (conn.eof && origin != 0) dead.push_back(origin);
    }
    for (int origin : dead) {
      ::close(conns[origin].readFd);
      conns.erase(origin);
    }

    // ---- Replicate, then execute ----
    // The follower receives this pump's commands before the engine runs
    // them — durability (on the standby) before acknowledgment, the same
    // contract the on-disk manifest keeps. Every pump is sent, including
    // empty ones: idle sweeps are pump-indexed state changes too, and the
    // steady record stream doubles as the leader's heartbeat.
    std::uint64_t batchBytes = 0;
    for (const service::ReplicatedCmd& cmd : batch) {
      batchBytes += cmd.payload.size();
    }
    if (sendToFollower(
            service::capturePumpRecord(engine->stats().pumps, batch))) {
      lagPumps = 0;
      lagBytes = 0;
    } else {
      ++lagPumps;
      lagBytes += batchBytes;
    }
    GPD_OBS_GAUGE_SET("gpdd_queue_depth", batch.size());
    for (service::ReplicatedCmd& cmd : batch) {
      engine->submit(std::move(cmd.payload), cmd.origin);
    }
    std::vector<service::Response> out;
    Stopwatch pumpTimer;
    engine->pump(out, pool.get());
    GPD_OBS_HISTOGRAM("gpdd_pump_nanos", pumpTimer.elapsedNanos());
    GPD_FR_RECORD(gRecorder, "pump", "i=%llu in=%zu out=%zu open=%zu mem=%d",
                  static_cast<unsigned long long>(engine->stats().pumps),
                  batch.size(), out.size(), engine->openSessions(),
                  engine->memLevel());
    scanResponses(out);

    // ---- Checkpoints and stats ----
    // Durability before acknowledgment: the manifest is written *before*
    // the pump's responses are flushed, so a client that has seen this
    // pump's OK CHECKPOINT (or the SYNC behind it) may kill -9 the server
    // and still recover this pump's state. The soak harness does exactly
    // that.
    ++pumpsSinceCheckpoint;
    ++pumpsSinceStats;
    ++pumpsSinceTelemetry;
    const bool requested = engine->consumeCheckpointRequest();
    if (log != nullptr &&
        (requested || (o.checkpointEvery != 0 &&
                       pumpsSinceCheckpoint >= o.checkpointEvery))) {
      Stopwatch captureTimer;
      const service::CheckpointCapture cap = log->store(*engine);
      GPD_OBS_HISTOGRAM("gpdd_checkpoint_capture_nanos",
                        captureTimer.elapsedNanos());
      GPD_OBS_GAUGE_SET("gpdd_manifest_chain_length", log->deltasSinceFull());
      GPD_FR_RECORD(gRecorder, "ckpt", "epoch=%llu delta=%d deltas=%llu",
                    static_cast<unsigned long long>(cap.epoch),
                    cap.delta ? 1 : 0,
                    static_cast<unsigned long long>(log->deltasSinceFull()));
      if (sendToFollower(
              {service::captureCkptRecord(engine->stats().pumps, cap)})) {
        lagEpochs = 0;
      } else {
        ++lagEpochs;
      }
      pumpsSinceCheckpoint = 0;
    }
    publishLag();
    if (!o.statsDumpPath.empty() && pumpsSinceStats >= o.statsEvery) {
      dumpStats(*engine, o.statsDumpPath);
      pumpsSinceStats = 0;
    }
    if (!o.telemetryFile.empty() && pumpsSinceTelemetry >= o.telemetryEvery) {
      io::atomicWriteFile(o.telemetryFile, renderTelemetry(*engine));
      pumpsSinceTelemetry = 0;
    }

    std::map<int, std::string> byOrigin;
    for (service::Response& r : out) {
      byOrigin[r.origin] += service::encodeFrame(r.payload);
    }
    for (auto& [origin, bytes] : byOrigin) {
      const auto it = conns.find(origin);
      if (it != conns.end()) {
        writeAll(it->second.writeFd, bytes);
      } else if (origin == 0 && o.socketPath.empty()) {
        writeAll(1, bytes);
      }
    }
    // Everything up to this pump is acknowledged to clients; the follower
    // can retire its retained copies.
    if (followerFd >= 0) {
      sendToFollower({service::captureFlushRecord(engine->stats().pumps)});
    }

    // Pipe mode ends when stdin is exhausted and every frame was answered.
    if (stdioDone && !engine->shutdownRequested()) break;
  }

  // ---- Graceful drain ----
  // First settle the frames that were decoded but not yet executed when the
  // signal landed: replicate and pump them like any other batch, then drain
  // the engine. The final manifest is written *before* the responses are
  // flushed — a drain is still durability before acknowledgment.
  std::vector<service::ReplicatedCmd> finalBatch;
  for (auto& [origin, conn] : conns) {
    while (auto payload = conn.decoder.pop()) {
      finalBatch.push_back({origin, std::move(*payload)});
    }
  }
  std::vector<service::Response> out;
  if (!finalBatch.empty()) {
    if (followerFd >= 0) {
      sendToFollower(
          service::capturePumpRecord(engine->stats().pumps, finalBatch));
    }
    for (service::ReplicatedCmd& cmd : finalBatch) {
      engine->submit(std::move(cmd.payload), cmd.origin);
    }
    engine->pump(out, pool.get());
  }
  engine->drain(out);
  scanResponses(out);
  if (log != nullptr) log->store(*engine, /*forceFull=*/true);
  if (!o.statsDumpPath.empty()) dumpStats(*engine, o.statsDumpPath);
  if (!o.telemetryFile.empty()) {
    io::atomicWriteFile(o.telemetryFile, renderTelemetry(*engine));
  }
  GPD_FR_RECORD(gRecorder, "drain", "pumps=%llu open=%zu stop=%d",
                static_cast<unsigned long long>(engine->stats().pumps),
                engine->openSessions(), gStop != 0 ? 1 : 0);
  if (gRecorder.armed() && gPostmortemPath[0] != '\0') {
    gRecorder.dumpNow(gPostmortemPath,
                      gStop != 0 ? "sigterm-drain" : "eof-drain");
  }
  std::map<int, std::string> byOrigin;
  for (service::Response& r : out) {
    byOrigin[r.origin] += service::encodeFrame(r.payload);
  }
  for (auto& [origin, bytes] : byOrigin) {
    const auto it = conns.find(origin);
    if (it != conns.end()) {
      writeAll(it->second.writeFd, bytes);
    } else if (origin == 0 && o.socketPath.empty()) {
      writeAll(1, bytes);
    }
  }
  for (auto& [origin, conn] : conns) {
    if (origin != 0) ::close(conn.readFd);
  }
  dropFollower();
  if (replListenFd >= 0) {
    ::close(replListenFd);
    ::unlink(o.replicationSocket.c_str());
  }
  if (telListenFd >= 0) {
    ::close(telListenFd);
    ::unlink(o.telemetrySocket.c_str());
  }
  if (listenFd >= 0) {
    ::close(listenFd);
    ::unlink(o.socketPath.c_str());
  }
  return 0;
}

// Hot-standby mode: replay the leader's stream until it dies, then promote
// and serve in its place.
int runFollower(const Options& o) {
  std::unique_ptr<service::ManifestLog> log;
  if (!o.checkpointPath.empty()) {
    log = std::make_unique<service::ManifestLog>(o.checkpointPath,
                                                 o.fullEvery);
  }
  service::ReplicationFollower follower(
      o.engine, log ? [&log](const service::CheckpointCapture& cap) {
        log->persist(cap);
      } : std::function<void(const service::CheckpointCapture&)>{});

  // Connect with jittered exponential backoff: a follower typically starts
  // while the leader is still binding its socket.
  Stopwatch connecting;
  Rng rng;
  std::uint64_t backoffMs = 10;
  int fd = -1;
  while (gStop == 0) {
    fd = connectTo(o.followPath);
    if (fd >= 0) break;
    GPD_INPUT_CHECK(
        connecting.elapsedMillis() < static_cast<double>(o.failoverAfterMs),
        "cannot reach leader at '" << o.followPath
                                   << "' within the failover deadline");
    const auto jittered = static_cast<int>(
        rng.uniform(static_cast<std::int64_t>(backoffMs / 2),
                    static_cast<std::int64_t>(backoffMs)));
    ::poll(nullptr, 0, jittered);
    backoffMs = backoffMs * 2 < 200 ? backoffMs * 2 : 200;
  }
  if (gStop != 0) {
    if (fd >= 0) ::close(fd);
    return 0;
  }
  setNonBlocking(fd);

  service::FrameDecoder decoder;
  Stopwatch silence;
  char buf[1 << 16];
  bool leaderGone = false;
  while (gStop == 0 && !leaderGone) {
    pollfd p{fd, POLLIN, 0};
    const int r = ::poll(&p, 1, 10);
    if (r < 0 && errno != EINTR) break;
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        decoder.feed({buf, static_cast<std::size_t>(n)});
        silence.reset();
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
        continue;
      }
      if (n == 0) {
        leaderGone = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      leaderGone = true;
      break;
    }
    while (auto payload = decoder.pop()) {
      follower.consume(*payload);
    }
    GPD_OBS_GAUGE_SET("gpdd_follower_staleness_ms", silence.elapsedMillis());
    if (silence.elapsedMillis() > static_cast<double>(o.failoverAfterMs)) {
      leaderGone = true;  // heartbeat (the pump stream) went quiet
    }
  }
  const double failoverGapMs = silence.elapsedMillis();
  ::close(fd);
  if (gStop != 0) return 0;  // terminated while on standby: nothing to save

  // ---- Promote ----
  service::ReplicationFollower::Promotion promo = follower.promote();
  GPD_OBS_COUNTER_ADD("gpdd_promotions", 1);
  GPD_OBS_GAUGE_SET("gpdd_failover_gap_ms", failoverGapMs);
  GPD_FR_RECORD(gRecorder, "repl", "promoted pump=%llu replayed=%llu gap_ms=%.0f",
                static_cast<unsigned long long>(promo.engine->stats().pumps),
                static_cast<unsigned long long>(promo.pumps), failoverGapMs);
  obs::log::Event(obs::log::Level::kInfo, "gpdd", "leader gone; promoted")
      .kv("pump", promo.engine->stats().pumps)
      .kv("replayed_pumps", promo.pumps)
      .kv("epoch", promo.engine->checkpointEpoch())
      .kv("gap_ms", failoverGapMs);
  std::string prelude = service::encodeFrame(
      "PROMOTED " + std::to_string(promo.engine->stats().pumps) + " " +
      std::to_string(promo.engine->checkpointEpoch()));
  for (const service::Response& r : promo.retained) {
    prelude += service::encodeFrame(r.payload);
  }
  prelude += service::encodeFrame(
      "RESUME " + (promo.lastSyncToken.empty() ? std::string("-")
                                               : promo.lastSyncToken));
  return serveLoop(o, std::move(promo.engine), log.get(), prelude);
}

int runService(Options o) {
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);
  registerServiceMetrics();
  o.engine.buildInfo = tools::buildInfoFields();
  if (!o.flightRecorderPath.empty()) {
    gRecorder.openRing(o.flightRecorderPath,
                       static_cast<std::uint32_t>(o.flightSlots));
    const std::string postmortem = o.flightRecorderPath + ".postmortem";
    GPD_INPUT_CHECK(postmortem.size() < sizeof(gPostmortemPath),
                    "--flight-recorder path too long");
    std::strncpy(gPostmortemPath, postmortem.c_str(),
                 sizeof(gPostmortemPath) - 1);
    std::signal(SIGSEGV, onFatalSignal);
    std::signal(SIGABRT, onFatalSignal);
    GPD_FR_RECORD(gRecorder, "start", "slots=%llu",
                  static_cast<unsigned long long>(o.flightSlots));
  }
  if (!o.followPath.empty()) return runFollower(o);

  std::unique_ptr<service::ManifestLog> log;
  if (!o.checkpointPath.empty()) {
    log = std::make_unique<service::ManifestLog>(o.checkpointPath,
                                                 o.fullEvery);
  }
  std::unique_ptr<service::Engine> engine;
  if (o.recover) {
    Stopwatch restoreTimer;
    engine = log->recover(o.engine);
    GPD_OBS_HISTOGRAM("gpdd_manifest_restore_nanos",
                      restoreTimer.elapsedNanos());
    GPD_FR_RECORD(gRecorder, "recover", "sessions=%zu deltas=%llu epoch=%llu",
                  engine->openSessions(),
                  static_cast<unsigned long long>(log->deltasSinceFull()),
                  static_cast<unsigned long long>(engine->checkpointEpoch()));
    obs::log::Event(obs::log::Level::kInfo, "gpdd", "recovered")
        .kv("sessions", engine->openSessions())
        .kv("checkpoint", o.checkpointPath)
        .kv("deltas", log->deltasSinceFull())
        .kv("epoch", engine->checkpointEpoch());
  } else {
    engine = std::make_unique<service::Engine>(o.engine);
  }
  return serveLoop(o, std::move(engine), log.get(), {});
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 1 && (args[0] == "--version" || args[0] == "version")) {
      std::cout << gpd::tools::versionLine("gpdd") << '\n';
      return 0;
    }
    return runService(parseFlags(args));
  } catch (const gpd::InputError& e) {
    gpd::obs::log::error("gpdd", e.what());
    return 1;
  } catch (const std::exception& e) {
    gpd::obs::log::Event(gpd::obs::log::Level::kError, "gpdd",
                         "internal failure")
        .kv("what", e.what());
    return 2;
  }
}
