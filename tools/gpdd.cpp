// gpdd — the long-lived multi-tenant detection service.
//
// Front-ends a gpd::service::Engine with two byte-stream transports:
//
//   gpdd [flags]                 stdin/stdout pipe pair (one endpoint; this
//                                is how the chaos harness drives it)
//   gpdd --socket PATH [flags]   UNIX-domain socket, one endpoint per
//                                connection; responses route back to the
//                                connection whose command caused them
//
// Wire format: length-prefixed checksummed frames (service/frame.h) whose
// payloads are engine protocol commands (service/engine.h). The decoder
// resynchronizes across garbage, so a corrupted region costs only the
// frames it covered — unless --strict-proto, where any damaged byte is an
// InputError (exit 1).
//
// Service flags:
//   --shards N          engine shards (default 8)
//   --threads N         par::Pool workers for the shard phase (default:
//                       GPD_THREADS, else sequential); verdicts and
//                       responses are identical for any N
//   --max-sessions N    global concurrent-session cap
//   --max-per-tenant N  per-tenant concurrent-session cap
//   --rate-bytes N      per-tenant EV/EVB payload bytes accepted per pump
//   --mem-watermark B   estimated-bytes watermark arming the overload
//                       ladder (reject new → degrade in place → shed)
//   --idle-pumps N      shed sessions idle for N pumps
//   --max-combinations N / --budget-ms D   per-session budget
//   --window W --retries K --timeout T --queue-limit Q
//   --degrade-on-overflow --max-comparisons-per-report C
//                       per-session MonitorSession/monitor options
//
// Robustness flags:
//   --checkpoint FILE   whole-service manifest path; written atomically
//                       (temp + rename) on every CHECKPOINT command and
//                       every --checkpoint-every N pumps, and once more on
//                       graceful shutdown
//   --checkpoint-every N  periodic checkpoint cadence, in pumps
//   --recover           restore from --checkpoint FILE before serving; a
//                       missing or corrupt manifest is an InputError
//   --stats-dump FILE   atomically rewrite FILE with one JSON object
//                       (engine stats + the gpd::obs registry) every
//                       --stats-every N pumps (default 200)
//   --strict-proto      any discarded byte / truncated frame is fatal
//
// SIGTERM/SIGINT drain gracefully: every open session is settled, its final
// VERDICT frame is flushed, a final checkpoint is written, exit 0. SIGKILL
// is the crash the manifest exists for: restart with --recover and the
// service resumes bit-identically from the last checkpoint.
//
// Exit code: 0 = clean shutdown/drain, 1 = bad input (flags, bind failure,
// corrupt recovery manifest, strict-mode protocol violation), 2 = internal
// failure (a library invariant broke).
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "io/checkpoint_io.h"
#include "obs/metrics.h"
#include "par/pool.h"
#include "service/engine.h"
#include "service/frame.h"
#include "util/check.h"
#include "version.h"

namespace {

using namespace gpd;

volatile std::sig_atomic_t gStop = 0;

void onSignal(int) { gStop = 1; }

int usage() {
  std::cerr
      << "usage: gpdd [--socket PATH] [--shards N] [--threads N]\n"
      << "            [--max-sessions N] [--max-per-tenant N] [--rate-bytes N]\n"
      << "            [--mem-watermark BYTES] [--idle-pumps N]\n"
      << "            [--max-combinations N] [--budget-ms D]\n"
      << "            [--window W] [--retries K] [--timeout T]\n"
      << "            [--queue-limit Q] [--degrade-on-overflow]\n"
      << "            [--max-comparisons-per-report C]\n"
      << "            [--checkpoint FILE] [--checkpoint-every N] [--recover]\n"
      << "            [--stats-dump FILE] [--stats-every N] [--strict-proto]\n"
      << "       gpdd --version\n";
  return 1;
}

long long parseInt(const std::string& word, const char* what) {
  std::size_t used = 0;
  long long v = 0;
  try {
    v = std::stoll(word, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  GPD_INPUT_CHECK(used == word.size() && !word.empty(),
                  "'" << word << "' is not an integer (" << what << ")");
  return v;
}

struct Options {
  std::string socketPath;
  int threads = par::envThreads();
  std::string checkpointPath;
  std::uint64_t checkpointEvery = 0;
  bool recover = false;
  std::string statsDumpPath;
  std::uint64_t statsEvery = 200;
  bool strictProto = false;
  service::EngineOptions engine;
};

Options parseFlags(const std::vector<std::string>& args) {
  Options o;
  auto need = [&](std::size_t i) -> const std::string& {
    GPD_INPUT_CHECK(i < args.size(), "flag '" << args[i - 1]
                                              << "' needs a value");
    return args[i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--socket") {
      o.socketPath = need(++i);
    } else if (a == "--shards") {
      o.engine.shards = static_cast<int>(parseInt(need(++i), "--shards"));
      GPD_INPUT_CHECK(o.engine.shards >= 1 && o.engine.shards <= 1024,
                      "--shards out of range");
    } else if (a == "--threads") {
      o.threads = static_cast<int>(parseInt(need(++i), "--threads"));
      GPD_INPUT_CHECK(o.threads >= 0 && o.threads <= 1024,
                      "--threads out of range");
    } else if (a == "--max-sessions") {
      o.engine.maxSessions =
          static_cast<std::size_t>(parseInt(need(++i), "--max-sessions"));
    } else if (a == "--max-per-tenant") {
      o.engine.maxSessionsPerTenant =
          static_cast<std::size_t>(parseInt(need(++i), "--max-per-tenant"));
    } else if (a == "--rate-bytes") {
      o.engine.tenantRateBytesPerPump =
          static_cast<std::uint64_t>(parseInt(need(++i), "--rate-bytes"));
    } else if (a == "--mem-watermark") {
      o.engine.memWatermarkBytes =
          static_cast<std::uint64_t>(parseInt(need(++i), "--mem-watermark"));
    } else if (a == "--idle-pumps") {
      o.engine.idleTimeoutPumps =
          static_cast<std::uint64_t>(parseInt(need(++i), "--idle-pumps"));
    } else if (a == "--max-combinations") {
      o.engine.sessionMaxCombinations = static_cast<std::uint64_t>(
          parseInt(need(++i), "--max-combinations"));
    } else if (a == "--budget-ms") {
      o.engine.sessionBudgetMs =
          static_cast<std::uint64_t>(parseInt(need(++i), "--budget-ms"));
    } else if (a == "--window") {
      o.engine.session.reorderWindow =
          static_cast<std::size_t>(parseInt(need(++i), "--window"));
      GPD_INPUT_CHECK(o.engine.session.reorderWindow >= 1,
                      "--window must be >= 1");
    } else if (a == "--retries") {
      o.engine.session.maxRetries =
          static_cast<int>(parseInt(need(++i), "--retries"));
      GPD_INPUT_CHECK(o.engine.session.maxRetries >= 1,
                      "--retries must be >= 1");
    } else if (a == "--timeout") {
      o.engine.session.retryTimeout =
          static_cast<std::uint64_t>(parseInt(need(++i), "--timeout"));
      GPD_INPUT_CHECK(o.engine.session.retryTimeout >= 1,
                      "--timeout must be >= 1");
    } else if (a == "--queue-limit") {
      o.engine.session.monitor.maxQueuePerProcess =
          static_cast<std::size_t>(parseInt(need(++i), "--queue-limit"));
    } else if (a == "--degrade-on-overflow") {
      o.engine.session.monitor.overflowPolicy =
          monitor::OverflowPolicy::Degrade;
    } else if (a == "--max-comparisons-per-report") {
      o.engine.session.monitor.maxComparisonsPerReport =
          static_cast<std::uint64_t>(
              parseInt(need(++i), "--max-comparisons-per-report"));
    } else if (a == "--checkpoint") {
      o.checkpointPath = need(++i);
    } else if (a == "--checkpoint-every") {
      o.checkpointEvery = static_cast<std::uint64_t>(
          parseInt(need(++i), "--checkpoint-every"));
      GPD_INPUT_CHECK(o.checkpointEvery >= 1,
                      "--checkpoint-every must be >= 1");
    } else if (a == "--recover") {
      o.recover = true;
    } else if (a == "--stats-dump") {
      o.statsDumpPath = need(++i);
    } else if (a == "--stats-every") {
      o.statsEvery =
          static_cast<std::uint64_t>(parseInt(need(++i), "--stats-every"));
      GPD_INPUT_CHECK(o.statsEvery >= 1, "--stats-every must be >= 1");
    } else if (a == "--strict-proto") {
      o.strictProto = true;
    } else {
      usage();
      GPD_INPUT_CHECK(false, "unknown flag '" << a << "'");
    }
  }
  GPD_INPUT_CHECK(!o.recover || !o.checkpointPath.empty(),
                  "--recover needs --checkpoint FILE");
  GPD_INPUT_CHECK(o.checkpointEvery == 0 || !o.checkpointPath.empty(),
                  "--checkpoint-every needs --checkpoint FILE");
  return o;
}

// One transport endpoint: a connected fd plus its incremental frame decoder.
struct Conn {
  int readFd = -1;
  int writeFd = -1;
  service::FrameDecoder decoder;
  bool eof = false;
  std::uint64_t reportedDiscarded = 0;  // decoder bytes already counted
};

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void writeAll(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // endpoint gone (EPIPE etc.): responses to it are moot
    }
    off += static_cast<std::size_t>(n);
  }
}

void writeManifestAtomic(const service::Engine& engine,
                         const std::string& path) {
  std::ostringstream os;
  engine.writeManifest(os);
  io::atomicWriteFile(path, os.str());
  GPD_OBS_COUNTER_ADD("gpdd_checkpoints", 1);
}

void dumpStats(const service::Engine& engine, const std::string& path) {
  std::ostringstream os;
  os << "{\"engine\":" << engine.statsJson() << ",\"obs\":";
  obs::renderMetricsJson(os, obs::registry());
  os << "}\n";
  io::atomicWriteFile(path, os.str());
}

int listenOn(const std::string& path) {
  // strerror below: gpdd's listen/accept path is single-threaded (the pool
  // only runs detection kernels), so the static buffer cannot race.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  GPD_INPUT_CHECK(fd >= 0, "cannot create UNIX socket: "
                               << strerror(errno));  // NOLINT(concurrency-mt-unsafe)
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  GPD_INPUT_CHECK(path.size() < sizeof(addr.sun_path),
                  "socket path too long: '" << path << "'");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    GPD_INPUT_CHECK(false, "cannot bind '"
                               << path << "': "
                               << strerror(err));  // NOLINT(concurrency-mt-unsafe)
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    GPD_INPUT_CHECK(false, "cannot listen on '"
                               << path << "': "
                               << strerror(err));  // NOLINT(concurrency-mt-unsafe)
  }
  setNonBlocking(fd);
  return fd;
}

int runService(const Options& o) {
  std::unique_ptr<service::Engine> engine;
  if (o.recover) {
    std::ifstream is(o.checkpointPath);
    GPD_INPUT_CHECK(is.is_open(), "cannot open recovery manifest '"
                                      << o.checkpointPath << "'");
    engine = service::Engine::restoreManifest(is, o.engine);
    std::cerr << "gpdd: recovered " << engine->openSessions()
              << " sessions from '" << o.checkpointPath << "'\n";
  } else {
    engine = std::make_unique<service::Engine>(o.engine);
  }
  std::unique_ptr<par::Pool> pool;
  if (o.threads > 1) pool = std::make_unique<par::Pool>(o.threads);

  int listenFd = -1;
  std::map<int, Conn> conns;  // keyed by origin (= read fd)
  if (o.socketPath.empty()) {
    // The pipe (or file) feeding stdin is dedicated to this process; make it
    // nonblocking so the drain loop below can never stall mid-chunk.
    setNonBlocking(0);
    conns[0] = Conn{0, 1, {}, false, 0};
  } else {
    listenFd = listenOn(o.socketPath);
  }

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::uint64_t pumpsSinceCheckpoint = 0;
  std::uint64_t pumpsSinceStats = 0;
  char buf[1 << 16];
  while (gStop == 0 && !engine->shutdownRequested()) {
    // ---- Gather readable endpoints ----
    std::vector<pollfd> fds;
    if (listenFd >= 0) fds.push_back({listenFd, POLLIN, 0});
    for (auto& [origin, conn] : conns) {
      if (!conn.eof) fds.push_back({conn.readFd, POLLIN, 0});
    }
    const bool stdioDone =
        o.socketPath.empty() && (conns.empty() || conns.begin()->second.eof);
    if (fds.empty() && !stdioDone && listenFd < 0) break;
    if (!fds.empty()) {
      const int r = ::poll(fds.data(), fds.size(), 10);
      if (r < 0 && errno != EINTR) break;
    }
    if (listenFd >= 0) {
      for (;;) {
        const int cfd = ::accept(listenFd, nullptr, nullptr);
        if (cfd < 0) break;
        setNonBlocking(cfd);
        conns[cfd] = Conn{cfd, cfd, {}, false, 0};
      }
    }
    std::vector<int> dead;
    for (auto& [origin, conn] : conns) {
      if (conn.eof) continue;
      // Nonblocking reads for sockets; the stdio fd blocks only while poll
      // said it is readable, so drain one chunk per loop there too.
      for (;;) {
        const ssize_t n = ::read(conn.readFd, buf, sizeof(buf));
        if (n > 0) {
          conn.decoder.feed({buf, static_cast<std::size_t>(n)});
          if (static_cast<std::size_t>(n) < sizeof(buf)) break;
          continue;
        }
        if (n == 0) {
          conn.eof = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
        conn.eof = true;
        break;
      }
      while (auto payload = conn.decoder.pop()) {
        engine->submit(std::move(*payload), origin);
      }
      if (conn.decoder.bytesDiscarded() > conn.reportedDiscarded) {
        GPD_OBS_COUNTER_ADD("gpdd_bytes_discarded",
                            conn.decoder.bytesDiscarded() -
                                conn.reportedDiscarded);
        conn.reportedDiscarded = conn.decoder.bytesDiscarded();
      }
      if (o.strictProto) {
        GPD_INPUT_CHECK(conn.decoder.bytesDiscarded() == 0,
                        "protocol violation: " << conn.decoder.bytesDiscarded()
                                               << " bytes discarded");
        GPD_INPUT_CHECK(!conn.eof || conn.decoder.bytesPending() == 0,
                        "protocol violation: truncated frame at EOF");
      }
      if (conn.eof && origin != 0) dead.push_back(origin);
    }
    for (int origin : dead) {
      ::close(conns[origin].readFd);
      conns.erase(origin);
    }

    // ---- One pump ----
    std::vector<service::Response> out;
    engine->pump(out, pool.get());

    // ---- Checkpoints and stats ----
    // Durability before acknowledgment: the manifest is written *before*
    // the pump's responses are flushed, so a client that has seen this
    // pump's OK CHECKPOINT (or the SYNC behind it) may kill -9 the server
    // and still recover this pump's state. The soak harness does exactly
    // that.
    ++pumpsSinceCheckpoint;
    ++pumpsSinceStats;
    const bool requested = engine->consumeCheckpointRequest();
    if (!o.checkpointPath.empty() &&
        (requested || (o.checkpointEvery != 0 &&
                       pumpsSinceCheckpoint >= o.checkpointEvery))) {
      writeManifestAtomic(*engine, o.checkpointPath);
      pumpsSinceCheckpoint = 0;
    }
    if (!o.statsDumpPath.empty() && pumpsSinceStats >= o.statsEvery) {
      dumpStats(*engine, o.statsDumpPath);
      pumpsSinceStats = 0;
    }

    std::map<int, std::string> byOrigin;
    for (service::Response& r : out) {
      byOrigin[r.origin] += service::encodeFrame(r.payload);
    }
    for (auto& [origin, bytes] : byOrigin) {
      const auto it = conns.find(origin);
      if (it != conns.end()) {
        writeAll(it->second.writeFd, bytes);
      } else if (origin == 0 && o.socketPath.empty()) {
        writeAll(1, bytes);
      }
    }

    // Pipe mode ends when stdin is exhausted and every frame was answered.
    if (stdioDone && !engine->shutdownRequested()) break;
  }

  // ---- Graceful drain ----
  std::vector<service::Response> out;
  engine->drain(out);
  std::map<int, std::string> byOrigin;
  for (service::Response& r : out) {
    byOrigin[r.origin] += service::encodeFrame(r.payload);
  }
  for (auto& [origin, bytes] : byOrigin) {
    const auto it = conns.find(origin);
    if (it != conns.end()) {
      writeAll(it->second.writeFd, bytes);
    } else if (origin == 0 && o.socketPath.empty()) {
      writeAll(1, bytes);
    }
  }
  if (!o.checkpointPath.empty()) {
    writeManifestAtomic(*engine, o.checkpointPath);
  }
  if (!o.statsDumpPath.empty()) dumpStats(*engine, o.statsDumpPath);
  for (auto& [origin, conn] : conns) {
    if (origin != 0) ::close(conn.readFd);
  }
  if (listenFd >= 0) {
    ::close(listenFd);
    ::unlink(o.socketPath.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 1 && (args[0] == "--version" || args[0] == "version")) {
      std::cout << gpd::tools::versionLine("gpdd") << '\n';
      return 0;
    }
    return runService(parseFlags(args));
  } catch (const gpd::InputError& e) {
    std::cerr << "gpdd: " << e.what() << '\n';
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "gpdd: internal failure: " << e.what() << '\n';
    return 2;
  }
}
