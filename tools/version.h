// Build identity shared by the gpdtool and gpdd `--version` flags.
//
// The macros are injected by tools/CMakeLists.txt: GPD_VERSION_DESCRIBE is
// the configure-time `git describe --tags --always --dirty`, and the
// GPD_BUILD_* strings capture the build flags that change runtime behaviour
// so a pasted version line pins down the binary's configuration.
#pragma once

#include <string>
#include <utility>
#include <vector>

#ifndef GPD_VERSION_DESCRIBE
#define GPD_VERSION_DESCRIBE "unknown"
#endif
#ifndef GPD_BUILD_SANITIZE
#define GPD_BUILD_SANITIZE "off"
#endif
#ifndef GPD_BUILD_SRCLINT
#define GPD_BUILD_SRCLINT "off"
#endif

namespace gpd::tools {

inline std::string versionLine(const std::string& bin) {
  std::string line = bin;
  line += " " GPD_VERSION_DESCRIBE;
  line += " (sanitize=" GPD_BUILD_SANITIZE;
#if defined(GPD_OBS_DISABLED)
  line += ", obs=off";
#else
  line += ", obs=on";
#endif
  line += ", srclint=" GPD_BUILD_SRCLINT ")";
  return line;
}

// The same identity as structured labels, for the STATS "build" object and
// the gpdd_build_info telemetry gauge.
inline std::vector<std::pair<std::string, std::string>> buildInfoFields() {
  return {
      {"version", GPD_VERSION_DESCRIBE},
      {"sanitize", GPD_BUILD_SANITIZE},
#if defined(GPD_OBS_DISABLED)
      {"obs", "off"},
#else
      {"obs", "on"},
#endif
      {"srclint", GPD_BUILD_SRCLINT},
  };
}

}  // namespace gpd::tools
