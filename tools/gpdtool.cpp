// gpdtool — command-line front end for the gpd library.
//
//   gpdtool generate <workload> <out.trace> [seed]
//       workloads: token-ring | token-ring-rogue | token-ring-lossy |
//                  election | election-buggy | voting | producer-consumer |
//                  philosophers | philosophers-ordered | snapshot-bank |
//                  diffusing | ricart-agrawala | ricart-agrawala-rude |
//                  random
//   gpdtool inspect <trace>
//       prints processes, events, messages, variables and (when small
//       enough) the consistent-cut lattice statistics
//   gpdtool detect <trace> conj [--definitely] <p:var | p:!var>...
//       conjunctive predicate, one term per named process
//   gpdtool detect <trace> cnf <lit,lit,...> <lit,lit,...> ...
//       CNF predicate, one argv word per clause, literals p:var / p:!var
//   gpdtool detect <trace> sum <lt|le|gt|ge|eq|ne> <K> <var>
//       Σ var over all processes, relop K
//   gpdtool detect <trace> sym <xor|no-majority|no-two-thirds|not-all-equal|
//                               exactly:<k>> <var>
//       every detect form accepts an execution budget (--budget-ms D,
//       --max-cuts N, --max-combinations N): the NP-hard detectors then run
//       anytime — a witness found in budget is a genuine answer, exhaustion
//       yields verdict "unknown" with the stop reason and progress counters
//       (exit code 3), never a wrong yes/no
//   gpdtool monitor <trace> [--seed N] [--drop P] [--dup P] [--reorder P]
//                   [--burst P] [--retries K] [--timeout T] [--window W]
//                   [--queue-limit Q] [--degrade-on-overflow] [--checkpoint F]
//                   [--max-comparisons-per-report C]
//                   <p:var | p:!var>...
//       replays the trace's true events through a seeded faulty transport
//       into the resilient online checker (monitor/session.h) and reports
//       the verdict, recovery traffic, degradations, and (with --checkpoint)
//       a checkpoint save/restore round-trip; the offline CPDHB verdict on
//       the same trace is printed for comparison
//   gpdtool lint <trace> [-f json]
//       static trace linter (src/analyze): reports every structural fault,
//       happened-before cycle, vector-clock inconsistency, FIFO violation
//       and variable race as line-numbered diagnostics; exits 1 iff an
//       error-severity finding exists (exactly the traces the strict loader
//       rejects)
//   gpdtool plan <trace> [--definitely] [-f json] <predicate...>
//       cost planner: classifies the predicate (singularity, k-CNF,
//       receive-/send-ordered groups, stability/linearity hints) and prints
//       the ranked algorithm plan with predicted CPDHB invocation counts —
//       the same report Detector dispatches on; with a budget
//       (--max-combinations N) each enumeration step is annotated in/over
//       budget (text output)
//   gpdtool selftest
//       end-to-end smoke used by ctest
//
// Exit code: 0 = ran fine (for detect: predicate decided either way),
// 1 = bad input (usage, malformed trace/arguments — gpd::InputError),
// 2 = internal failure (a library invariant broke — gpd::CheckFailure),
// 3 = budget exhausted before an answer (detect verdict "unknown").
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/diagnostic.h"
#include "gpd.h"
#include "obs/log.h"
#include "obs/openmetrics.h"
#include "version.h"

namespace {

using namespace gpd;

int usage() {
  obs::log::rawStderr()
            << "usage:\n"
            << "  gpdtool generate <workload> <out.trace> [seed]\n"
            << "  gpdtool inspect <trace>\n"
            << "  gpdtool detect <trace> conj [--definitely] <p:var|p:!var>...\n"
            << "  gpdtool detect <trace> cnf [--no-slice] <lit,lit,...>...\n"
            << "  gpdtool detect <trace> sum <lt|le|gt|ge|eq|ne> <K> <var>\n"
            << "  gpdtool detect <trace> sym <kind> <var>\n"
            << "      detect also takes --budget-ms D --max-cuts N\n"
            << "      --max-combinations N (verdict 'unknown' exits 3)\n"
            << "      detect and plan take --threads N (run the enumeration/\n"
            << "      lattice kernels on N pool workers; beats GPD_THREADS;\n"
            << "      verdicts and witnesses are identical for any N)\n"
            << "      detect, plan and monitor take --trace-out FILE.json\n"
            << "      (Chrome trace-event JSON for chrome://tracing/Perfetto\n"
            << "      plus a flame summary) and --stats [-f json] (the gpd::obs\n"
            << "      metrics registry after the run)\n"
            << "  gpdtool lint <trace> [-f json]\n"
            << "  gpdtool plan <trace> [--definitely] [-f json]\n"
            << "          [--budget-ms D] [--max-cuts N] [--max-combinations N]\n"
            << "          [--threads N]\n"
            << "          (conj <p:var|p:!var>... | cnf <lit,lit,...>... |\n"
            << "           sum <relop> <K> <var> | sym <kind> <var>)\n"
            << "  gpdtool monitor <trace> [--seed N] [--drop P] [--dup P]\n"
            << "                  [--reorder P] [--burst P] [--retries K]\n"
            << "                  [--timeout T] [--window W] [--queue-limit Q]\n"
            << "                  [--degrade-on-overflow] [--checkpoint F]\n"
            << "                  [--checkpoint-every N]\n"
            << "                  [--max-comparisons-per-report C]\n"
            << "                  <p:var|p:!var>...\n"
            << "  gpdtool scrape <file|-> [-f json]\n"
            << "      parse a gpdd --telemetry-file OpenMetrics scrape and\n"
            << "      pretty-print it (malformed exposition exits 1)\n"
            << "  gpdtool selftest\n"
            << "  gpdtool --version\n";
  return 1;
}

// Argument parsers that reject junk with InputError (exit code 1) instead of
// surfacing std::invalid_argument as an internal failure.
long long parseInt(const std::string& word, const char* what) {
  std::size_t used = 0;
  long long v = 0;
  try {
    v = std::stoll(word, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  GPD_INPUT_CHECK(used == word.size() && !word.empty(),
                  "'" << word << "' is not an integer (" << what << ")");
  return v;
}

double parseProbability(const std::string& word, const char* what) {
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(word, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  GPD_INPUT_CHECK(used == word.size() && !word.empty() && v >= 0.0 && v <= 1.0,
                  "'" << word << "' is not a probability in [0,1] (" << what
                      << ")");
  return v;
}

int generate(const std::string& workload, const std::string& path,
             std::uint64_t seed) {
  sim::SimResult run = [&] {
    if (workload == "token-ring" || workload == "token-ring-rogue" ||
        workload == "token-ring-lossy") {
      sim::TokenRingOptions opt;
      opt.processes = 5;
      opt.rounds = 3;
      opt.seed = seed;
      if (workload == "token-ring-rogue") opt.rogueProcess = 2;
      if (workload == "token-ring-lossy") opt.dropTokenAtHop = 4;
      return sim::tokenRing(opt);
    }
    if (workload == "election" || workload == "election-buggy") {
      sim::LeaderElectionOptions opt;
      opt.processes = 6;
      opt.seed = seed;
      opt.duplicateMaxId = workload == "election-buggy";
      return sim::leaderElection(opt);
    }
    if (workload == "voting") {
      sim::VotingOptions opt;
      opt.seed = seed;
      return sim::voting(opt);
    }
    if (workload == "producer-consumer") {
      sim::ProducerConsumerOptions opt;
      opt.seed = seed;
      return sim::producerConsumer(opt);
    }
    if (workload == "philosophers" || workload == "philosophers-ordered") {
      sim::PhilosophersOptions opt;
      opt.seed = seed;
      opt.orderedAcquisition = workload == "philosophers-ordered";
      return sim::diningPhilosophers(opt);
    }
    if (workload == "ricart-agrawala" || workload == "ricart-agrawala-rude") {
      sim::RicartAgrawalaOptions opt;
      opt.seed = seed;
      if (workload == "ricart-agrawala-rude") opt.rudeProcess = 1;
      return sim::ricartAgrawala(opt);
    }
    if (workload == "snapshot-bank") {
      sim::SnapshotBankOptions opt;
      opt.seed = seed;
      return sim::snapshotBank(opt);
    }
    if (workload == "diffusing") {
      sim::DiffusingOptions opt;
      opt.seed = seed;
      return sim::diffusingComputation(opt);
    }
    if (workload == "random") {
      RandomComputationOptions opt;
      opt.processes = 5;
      opt.eventsPerProcess = 12;
      Rng rng(seed);
      sim::SimResult out;
      out.computation =
          std::make_unique<Computation>(randomComputation(opt, rng));
      out.trace = std::make_unique<VariableTrace>(*out.computation);
      defineRandomBools(*out.trace, "b", 0.3, rng);
      defineRandomCounters(*out.trace, "x", 0, 1, rng);
      return out;
    }
    throw InputError("unknown workload '" + workload + "'");
  }();
  io::saveTrace(path, *run.computation, *run.trace);
  std::cout << "wrote " << path << ": " << run.computation->totalEvents()
            << " events, " << run.computation->messages().size()
            << " messages\n";
  return 0;
}

int inspect(const std::string& path) {
  const io::TraceFile file = io::loadTrace(path);
  const Computation& comp = *file.computation;
  std::cout << "processes: " << comp.processCount() << '\n';
  std::cout << "events:   ";
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    std::cout << ' ' << comp.eventCount(p);
  }
  std::cout << " (total " << comp.totalEvents() << ")\n";
  std::cout << "messages:  " << comp.messages().size() << '\n';
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    std::cout << "p" << p << " variables:";
    for (const auto& name : file.trace->variableNames(p)) {
      std::cout << ' ' << name;
    }
    std::cout << '\n';
  }
  if (comp.totalEvents() <= 2000) {
    const VectorClocks clocks(comp);
    const analysis::ComputationStats stats = analysis::computeStats(clocks);
    std::cout << "height:    " << stats.height << "  (longest causal chain)\n";
    std::cout << "width:     " << stats.width << "  (largest antichain)\n";
    char idx[32];
    std::snprintf(idx, sizeof(idx), "%.2f", stats.concurrencyIndex);
    std::cout << "concurrency index: " << idx << '\n';
  }
  double grid = 1;
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    grid *= comp.eventCount(p);
  }
  if (grid <= 2e6) {
    const VectorClocks clocks(comp);
    const auto stats = lattice::latticeStats(clocks);
    std::cout << "lattice:   " << stats.cutCount << " consistent cuts, "
              << stats.levels << " levels, max width " << stats.maxWidth
              << '\n';
  } else {
    std::cout << "lattice:   > " << static_cast<long long>(grid)
              << " grid states (enumeration skipped)\n";
  }
  return 0;
}

// Execution-budget flags shared by the detect and plan subcommands.
// Stripped out of `args`; all-zero means "run unbudgeted" (legacy paths and
// legacy output stay byte-identical).
struct BudgetFlags {
  std::uint64_t budgetMs = 0;
  std::uint64_t maxCuts = 0;
  std::uint64_t maxCombinations = 0;

  bool any() const {
    return budgetMs != 0 || maxCuts != 0 || maxCombinations != 0;
  }

  control::BudgetLimits limits() const {
    control::BudgetLimits lim;
    lim.deadlineMillis = budgetMs;
    lim.maxCuts = maxCuts;
    lim.maxCombinations = maxCombinations;
    return lim;
  }
};

BudgetFlags extractBudgetFlags(std::vector<std::string>& args) {
  BudgetFlags flags;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto value = [&](const char* what) {
      GPD_INPUT_CHECK(i + 1 < args.size(), args[i] << " needs a value ("
                                                   << what << ")");
      const long long v = parseInt(args[++i], what);
      GPD_INPUT_CHECK(v >= 1, what << " must be >= 1");
      return static_cast<std::uint64_t>(v);
    };
    if (args[i] == "--budget-ms") {
      flags.budgetMs = value("budget milliseconds");
    } else if (args[i] == "--max-cuts") {
      flags.maxCuts = value("cut limit");
    } else if (args[i] == "--max-combinations") {
      flags.maxCombinations = value("combination limit");
    } else {
      rest.push_back(args[i]);
    }
  }
  args = std::move(rest);
  return flags;
}

// --threads N, shared by detect and plan: run the super-polynomial kernels
// on a worker pool. Stripped out of `args`. Resolution: the flag beats the
// GPD_THREADS environment variable; neither set returns 0 (sequential, no
// pool). The determinism contract (par/pool.h) makes the count a pure
// throughput knob: verdicts, witnesses, and exit codes are identical for
// any value.
int extractThreadsFlag(std::vector<std::string>& args) {
  int threads = 0;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--threads") {
      GPD_INPUT_CHECK(i + 1 < args.size(), "--threads needs a value");
      const long long v = parseInt(args[++i], "thread count");
      GPD_INPUT_CHECK(v >= 1 && v <= 4096,
                      "thread count must be in [1, 4096]");
      threads = static_cast<int>(v);
    } else {
      rest.push_back(args[i]);
    }
  }
  args = std::move(rest);
  return threads != 0 ? threads : par::envThreads();
}

// Observability flags shared by detect, plan and monitor. --trace-out FILE
// arms the gpd::obs span tracer for the run and writes Chrome trace-event
// JSON (chrome://tracing / Perfetto) plus a flame summary afterwards;
// --stats prints the metrics registry (text, or JSON with -f json).
struct ObsFlags {
  std::string traceOut;
  bool stats = false;
  bool json = false;

  bool any() const { return stats || !traceOut.empty(); }
};

// `stripFormat` also claims `-f json|text` for the stats renderer — used by
// the subcommands that have no format flag of their own (detect, monitor);
// plan keeps its existing -f and forwards OutputFlags::json instead.
ObsFlags extractObsFlags(std::vector<std::string>& args, bool stripFormat) {
  ObsFlags flags;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--trace-out") {
      GPD_INPUT_CHECK(i + 1 < args.size(), "--trace-out needs a file path");
      flags.traceOut = args[++i];
    } else if (args[i] == "--stats") {
      flags.stats = true;
    } else if (stripFormat && (args[i] == "-f" || args[i] == "--format")) {
      GPD_INPUT_CHECK(i + 1 < args.size(), args[i] << " needs a value");
      const std::string& value = args[++i];
      GPD_INPUT_CHECK(value == "json" || value == "text",
                      "'" << value << "' is not an output format "
                          << "(expected json or text)");
      flags.json = value == "json";
    } else {
      rest.push_back(args[i]);
    }
  }
  args = std::move(rest);
  return flags;
}

void beginObs(const ObsFlags& flags) {
  if (flags.traceOut.empty()) return;
  obs::tracer().clear();
  obs::tracer().start();
}

// Writes the requested trace/stats artifacts and passes the command's exit
// code through.
int finishObs(const ObsFlags& flags, int code) {
  if (!flags.traceOut.empty()) {
    obs::tracer().stop();
    std::ofstream out(flags.traceOut);
    GPD_INPUT_CHECK(out.good(),
                    "cannot write trace file '" << flags.traceOut << "'");
    obs::tracer().exportChromeTrace(out);
    std::cout << "trace: " << obs::tracer().recordedSpans() << " spans ("
              << obs::tracer().droppedSpans() << " dropped) -> "
              << flags.traceOut << '\n';
    obs::tracer().renderFlameSummary(std::cout);
  }
  if (flags.stats) {
    if (flags.json) {
      obs::renderMetricsJson(std::cout, obs::registry());
    } else {
      obs::renderMetricsText(std::cout, obs::registry());
    }
  }
  return code;
}

// One-line slice pre-pass accounting: the planner's predicted sublattice
// vs what the restricted search actually explored, or the fallback reason.
void printSliceTrace(const detect::SliceTrace& s) {
  std::cout << "  slice: ";
  if (!s.usedSlice) {
    if (s.eventsExcluded == s.eventsTotal && s.eventsTotal > 0) {
      std::cout << "skeleton unsatisfiable (" << s.eventsExcluded << '/'
                << s.eventsTotal << " events excluded)";
    } else {
      std::cout << "pre-pass fell back (unsliced search)";
    }
  } else {
    std::cout << s.eventsExcluded << '/' << s.eventsTotal
              << " events excluded, predicted <= ";
    if (s.predictedSaturated) {
      std::cout << "2^64";
    } else {
      std::cout << s.predictedCuts;
    }
    std::cout << " cuts, explored " << s.exploredCuts;
  }
  char ms[32];
  std::snprintf(ms, sizeof(ms), "%.3f",
                static_cast<double>(s.buildNanos) * 1e-6);
  std::cout << "  (build " << ms << "ms, " << s.oracleCalls
            << " oracle calls)\n";
}

// Prints a three-valued budgeted verdict; exit 0 when answered, 3 on
// Unknown (the budget ran out first).
int reportDetection(const std::string& label, const detect::Detection& det) {
  std::cout << label << ": ";
  switch (det.outcome) {
    case detect::Outcome::Yes:
      if (det.witness.has_value()) {
        std::cout << "witness cut " << det.witness->toString();
      } else {
        std::cout << "holds";
      }
      break;
    case detect::Outcome::No:
      std::cout << "unsatisfied";
      break;
    case detect::Outcome::Unknown:
      std::cout << "unknown (budget exhausted: "
                << control::toString(det.stopReason) << ")";
      break;
  }
  std::cout << "  [" << det.algorithm << "]\n";
  std::cout << "  progress: " << det.progress.cutsVisited << " cuts, "
            << det.progress.combinationsTried << " combinations, peak frontier "
            << det.progress.peakFrontierBytes << " bytes\n";
  if (det.slice) printSliceTrace(*det.slice);
  for (const std::string& skipped : det.skippedSteps) {
    std::cout << "  skipped: " << skipped << '\n';
  }
  // The structured walk: every plan step visited, with per-step wall time
  // for the ones that ran.
  for (const detect::StepTrace& step : det.steps) {
    std::cout << "  step: " << step.algorithm << " ["
              << detect::toString(step.status) << "]";
    if (step.status == detect::StepTrace::Status::Ran) {
      char ms[32];
      std::snprintf(ms, sizeof(ms), "%.3f",
                    static_cast<double>(step.durationNanos) * 1e-6);
      std::cout << ' ' << ms << "ms" << (step.complete ? "" : " (stopped)");
    }
    std::cout << '\n';
  }
  return det.outcome == detect::Outcome::Unknown ? 3 : 0;
}

// Parses "p:var" / "p:!var" terms into a conjunctive predicate, validating
// process ranges and variable existence against the loaded trace.
ConjunctivePredicate parseConjunctive(const io::TraceFile& file,
                                      const std::vector<std::string>& args) {
  ConjunctivePredicate pred;
  for (const std::string& term : args) {
    const auto colon = term.find(':');
    GPD_INPUT_CHECK(colon != std::string::npos,
                    "term '" << term << "' is not of the form p:var");
    const ProcessId p = static_cast<ProcessId>(
        parseInt(term.substr(0, colon), "term process"));
    GPD_INPUT_CHECK(p >= 0 && p < file.computation->processCount(),
                    "term '" << term << "' names process " << p
                             << " but the trace has "
                             << file.computation->processCount());
    std::string var = term.substr(colon + 1);
    const bool negated = !var.empty() && var[0] == '!';
    if (negated) var = var.substr(1);
    GPD_INPUT_CHECK(!var.empty(), "term '" << term << "' has no variable");
    GPD_INPUT_CHECK(file.trace->has(p, var),
                    "process " << p << " has no variable '" << var << "'");
    pred.terms.push_back(negated ? varFalse(p, var) : varTrue(p, var));
  }
  return pred;
}

int detectConj(const io::TraceFile& file, std::vector<std::string> args,
               const BudgetFlags& budgetFlags, par::Pool* pool) {
  bool definitely = false;
  if (!args.empty() && args[0] == "--definitely") {
    definitely = true;
    args.erase(args.begin());
  }
  if (args.empty()) return usage();
  const ConjunctivePredicate pred = parseConjunctive(file, args);
  detect::Detector detector(*file.trace);
  detector.usePool(pool);
  if (budgetFlags.any()) {
    control::Budget budget(budgetFlags.limits());
    const detect::Detection det = definitely ? detector.definitely(pred, budget)
                                             : detector.possibly(pred, budget);
    return reportDetection(definitely ? "definitely(conj)" : "possibly(conj)",
                           det);
  }
  if (definitely) {
    const bool holds = detector.definitely(pred);
    std::cout << "definitely(conj): " << (holds ? "holds" : "does not hold")
              << "  [" << detector.lastAlgorithm() << "]\n";
  } else if (const auto cut = detector.possibly(pred)) {
    std::cout << "possibly(conj): witness cut " << cut->toString() << "  ["
              << detector.lastAlgorithm() << "]\n";
  } else {
    std::cout << "possibly(conj): no consistent cut satisfies it  ["
              << detector.lastAlgorithm() << "]\n";
  }
  return 0;
}

// Parses "p:var" / "p:!var". Malformed literals are the *user's* input
// problem: rejected with an InputError pointing at the offending token
// (exit 1), never silently folded into the usage text.
BoolLiteral parseLiteral(const std::string& term) {
  const auto colon = term.find(':');
  GPD_INPUT_CHECK(colon != std::string::npos,
                  "literal '" << term << "' is not of the form p:var");
  BoolLiteral lit;
  lit.process =
      static_cast<ProcessId>(parseInt(term.substr(0, colon), "literal process"));
  lit.var = term.substr(colon + 1);
  lit.positive = true;
  if (!lit.var.empty() && lit.var[0] == '!') {
    lit.positive = false;
    lit.var = lit.var.substr(1);
  }
  GPD_INPUT_CHECK(!lit.var.empty(),
                  "literal '" << term << "' has no variable name");
  return lit;
}

// Clauses are argv words; literals within a clause are comma-separated:
//   gpdtool detect t.trace cnf 0:x,1:x 2:x,3:!x
CnfPredicate parseCnfPredicate(const std::vector<std::string>& args) {
  CnfPredicate pred;
  for (const std::string& clauseSpec : args) {
    CnfClause clause;
    std::size_t start = 0;
    while (start <= clauseSpec.size()) {
      const std::size_t comma = clauseSpec.find(',', start);
      const std::string term =
          clauseSpec.substr(start, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - start);
      clause.push_back(parseLiteral(term));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    pred.clauses.push_back(std::move(clause));
  }
  return pred;
}

int detectCnf(const io::TraceFile& file, std::vector<std::string> args,
              const BudgetFlags& budgetFlags, par::Pool* pool) {
  bool noSlice = false;
  if (!args.empty() && args[0] == "--no-slice") {
    noSlice = true;
    args.erase(args.begin());
  }
  if (args.empty()) return usage();
  const CnfPredicate pred = parseCnfPredicate(args);
  detect::Detector detector(*file.trace);
  detector.usePool(pool);
  detector.enableSlicing(!noSlice);
  std::cout << "predicate: " << pred.toString()
            << (pred.isSingular() ? " (singular)" : " (not singular)") << '\n';
  if (budgetFlags.any()) {
    control::Budget budget(budgetFlags.limits());
    return reportDetection("possibly", detector.possibly(pred, budget));
  }
  if (const auto cut = detector.possibly(pred)) {
    std::cout << "possibly: witness cut " << cut->toString() << "  ["
              << detector.lastAlgorithm() << "]\n";
  } else {
    std::cout << "possibly: unsatisfied  [" << detector.lastAlgorithm()
              << "]\n";
  }
  if (detector.lastSlice()) printSliceTrace(*detector.lastSlice());
  return 0;
}

Relop parseRelop(const std::string& word) {
  if (word == "lt") return Relop::Less;
  if (word == "le") return Relop::LessEq;
  if (word == "gt") return Relop::Greater;
  if (word == "ge") return Relop::GreaterEq;
  if (word == "eq") return Relop::Equal;
  if (word == "ne") return Relop::NotEqual;
  throw InputError("'" + word +
                   "' is not a relop (expected lt|le|gt|ge|eq|ne)");
}

// Σ <var> over every process that defines it, relop K.
SumPredicate parseSumPredicate(const io::TraceFile& file,
                               const std::vector<std::string>& args) {
  SumPredicate pred;
  pred.relop = parseRelop(args[0]);
  pred.k = parseInt(args[1], "sum bound K");
  for (ProcessId p = 0; p < file.computation->processCount(); ++p) {
    if (file.trace->has(p, args[2])) pred.terms.push_back({p, args[2]});
  }
  GPD_INPUT_CHECK(!pred.terms.empty(), "variable '"
                                           << args[2]
                                           << "' not found on any process");
  return pred;
}

int detectSum(const io::TraceFile& file, const std::vector<std::string>& args,
              const BudgetFlags& budgetFlags, par::Pool* pool) {
  if (args.size() != 3) return usage();
  const SumPredicate pred = parseSumPredicate(file, args);
  detect::Detector detector(*file.trace);
  detector.usePool(pool);
  if (budgetFlags.any()) {
    control::Budget budget(budgetFlags.limits());
    return reportDetection("possibly(" + pred.toString() + ")",
                           detector.possibly(pred, budget));
  }
  if (const auto cut = detector.possibly(pred)) {
    std::cout << "possibly(" << pred.toString() << "): witness cut "
              << cut->toString() << "  [" << detector.lastAlgorithm() << "]\n";
  } else {
    std::cout << "possibly(" << pred.toString() << "): unsatisfied  ["
              << detector.lastAlgorithm() << "]\n";
  }
  return 0;
}

SymmetricPredicate parseSymmetricPredicate(
    const io::TraceFile& file, const std::vector<std::string>& args) {
  std::vector<SumTerm> vars;
  for (ProcessId p = 0; p < file.computation->processCount(); ++p) {
    if (file.trace->has(p, args[1])) vars.push_back({p, args[1]});
  }
  GPD_INPUT_CHECK(!vars.empty(), "variable '"
                                     << args[1]
                                     << "' not found on any process");
  if (args[0] == "xor") return exclusiveOr(vars);
  if (args[0] == "no-majority") return absenceOfSimpleMajority(vars);
  if (args[0] == "no-two-thirds") return absenceOfTwoThirdsMajority(vars);
  if (args[0] == "not-all-equal") return notAllEqual(vars);
  if (args[0].rfind("exactly:", 0) == 0) {
    return exactlyK(vars, static_cast<int>(parseInt(args[0].substr(8), "k")));
  }
  throw InputError("'" + args[0] +
                   "' is not a symmetric predicate kind (expected xor|"
                   "no-majority|no-two-thirds|not-all-equal|exactly:<k>)");
}

int detectSym(const io::TraceFile& file, const std::vector<std::string>& args,
              const BudgetFlags& budgetFlags, par::Pool* pool) {
  if (args.size() != 2) return usage();
  const SymmetricPredicate pred = parseSymmetricPredicate(file, args);
  detect::Detector detector(*file.trace);
  detector.usePool(pool);
  if (budgetFlags.any()) {
    control::Budget budget(budgetFlags.limits());
    return reportDetection("possibly(" + pred.name + ")",
                           detector.possibly(pred, budget));
  }
  if (const auto cut = detector.possibly(pred)) {
    std::cout << "possibly(" << pred.name << "): witness cut "
              << cut->toString() << '\n';
  } else {
    std::cout << "possibly(" << pred.name << "): unsatisfied\n";
  }
  return 0;
}

// Strips `-f json` / `-f text` and `--definitely` out of `args`; returns
// {json, definitely}.
struct OutputFlags {
  bool json = false;
  bool definitely = false;
};

OutputFlags extractFlags(std::vector<std::string>& args) {
  OutputFlags flags;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-f" || args[i] == "--format") {
      GPD_INPUT_CHECK(i + 1 < args.size(), args[i] << " needs a value");
      const std::string& value = args[++i];
      GPD_INPUT_CHECK(value == "json" || value == "text",
                      "'" << value << "' is not an output format "
                          << "(expected json or text)");
      flags.json = value == "json";
    } else if (args[i] == "--definitely") {
      flags.definitely = true;
    } else {
      rest.push_back(args[i]);
    }
  }
  args = std::move(rest);
  return flags;
}

int lintCmd(std::vector<std::string> args) {
  const OutputFlags flags = extractFlags(args);
  if (args.size() != 1) return usage();
  const analyze::LintResult res = analyze::lintTraceFile(args[0], {});
  if (flags.json) {
    analyze::renderJson(std::cout, res.diagnostics);
  } else {
    analyze::renderText(std::cout, args[0], res.diagnostics);
    std::cout << args[0] << ": " << analyze::errorCount(res.diagnostics)
              << " error(s), " << analyze::warningCount(res.diagnostics)
              << " warning(s)\n";
  }
  return res.ok() ? 0 : 1;
}

int planCmd(std::vector<std::string> args) {
  const BudgetFlags budget = extractBudgetFlags(args);
  const int threads = extractThreadsFlag(args);
  ObsFlags obsFlags = extractObsFlags(args, /*stripFormat=*/false);
  const OutputFlags flags = extractFlags(args);
  obsFlags.json = flags.json;  // plan's own -f doubles as the stats format
  if (args.size() < 2) return usage();
  beginObs(obsFlags);
  const io::TraceFile file = io::loadTrace(args[0]);
  const std::string& kind = args[1];
  const std::vector<std::string> rest(args.begin() + 2, args.end());
  const VectorClocks clocks(*file.computation);
  const analyze::Modality modality = flags.definitely
                                         ? analyze::Modality::Definitely
                                         : analyze::Modality::Possibly;
  analyze::AnalysisReport report;
  if (kind == "conj") {
    if (rest.empty()) return usage();
    report = analyze::planConjunctive(clocks, *file.trace,
                                      parseConjunctive(file, rest), modality);
  } else if (kind == "cnf") {
    if (rest.empty()) return usage();
    report = analyze::planCnf(clocks, *file.trace, parseCnfPredicate(rest),
                              modality);
  } else if (kind == "sum") {
    if (rest.size() != 3) return usage();
    report = analyze::planSum(clocks, *file.trace,
                              parseSumPredicate(file, rest), modality);
  } else if (kind == "sym") {
    if (rest.size() != 2) return usage();
    report = analyze::planSymmetric(clocks, *file.trace,
                                    parseSymmetricPredicate(file, rest),
                                    modality);
  } else {
    throw InputError("'" + kind +
                     "' is not a predicate kind (expected conj|cnf|sum|sym)");
  }
  // What the detector would stamp: costs are thread-invariant, the knob
  // only reports how the chosen step's work would be spread.
  if (threads > 0) report.threads = threads;
  if (flags.json) {
    analyze::renderPlanJson(std::cout, report);
  } else {
    analyze::renderPlanText(std::cout, report);
    if (budget.any()) {
      // Budget annotation: which enumeration steps would the budgeted
      // detector run vs skip as over budget (the degradation walk's view).
      const std::uint64_t headroom =
          budget.maxCombinations == 0 ? UINT64_MAX : budget.maxCombinations;
      std::cout << "budget:";
      if (budget.budgetMs != 0) std::cout << " deadline " << budget.budgetMs << "ms";
      if (budget.maxCuts != 0) std::cout << " max-cuts " << budget.maxCuts;
      if (budget.maxCombinations != 0) {
        std::cout << " max-combinations " << budget.maxCombinations;
      }
      std::cout << '\n';
      for (const analyze::PlanStep& step : report.steps) {
        if (!step.applicable || !step.predictedCpdhbInvocations.has_value()) {
          continue;
        }
        const bool fits = *step.predictedCpdhbInvocations <= headroom;
        std::cout << "  " << analyze::toString(step.algorithm) << ": predicted "
                  << *step.predictedCpdhbInvocations << " combinations — "
                  << (fits ? "in budget"
                           : "over budget (skipped; bounded Yes-prover only)")
                  << '\n';
      }
    }
  }
  return finishObs(obsFlags, 0);
}

// Replays the trace through a seeded faulty transport into the resilient
// session and reports what the notification layer had to do to survive it.
int monitorCmd(const std::string& path, std::vector<std::string> args) {
  const ObsFlags obsFlags = extractObsFlags(args, /*stripFormat=*/true);
  monitor::FaultOptions faults;
  monitor::SessionOptions sopt;
  std::uint64_t seed = 1;
  std::string checkpointPath;
  std::uint64_t checkpointEvery = 0;
  std::vector<std::string> terms;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto flagValue = [&](const char* what) -> const std::string& {
      GPD_INPUT_CHECK(i + 1 < args.size(), a << " needs a value (" << what
                                             << ")");
      return args[++i];
    };
    if (a == "--seed") {
      seed = static_cast<std::uint64_t>(parseInt(flagValue("seed"), "seed"));
    } else if (a == "--drop") {
      faults.dropProbability = parseProbability(flagValue("probability"), a.c_str());
    } else if (a == "--dup") {
      faults.duplicateProbability = parseProbability(flagValue("probability"), a.c_str());
    } else if (a == "--reorder") {
      faults.reorderProbability = parseProbability(flagValue("probability"), a.c_str());
    } else if (a == "--burst") {
      faults.burstProbability = parseProbability(flagValue("probability"), a.c_str());
    } else if (a == "--retries") {
      const long long v = parseInt(flagValue("count"), "retries");
      GPD_INPUT_CHECK(v >= 1, "--retries must be >= 1");
      sopt.maxRetries = static_cast<int>(v);
    } else if (a == "--timeout") {
      const long long v = parseInt(flagValue("ticks"), "timeout");
      GPD_INPUT_CHECK(v >= 1, "--timeout must be >= 1");
      sopt.retryTimeout = static_cast<std::uint64_t>(v);
    } else if (a == "--window") {
      const long long v = parseInt(flagValue("size"), "window");
      GPD_INPUT_CHECK(v >= 1, "--window must be >= 1");
      sopt.reorderWindow = static_cast<std::size_t>(v);
    } else if (a == "--queue-limit") {
      const long long v = parseInt(flagValue("size"), "queue limit");
      GPD_INPUT_CHECK(v >= 0, "--queue-limit must be >= 0");
      sopt.monitor.maxQueuePerProcess = static_cast<std::size_t>(v);
    } else if (a == "--max-comparisons-per-report") {
      const long long v = parseInt(flagValue("comparisons"), "slice");
      GPD_INPUT_CHECK(v >= 1, "--max-comparisons-per-report must be >= 1");
      sopt.monitor.maxComparisonsPerReport = static_cast<std::uint64_t>(v);
    } else if (a == "--degrade-on-overflow") {
      sopt.monitor.overflowPolicy = monitor::OverflowPolicy::Degrade;
    } else if (a == "--checkpoint") {
      checkpointPath = flagValue("file");
    } else if (a == "--checkpoint-every") {
      const long long v = parseInt(flagValue("deliveries"), "cadence");
      GPD_INPUT_CHECK(v >= 1, "--checkpoint-every must be >= 1");
      checkpointEvery = static_cast<std::uint64_t>(v);
    } else {
      GPD_INPUT_CHECK(a.empty() || a[0] != '-',
                      "unknown monitor flag '" << a << "'");
      terms.push_back(a);
    }
  }
  if (terms.empty()) return usage();
  GPD_INPUT_CHECK(checkpointEvery == 0 || !checkpointPath.empty(),
                  "--checkpoint-every needs --checkpoint FILE");
  beginObs(obsFlags);

  const io::TraceFile file = io::loadTrace(path);
  const Computation& comp = *file.computation;
  const ConjunctivePredicate pred = parseConjunctive(file, terms);
  GPD_INPUT_CHECK(static_cast<int>(pred.terms.size()) == comp.processCount(),
                  "the online checker needs one term per process ("
                      << comp.processCount() << " processes, "
                      << pred.terms.size() << " terms)");

  const VectorClocks clocks(comp);
  const bool offline = detect::detectConjunctive(clocks, *file.trace, pred).found;

  Rng rng(seed);
  const auto run = graph::randomLinearExtension(comp.toDag(), rng);
  monitor::MonitorSession session(comp.processCount(), sopt);
  // Periodic atomic checkpoints: temp+rename, so a crash at any moment
  // leaves either the previous complete checkpoint or the new one on disk.
  monitor::ReplayHooks hooks;
  std::uint64_t checkpointsWritten = 0;
  if (checkpointEvery != 0) {
    hooks.checkpointEveryDeliveries = checkpointEvery;
    hooks.onCheckpoint = [&](const monitor::MonitorSession& live) {
      io::saveCheckpointAtomic(checkpointPath, live.snapshot());
      ++checkpointsWritten;
    };
  }
  const monitor::ResilientReplayResult res = monitor::replayConjunctiveFaulty(
      clocks, *file.trace, pred, run, session, faults, rng, hooks);

  std::cout << "verdict:          " << monitor::toString(res.verdict) << '\n';
  std::cout << "offline CPDHB:    " << (offline ? "detected" : "not-detected")
            << (res.verdict == monitor::Verdict::Degraded
                    ? "  (degraded verdict is 'unknown', never wrong)"
                    : "")
            << '\n';
  std::cout << "notifications:    " << res.notificationsSent << " sent, "
            << res.wireDeliveries << " wire deliveries\n";
  std::cout << "faults injected:  " << res.dropped << " dropped, "
            << res.duplicated << " duplicated, " << res.reordered
            << " reordered\n";
  std::cout << "recovery:         " << res.nacksSent << " NACKs, "
            << res.retransmissions << " retransmissions, "
            << session.stats().gapsRecovered << " gaps recovered\n";
  std::cout << "degraded streams: " << res.degradedStreams << '\n';
  if (sopt.monitor.maxComparisonsPerReport != 0) {
    std::cout << "slice aborts:     " << session.monitor().sliceAborts()
              << " (per-report limit "
              << sopt.monitor.maxComparisonsPerReport << " comparisons)\n";
  }
  for (ProcessId p = 0; p < comp.processCount(); ++p) {
    std::cout << "  p" << p << ": " << monitor::toString(session.health(p))
              << '\n';
  }
  if (!checkpointPath.empty()) {
    io::saveCheckpointAtomic(checkpointPath, session.snapshot());
    const monitor::MonitorSession restored = monitor::MonitorSession::restore(
        io::loadCheckpoint(checkpointPath), sopt);
    const bool ok = restored.verdict() == session.verdict() &&
                    restored.detected() == session.detected();
    std::cout << "checkpoint:       " << checkpointPath << " round-trip "
              << (ok ? "ok" : "MISMATCH");
    if (checkpointEvery != 0) {
      std::cout << " (" << checkpointsWritten << " periodic, every "
                << checkpointEvery << " deliveries)";
    }
    std::cout << '\n';
    if (!ok) return 2;
  }
  const bool agree =
      res.verdict == monitor::Verdict::Degraded || res.detected == offline;
  if (!agree) {
    obs::log::error("gpdtool", "monitor: online verdict disagrees with offline CPDHB");
    return 2;
  }
  return finishObs(obsFlags, 0);
}

// scrape: strict-parse an OpenMetrics exposition written by
// `gpdd --telemetry-file` (or any Prometheus text scrape that follows the
// same subset) and pretty-print it. `-` reads stdin. A malformed scrape is
// an InputError: exit 1 with the offending line number.
int scrapeCmd(const std::vector<std::string>& args) {
  bool json = false;
  std::string path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "-f") {
      GPD_INPUT_CHECK(i + 1 < args.size() && args[i + 1] == "json",
                      "-f takes exactly 'json'");
      json = true;
      ++i;
    } else {
      GPD_INPUT_CHECK(path.empty(), "scrape takes exactly one file");
      path = args[i];
    }
  }
  if (path.empty()) return usage();
  std::ostringstream buf;
  if (path == "-") {
    buf << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    GPD_INPUT_CHECK(in.good(), "cannot open '" << path << "'");
    buf << in.rdbuf();
  }
  const obs::Exposition exp = obs::parseExposition(buf.str());
  if (json) {
    std::cout << "{\"families\":[";
    bool firstFamily = true;
    for (const obs::ExpositionFamily& fam : exp.families) {
      if (!firstFamily) std::cout << ',';
      firstFamily = false;
      std::cout << "{\"name\":\"" << analyze::jsonEscape(fam.name)
                << "\",\"type\":\"" << fam.type << "\",\"samples\":[";
      bool firstSample = true;
      for (const obs::ExpositionSample& s : fam.samples) {
        if (!firstSample) std::cout << ',';
        firstSample = false;
        std::cout << "{\"name\":\"" << analyze::jsonEscape(s.name) << '"';
        if (!s.labels.empty()) {
          std::cout << ",\"labels\":{";
          bool firstLabel = true;
          for (const auto& [k, v] : s.labels) {
            if (!firstLabel) std::cout << ',';
            firstLabel = false;
            std::cout << '"' << analyze::jsonEscape(k) << "\":\""
                      << analyze::jsonEscape(v) << '"';
          }
          std::cout << '}';
        }
        std::cout << ",\"value\":" << s.value << '}';
      }
      std::cout << "]}";
    }
    std::cout << "]}\n";
    return 0;
  }
  std::size_t sampleCount = 0;
  for (const obs::ExpositionFamily& fam : exp.families) {
    std::cout << fam.name << " (" << fam.type << ")\n";
    for (const obs::ExpositionSample& s : fam.samples) {
      std::cout << "  " << s.name;
      if (!s.labels.empty()) {
        std::cout << '{';
        bool firstLabel = true;
        for (const auto& [k, v] : s.labels) {
          if (!firstLabel) std::cout << ',';
          firstLabel = false;
          std::cout << k << "=\"" << obs::escapeLabelValue(v) << '"';
        }
        std::cout << '}';
      }
      std::cout << ' ' << s.value << '\n';
      ++sampleCount;
    }
  }
  std::cout << "scrape: " << exp.families.size() << " families, "
            << sampleCount << " samples\n";
  return 0;
}

int selftest() {
  const std::string path = "/tmp/gpdtool_selftest.trace";
  if (generate("token-ring-rogue", path, 7) != 0) return 2;
  if (inspect(path) != 0) return 2;
  const io::TraceFile file = io::loadTrace(path);
  // The rogue (p2) must be able to share the CS with someone.
  detect::Detector detector(*file.trace);
  bool anyViolation = false;
  for (ProcessId p = 0; p < file.computation->processCount(); ++p) {
    if (p == 2) continue;
    ConjunctivePredicate overlap{{varCompare(2, "cs", Relop::GreaterEq, 1),
                                  varCompare(p, "cs", Relop::GreaterEq, 1)}};
    anyViolation |= detector.possibly(overlap).has_value();
  }
  if (!anyViolation) {
    obs::log::error("gpdtool", "selftest: expected a CS violation in the rogue trace");
    return 2;
  }
  // Resilient online monitor: faulty replay plus a checkpoint round-trip
  // must agree with offline detection (or explicitly degrade, never lie).
  const std::vector<std::string> margs = {
      "--seed", "5",        "--drop",       "0.15",
      "--dup",  "0.1",      "--reorder",    "0.1",
      "--checkpoint",        "/tmp/gpdtool_selftest.ckpt",
      "0:cs",   "1:cs",     "2:cs",         "3:cs",
      "4:cs"};
  if (monitorCmd(path, margs) != 0) return 2;
  // The generated trace must lint clean (the simulator cannot produce a
  // structurally broken trace) and the planner must run on every predicate
  // kind.
  if (lintCmd({path}) != 0) {
    obs::log::error("gpdtool", "selftest: generated trace failed lint");
    return 2;
  }
  if (planCmd({path, "conj", "0:cs", "1:cs"}) != 0 ||
      planCmd({path, "cnf", "0:cs,1:cs", "2:cs", "-f", "json"}) != 0 ||
      planCmd({path, "sum", "ge", "1", "cs", "--definitely"}) != 0) {
    obs::log::error("gpdtool", "selftest: plan subcommand failed");
    return 2;
  }
  // Budgeted anytime detection: a generous budget must reproduce the exact
  // verdict; a one-cut budget on a lattice-bound (non-singular) predicate
  // must concede unknown (exit 3), never a wrong yes/no.
  {
    ConjunctivePredicate overlap{{varCompare(2, "cs", Relop::GreaterEq, 1),
                                  varCompare(0, "cs", Relop::GreaterEq, 1)}};
    control::BudgetLimits generousLimits;
    generousLimits.deadlineMillis = 60000;
    control::Budget generous(generousLimits);
    const detect::Detection det = detector.possibly(overlap, generous);
    const bool unbudgeted = detector.possibly(overlap).has_value();
    if ((det.outcome == detect::Outcome::Yes) != unbudgeted ||
        det.outcome == detect::Outcome::Unknown) {
      obs::log::error("gpdtool", "selftest: generous budget changed the verdict");
      return 2;
    }
    CnfPredicate shared;  // both clauses host p0: not singular → lattice
    shared.clauses.push_back({BoolLiteral{0, "cs", true},
                              BoolLiteral{1, "cs", true}});
    shared.clauses.push_back({BoolLiteral{0, "cs", true}});
    control::BudgetLimits tinyLimits;
    tinyLimits.maxCuts = 1;
    control::Budget tiny(tinyLimits);
    const detect::Detection starved = detector.possibly(shared, tiny);
    if (starved.outcome != detect::Outcome::Unknown ||
        starved.stopReason != control::StopReason::CutLimit) {
      obs::log::error("gpdtool", "selftest: one-cut budget did not concede unknown");
      return 2;
    }
  }
  std::cout << "selftest: OK\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.empty()) return usage();
    const std::string& cmd = args[0];
    if (cmd == "--version" || cmd == "version") {
      std::cout << tools::versionLine("gpdtool") << '\n';
      return 0;
    }
    if (cmd == "selftest") return selftest();
    if (cmd == "generate") {
      if (args.size() < 3) return usage();
      const std::uint64_t seed =
          args.size() > 3
              ? static_cast<std::uint64_t>(parseInt(args[3], "seed"))
              : 1;
      return generate(args[1], args[2], seed);
    }
    if (cmd == "monitor") {
      if (args.size() < 2) return usage();
      return monitorCmd(args[1],
                        std::vector<std::string>(args.begin() + 2, args.end()));
    }
    if (cmd == "inspect") {
      if (args.size() != 2) return usage();
      return inspect(args[1]);
    }
    if (cmd == "scrape") {
      return scrapeCmd(std::vector<std::string>(args.begin() + 1, args.end()));
    }
    if (cmd == "lint") {
      return lintCmd(std::vector<std::string>(args.begin() + 1, args.end()));
    }
    if (cmd == "plan") {
      return planCmd(std::vector<std::string>(args.begin() + 1, args.end()));
    }
    if (cmd == "detect") {
      if (args.size() < 3) return usage();
      const io::TraceFile file = io::loadTrace(args[1]);
      std::vector<std::string> rest(args.begin() + 3, args.end());
      const BudgetFlags budget = extractBudgetFlags(rest);
      const int threads = extractThreadsFlag(rest);
      const ObsFlags obsFlags = extractObsFlags(rest, /*stripFormat=*/true);
      const std::string& kind = args[2];
      if (kind != "conj" && kind != "cnf" && kind != "sum" && kind != "sym") {
        return usage();
      }
      beginObs(obsFlags);
      std::unique_ptr<par::Pool> pool;
      if (threads > 0) pool = std::make_unique<par::Pool>(threads);
      const int code =
          kind == "conj"  ? detectConj(file, rest, budget, pool.get())
          : kind == "cnf" ? detectCnf(file, rest, budget, pool.get())
          : kind == "sum" ? detectSum(file, rest, budget, pool.get())
                          : detectSym(file, rest, budget, pool.get());
      return finishObs(obsFlags, code);
    }
    return usage();
  } catch (const InputError& e) {
    // Bad input (file or arguments): the caller's problem, exit 1.
    gpd::obs::log::error("gpdtool", e.what());
    return 1;
  } catch (const std::exception& e) {
    // CheckFailure or anything else unexpected: our problem, exit 2.
    gpd::obs::log::Event(gpd::obs::log::Level::kError, "gpdtool",
                         "internal error")
        .kv("what", e.what());
    return 2;
  }
}
