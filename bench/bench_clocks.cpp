// A2 — ablation: vector-clock consistency tests vs transitive closure.
//
// The detection algorithms issue millions of pairwise tests; vector clocks
// answer each in O(1) after an O(n·E) precomputation, where the dense
// transitive closure costs O(V·E/64) to build and O(V²/64) memory. Built on
// google-benchmark.
#include <benchmark/benchmark.h>

#include "gpd.h"

namespace {

using namespace gpd;

Computation makeComputation(int processes, int events) {
  RandomComputationOptions opt;
  opt.processes = processes;
  opt.eventsPerProcess = events;
  opt.messageProbability = 0.4;
  Rng rng(42);
  return randomComputation(opt, rng);
}

void BM_VectorClockBuild(benchmark::State& state) {
  const Computation comp =
      makeComputation(static_cast<int>(state.range(0)), 50);
  for (auto _ : state) {
    VectorClocks clocks(comp);
    benchmark::DoNotOptimize(clocks.clock({0, 1}, 0));
  }
}
BENCHMARK(BM_VectorClockBuild)->Arg(4)->Arg(8)->Arg(16);

void BM_ReachabilityBuild(benchmark::State& state) {
  const Computation comp =
      makeComputation(static_cast<int>(state.range(0)), 50);
  const graph::Dag dag = comp.toDag();
  for (auto _ : state) {
    graph::Reachability reach(dag);
    benchmark::DoNotOptimize(reach.reaches(0, 1));
  }
}
BENCHMARK(BM_ReachabilityBuild)->Arg(4)->Arg(8)->Arg(16);

void BM_PairConsistencyViaClocks(benchmark::State& state) {
  const Computation comp = makeComputation(8, 50);
  const VectorClocks clocks(comp);
  Rng rng(7);
  std::vector<std::pair<EventId, EventId>> pairs;
  for (int i = 0; i < 1024; ++i) {
    const ProcessId p = static_cast<ProcessId>(rng.index(8));
    const ProcessId q = static_cast<ProcessId>(rng.index(8));
    pairs.push_back({{p, static_cast<int>(rng.index(comp.eventCount(p)))},
                     {q, static_cast<int>(rng.index(comp.eventCount(q)))}});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [e, f] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(clocks.pairConsistent(e, f));
  }
}
BENCHMARK(BM_PairConsistencyViaClocks);

void BM_LeqViaReachability(benchmark::State& state) {
  const Computation comp = makeComputation(8, 50);
  const graph::Reachability reach(comp.toDag());
  Rng rng(7);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 1024; ++i) {
    pairs.push_back({static_cast<int>(rng.index(comp.totalEvents())),
                     static_cast<int>(rng.index(comp.totalEvents()))});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [u, v] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(reach.reaches(u, v));
  }
}
BENCHMARK(BM_LeqViaReachability);

void BM_DirectDependencyBuild(benchmark::State& state) {
  const Computation comp = makeComputation(8, 50);
  for (auto _ : state) {
    DirectDependencyClocks dd(comp);
    benchmark::DoNotOptimize(dd.direct({0, 1}, 0));
  }
}
BENCHMARK(BM_DirectDependencyBuild);

void BM_DirectDependencyReconstruct(benchmark::State& state) {
  const Computation comp = makeComputation(8, 50);
  const DirectDependencyClocks dd(comp);
  Rng rng(7);
  std::vector<EventId> events;
  for (int i = 0; i < 256; ++i) {
    const ProcessId p = static_cast<ProcessId>(rng.index(8));
    events.push_back({p, static_cast<int>(rng.index(comp.eventCount(p)))});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dd.reconstructClock(events[i++ & 255]));
  }
}
BENCHMARK(BM_DirectDependencyReconstruct);

void BM_LamportClocks(benchmark::State& state) {
  const Computation comp = makeComputation(8, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lamportClocks(comp));
  }
}
BENCHMARK(BM_LamportClocks);

void BM_CutConsistency(benchmark::State& state) {
  const Computation comp =
      makeComputation(static_cast<int>(state.range(0)), 50);
  const VectorClocks clocks(comp);
  const Cut cut = finalCut(comp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(clocks.isConsistent(cut));
  }
}
BENCHMARK(BM_CutConsistency)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
