// E1 — the Figure 1 complexity landscape, measured.
//
// One row per (predicate family, algorithm): detection time as the trace
// grows. Families the paper classifies polynomial (conjunctive / CPDHB,
// receive-ordered singular k-CNF / CPDSC, relational inequalities /
// min-cut, bounded-Δ exact sum / Theorem 7, symmetric) must scale
// polynomially; the exhaustive lattice baseline — the only general method
// for the NP-complete families — must blow up.
#include "bench_util.h"

namespace {

using namespace gpd;

struct Workload {
  Computation comp;
  VariableTrace trace;

  Workload(Computation c, Rng& rng, double density)
      : comp(std::move(c)), trace(comp) {
    defineRandomBools(trace, "b", density, rng);
    defineRandomCounters(trace, "x", 0, 1, rng);
  }
};

}  // namespace

int main() {
  bench::banner("E1 / Fig. 1 landscape",
                "Detection time (ms) per predicate family and algorithm as "
                "events per process grow; n = 6 processes (3 groups of 2). "
                "lattice-cuts shows the state count exhaustive search pays.");

  Table table({"family", "algorithm", "events/proc", "ms", "result"});
  Rng rng(99);

  for (const int events : {8, 16, 32, 64, 128}) {
    GroupedComputationOptions gopt;
    gopt.groups = 3;
    gopt.groupSize = 2;
    gopt.eventsPerProcess = events;
    gopt.messageProbability = 0.3;
    Rng local = rng.fork();
    Workload w(randomGroupedComputation(gopt, local), local, 0.25);
    const VectorClocks clocks(w.comp);

    // Conjunctive — CPDHB (polynomial).
    ConjunctivePredicate conj;
    for (ProcessId p = 0; p < 6; ++p) conj.terms.push_back(varTrue(p, "b"));
    bool found = false;
    double ms = bench::timeMs([&] {
      found = detect::detectConjunctive(clocks, w.trace, conj).found;
    });
    table.row("conjunctive", "cpdhb", events, bench::fmtMs(ms),
              found ? "found" : "absent");

    // Singular 2-CNF, general — chain cover (exponential in clauses, fast
    // here: 3 clauses).
    CnfPredicate cnf;
    for (int g = 0; g < 3; ++g) {
      cnf.clauses.push_back(
          {{2 * g, "b", true}, {2 * g + 1, "b", true}});
    }
    ms = bench::timeMs([&] {
      found = detect::detectSingularByChainCover(clocks, w.trace, cnf).found;
    });
    table.row("singular 2-CNF", "chain-cover", events, bench::fmtMs(ms),
              found ? "found" : "absent");

    // Relational inequality — min-cut extrema (polynomial, arbitrary Δ).
    std::vector<SumTerm> terms;
    for (ProcessId p = 0; p < 6; ++p) terms.push_back({p, "x"});
    SumPredicate ge{terms, Relop::GreaterEq, 4};
    std::optional<Cut> cut;
    ms = bench::timeMs([&] { cut = detect::possiblySum(clocks, w.trace, ge); });
    table.row("sum >= K", "min-cut-extrema", events, bench::fmtMs(ms),
              cut ? "found" : "absent");

    // Bounded-Δ exact sum — Theorem 7 (polynomial).
    SumPredicate eq{terms, Relop::Equal, 3};
    ms = bench::timeMs([&] { cut = detect::possiblySum(clocks, w.trace, eq); });
    table.row("sum == K, |Δ|<=1", "theorem-7", events, bench::fmtMs(ms),
              cut ? "found" : "absent");

    // Symmetric — disjunction of exact sums (polynomial).
    const SymmetricPredicate sym = exclusiveOr(
        {{0, "b"}, {1, "b"}, {2, "b"}, {3, "b"}, {4, "b"}, {5, "b"}});
    ms = bench::timeMs([&] {
      cut = detect::possiblySymmetric(clocks, w.trace, sym);
    });
    table.row("symmetric (xor)", "exact-sum-disjunction", events,
              bench::fmtMs(ms), cut ? "found" : "absent");

    // Exhaustive lattice baseline — only on sizes where it terminates soon.
    if (events <= 16) {
      std::uint64_t cuts = 0;
      ms = bench::timeMs([&] {
        cuts = lattice::forEachConsistentCut(clocks,
                                             [](const Cut&) { return true; });
      });
      table.row("ANY (baseline)", "lattice-enumeration", events,
                bench::fmtMs(ms), std::to_string(cuts) + " cuts");
    } else {
      table.row("ANY (baseline)", "lattice-enumeration", events, "-",
                "skipped (state explosion)");
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: every paper-polynomial family scales "
               "smoothly; the lattice row is dropped past 16 events/proc "
               "because the cut count is already in the millions.\n";
  return 0;
}
