// A13 — high availability: incremental checkpoints + hot-standby cost
// (`bench_ha`).
//
// Three questions behind gpdd's HA story:
//   1. What does a checkpoint cost when only a fraction of sessions changed?
//      Delta manifests must be sublinear in *open* sessions — bytes and
//      capture time should track the dirty fraction, with the <10%-dirty
//      rows far under the full manifest.
//   2. What does a follower pay to attach (snapshot encode + restore) and
//      to keep up (replaying the leader's pump stream)?
//   3. What does promotion cost at the moment of failover? (The wire gap is
//      measured by tools/gpdd_loadgen --kill-leader; this isolates the
//      in-process hand-over, which must be microseconds — O(1), not a
//      replay.)
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "service/replica.h"
#include "util/stopwatch.h"

namespace {

using namespace gpd;

std::string tenantSession(int i) {
  std::string id = "t";
  id += std::to_string(i % 16);
  id += " s";
  id += std::to_string(i);
  return id;
}

// Opens `sessions` 3-process sessions, each with one parked notification so
// the manifest carries real per-session state.
void openWave(service::Engine& eng, int sessions) {
  for (int i = 0; i < sessions; ++i) {
    const std::string ts = tenantSession(i);
    eng.submit("OPEN " + ts + " 3");
    eng.submit("EV " + ts + " 0 1 2 0 0");
  }
  std::vector<service::Response> out;
  eng.pump(out);
}

std::string manifestOf(service::Engine& eng) {
  std::ostringstream os;
  eng.writeManifest(os);
  return os.str();
}

}  // namespace

int main() {
  using namespace gpd;
  bench::banner(
      "A13 / gpdd high availability (gpd::service)",
      "Delta checkpoint bytes vs dirty fraction (sublinear target), "
      "follower attach + replay cost, and promotion latency. The end-to-end "
      "failover gap is measured by tools/gpdd_loadgen --kill-leader.");

  // --- 1. Checkpoint bytes vs dirty fraction ----------------------------
  {
    const int kSessions = 2048;
    service::Engine eng{service::EngineOptions{}};
    openWave(eng, kSessions);

    Stopwatch sw;
    const service::CheckpointCapture full = eng.captureCheckpoint(false);
    const double fullMs = sw.elapsedMillis();
    std::printf("checkpoint: %d open sessions, full manifest %.1f KiB\n",
                kSessions, static_cast<double>(full.text.size()) / 1024.0);
    std::printf("  %7s  %11s  %9s  %11s  %6s\n", "dirty", "sessions",
                "bytes", "capture ms", "ratio");
    std::printf("  %7s  %11d  %9zu  %11s  %6s\n", "full", kSessions,
                full.text.size(), bench::fmtMs(fullMs).c_str(), "1.000");

    std::vector<service::CheckpointCapture> deltas;
    for (const int pct : {1, 5, 10, 50, 100}) {
      const int dirty = kSessions * pct / 100;
      for (int i = 0; i < dirty; ++i) {
        eng.submit("EV " + tenantSession(i) + " 1 0 0 1 0");
      }
      std::vector<service::Response> out;
      eng.pump(out);
      sw.reset();
      service::CheckpointCapture cap = eng.captureCheckpoint(true);
      const double ms = sw.elapsedMillis();
      GPD_CHECK_MSG(cap.delta, "engine refused a delta capture");
      GPD_CHECK_MSG(cap.sessions == static_cast<std::size_t>(dirty),
                    "delta captured " << cap.sessions << " sessions, dirtied "
                                      << dirty);
      std::printf("  %6d%%  %11d  %9zu  %11s  %6.3f\n", pct, dirty,
                  cap.text.size(), bench::fmtMs(ms).c_str(),
                  static_cast<double>(cap.text.size()) /
                      static_cast<double>(full.text.size()));
      deltas.push_back(std::move(cap));
    }

    // The chain must land exactly on the live engine.
    auto restored = service::Engine::restoreManifestText(full.text, {});
    for (const service::CheckpointCapture& d : deltas) {
      restored->applyDeltaText(d.text);
    }
    GPD_CHECK_MSG(manifestOf(*restored) == manifestOf(eng),
                  "full+delta chain diverged from the live engine");
    std::printf("  (full + 5 deltas restore byte-identical)\n\n");
  }

  // --- 2. Follower attach + replay --------------------------------------
  // --- 3. Promotion latency ----------------------------------------------
  {
    const int kSessions = 512, kPumps = 64, kCmdsPerPump = 128;
    service::Engine leader{service::EngineOptions{}};
    openWave(leader, kSessions);

    service::ReplicationFollower follower{service::EngineOptions{}};
    Stopwatch sw;
    follower.consume(service::captureHelloRecord());
    const service::CheckpointCapture snap = leader.captureCheckpoint(false);
    for (const std::string& rec : service::captureSnapshotRecord(snap)) {
      follower.consume(rec);
    }
    const double attachMs = sw.elapsedMillis();

    double replayMs = 0.0, leaderMs = 0.0;
    std::size_t cmds = 0;
    for (int b = 0; b < kPumps; ++b) {
      std::vector<service::ReplicatedCmd> batch;
      batch.reserve(kCmdsPerPump);
      for (int i = 0; i < kCmdsPerPump; ++i) {
        const int s = (b * kCmdsPerPump + i) % kSessions;
        const int seq = 1 + (b * kCmdsPerPump + i) / kSessions;
        batch.push_back({1 + s % 4, "EV " + tenantSession(s) + " 1 " +
                                        std::to_string(seq) + " 0 " +
                                        std::to_string(seq + 1) + " 0"});
      }
      cmds += batch.size();
      const auto records =
          service::capturePumpRecord(leader.stats().pumps, batch);
      sw.reset();
      for (const std::string& rec : records) follower.consume(rec);
      replayMs += sw.elapsedMillis();
      sw.reset();
      for (service::ReplicatedCmd& c : batch) {
        leader.submit(std::move(c.payload), c.origin);
      }
      std::vector<service::Response> out;
      leader.pump(out);
      leaderMs += sw.elapsedMillis();
    }

    sw.reset();
    auto promo = follower.promote();
    const double promoteMs = sw.elapsedMillis();
    GPD_CHECK_MSG(manifestOf(*promo.engine) == manifestOf(leader),
                  "promoted follower diverged from the leader");

    std::printf("replication: %d sessions, %d pumps x %d commands\n",
                kSessions, kPumps, kCmdsPerPump);
    std::printf("  attach (snapshot %6.1f KiB)   %8s ms\n",
                static_cast<double>(snap.text.size()) / 1024.0,
                bench::fmtMs(attachMs).c_str());
    std::printf("  leader execute                %8s ms  %7.0f cmds/s\n",
                bench::fmtMs(leaderMs).c_str(),
                static_cast<double>(cmds) / (leaderMs / 1000.0));
    std::printf("  follower replay               %8s ms  %7.0f cmds/s  "
                "(%.2fx leader cost)\n",
                bench::fmtMs(replayMs).c_str(),
                static_cast<double>(cmds) / (replayMs / 1000.0),
                replayMs / leaderMs);
    std::printf("  promote                       %8s ms  "
                "(manifest byte-identical to leader)\n",
                bench::fmtMs(promoteMs).c_str());
  }
  return 0;
}
