// E5 — Sec. 3.2: the polynomial special case (receive-/send-ordered
// computations) scales smoothly where the general problem is NP-complete.
//
// Expected shape: CPDSC runtime grows polynomially with the trace length
// for both disciplines, stays close to the general chain-cover algorithm on
// these instances (which enumerates few combinations anyway), and the
// exhaustive lattice baseline departs exponentially.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("E5 / Sec. 3.2 receive-/send-ordered special case",
                "Singular 2-CNF detection on disciplined computations; "
                "3 groups of 2 processes.");

  Table table({"discipline", "events/proc", "cpdsc_ms", "chainCover_ms",
               "lattice_ms", "verdicts_agree"});
  Rng rng(31415);

  for (const auto discipline : {OrderingDiscipline::ReceiveOrdered,
                                OrderingDiscipline::SendOrdered}) {
    const char* name =
        discipline == OrderingDiscipline::ReceiveOrdered ? "receive" : "send";
    for (const int events : {8, 16, 32, 64}) {
      GroupedComputationOptions opt;
      opt.groups = 3;
      opt.groupSize = 2;
      opt.eventsPerProcess = events;
      opt.messageProbability = 0.4;
      opt.discipline = discipline;
      Rng local = rng.fork();
      const Computation comp = randomGroupedComputation(opt, local);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.1, local);
      CnfPredicate pred;
      for (int g = 0; g < 3; ++g) {
        pred.clauses.push_back(
            {{2 * g, "b", true}, {2 * g + 1, "b", true}});
      }
      const VectorClocks clocks(comp);

      detect::CpdscResult special;
      const double cpdscMs = bench::timeMs([&] {
        special = detect::detectSingularSpecialCase(clocks, trace, pred);
      });
      GPD_CHECK(special.applicable());

      detect::SingularCnfResult general;
      const double chainMs = bench::timeMs([&] {
        general = detect::detectSingularByChainCover(clocks, trace, pred);
      });

      std::string latticeMs = "-";
      bool agree = special.found() == general.found;
      if (events <= 16) {
        bool latticeFound = false;
        latticeMs = bench::fmtMs(bench::timeMs([&] {
          latticeFound = lattice::possiblyExhaustive(clocks, [&](const Cut& c) {
            return pred.holdsAtCut(trace, c);
          });
        }));
        agree = agree && latticeFound == special.found();
      }
      table.row(name, events, bench::fmtMs(cpdscMs), bench::fmtMs(chainMs),
                latticeMs, agree ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: cpdsc_ms grows polynomially with events/proc "
               "under both disciplines; the lattice column is omitted past "
               "16 events/proc.\n";
  return 0;
}
