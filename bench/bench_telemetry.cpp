// A14 — gpdd live telemetry overhead (`bench_telemetry`).
//
// PR 9 wires the service loop with the full telemetry surface: per-pump
// counters/gauges/histograms, a per-pump flight-recorder event, a per-pump
// (suppressed) debug log event, per-tenant gauge publication, and a
// periodic OpenMetrics render.  The default-on contract is the same as
// A10's: all of it must cost < 2% against a -DGPD_OBS_DISABLED=ON build of
// the identical soak.  The kernel is an in-process Engine soak shaped like
// the CI chaos run — 2500 sessions submitting events, pumping in batches,
// closing — printed as a machine-readable `TELBENCH` line that CI diffs
// across the two builds.
//
// The OpenMetrics render itself runs in BOTH modes (gpdd's scrape surface
// never disappears; the kill-switch registry just renders zeros), so the
// diff isolates exactly the instrumentation that compiles out.
#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "service/engine.h"
#include "util/stopwatch.h"

namespace {

using namespace gpd;

#ifndef GPD_OBS_DISABLED
constexpr const char* kMode = "default-on";
#else
constexpr const char* kMode = "disabled";
#endif

std::string tenantSession(int i) {
  std::string id = "t";
  id += std::to_string(i % 16);
  id += " s";
  id += std::to_string(i);
  return id;
}

// One full soak: open/feed/pump/close kSessions sessions with the gpdd
// telemetry surface active around every pump. Returns elapsed ms and
// accumulates rendered bytes so the render cannot be optimized away.
double soak(int sessions, obs::FlightRecorder& recorder,
            std::size_t* renderedBytes) {
  service::Engine eng{service::EngineOptions{}};
  std::vector<service::Response> out;
  Stopwatch sw;
  std::uint64_t pumps = 0;
  const auto pumpOnce = [&] {
    Stopwatch pumpTimer;
    out.clear();
    eng.pump(out);
    GPD_OBS_HISTOGRAM("gpdd_pump_nanos", pumpTimer.elapsedNanos());
    GPD_OBS_COUNTER_ADD("gpdd_pumps", 1);
    GPD_OBS_GAUGE_SET("gpdd_queue_depth", 0);
    GPD_LOG_DEBUG("pump", "batch done")
        .kv("i", pumps)
        .kv("out", static_cast<std::uint64_t>(out.size()));
    GPD_FR_RECORD(recorder, "pump", "i=%llu out=%zu",
                  static_cast<unsigned long long>(pumps), out.size());
    ++pumps;
    if (pumps % 20 == 0) {
      eng.publishTenantMetrics();
      std::ostringstream os;
      obs::renderOpenMetrics(os, obs::registry().snapshot(),
                             {{"version", "bench"}, {"obs", kMode}});
      *renderedBytes += os.str().size();
    }
  };
  for (int i = 0; i < sessions; ++i) {
    const std::string ts = tenantSession(i);
    eng.submit("OPEN " + ts + " 3");
    eng.submit("EV " + ts + " 0 1 2 0 0");
    eng.submit("EV " + ts + " 1 0 1 0 1");
    if (i % 50 == 49) pumpOnce();
  }
  for (int i = 0; i < sessions; ++i) {
    eng.submit("CLOSE " + tenantSession(i));
    if (i % 50 == 49) pumpOnce();
  }
  pumpOnce();
  return sw.elapsedMillis();
}

}  // namespace

int main() {
  using namespace gpd;
  bench::banner(
      "A14 / gpdd live telemetry overhead",
      "Engine soak with the full PR 9 telemetry surface armed: per-pump "
      "metrics + flight-recorder + suppressed debug log + periodic "
      "OpenMetrics render. Compare TELBENCH lines across a default-on and "
      "a -DGPD_OBS_DISABLED=ON build: target < 2% overhead.");

  obs::registry().reset();
  // The suppressed-debug path is the shipping default: level info, so the
  // per-pump GPD_LOG_DEBUG event is filtered before rendering.
  obs::log::setLevel(obs::log::Level::kInfo);

  obs::FlightRecorder recorder;
  const std::string ringPath = "/tmp/gpd_bench_telemetry.ring";
  recorder.openRing(ringPath, 256);

  constexpr int kSessions = 2500;
  std::size_t renderedBytes = 0;
  double best = 1e300;
  for (int round = 0; round < 3; ++round) {
    best = std::min(best, soak(kSessions, recorder, &renderedBytes));
  }

  std::printf("soak: %d sessions, %zu rendered scrape bytes, ring %s\n",
              kSessions, renderedBytes, ringPath.c_str());
  std::printf("TELBENCH mode=%s kernel=engine-soak ms=%.3f\n", kMode, best);
  std::remove(ringPath.c_str());
  return 0;
}
