// A9 — budget-layer overhead on paths that never exhaust it.
//
// Threading a control::Budget through every kernel must be close to free
// when no limit trips: the per-unit cost is one latched-state test plus an
// integer compare, with the steady_clock read amortized (every 64 cut
// charges) or folded into already-coarse units (one poll per enumeration
// combination). This harness times each budget-threaded kernel twice on
// identical inputs — budget == nullptr vs an unlimited Budget with a far
// deadline (so the poll path, not just the null test, is exercised) — and
// reports the relative overhead. Target: < 3% on every row.
//
// Workloads are chosen so the budgeted unit is actually charged many
// times: the chain-cover row exhausts a Theorem-1 gadget of an UNSAT
// formula (every selection tried, none consistent), and the DPLL and
// detector rows repeat the query inside the timed lambda to lift the
// measurement out of clock jitter. Both lambdas run once untimed first so
// neither side pays cold-cache warm-up.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("A9 / execution-budget overhead",
                "Each budget-threaded kernel, unbudgeted vs carrying an "
                "unlimited Budget (far deadline, no tripping limit). "
                "Overhead target: < 3% per row.");

  Rng rng(909);
  Table table({"kernel", "work", "plain_ms", "budgeted_ms", "overhead_%"});
  const auto overhead = [](double plain, double budgeted) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f",
                  plain > 0 ? (budgeted - plain) / plain * 100.0 : 0.0);
    return std::string(buf);
  };
  // A real Budget with a deadline that cannot trip, so the amortized poll
  // (clock read) is part of the measured cost.
  control::BudgetLimits farDeadline;
  farDeadline.deadlineMillis = 1000 * 60 * 60;
  // Warm both sides untimed, then take the interleaved minimum of several
  // timed rounds: the minimum is robust against bursty scheduler noise,
  // and interleaving keeps slow drift from biasing one side.
  const auto measure = [&](const std::function<void()>& plainFn,
                           const std::function<void()>& budgetedFn) {
    plainFn();
    budgetedFn();
    double plain = 1e300;
    double budgeted = 1e300;
    for (int round = 0; round < 7; ++round) {
      {
        Stopwatch sw;
        plainFn();
        plain = std::min(plain, sw.elapsedMillis());
      }
      {
        Stopwatch sw;
        budgetedFn();
        budgeted = std::min(budgeted, sw.elapsedMillis());
      }
    }
    return std::pair<double, double>(plain, budgeted);
  };

  // --- Lattice BFS: charges one cut per visit + frontier notes per level.
  {
    RandomComputationOptions opt;
    opt.processes = 5;
    opt.eventsPerProcess = 10;
    opt.messageProbability = 0.2;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    const std::uint64_t cuts = lattice::latticeStats(vc).cutCount;
    const auto visit = [](const Cut&) { return true; };
    const auto [plain, budgeted] = measure(
        [&] { lattice::exploreConsistentCuts(vc, visit, nullptr); },
        [&] {
          control::Budget budget(farDeadline);
          lattice::exploreConsistentCuts(vc, visit, &budget);
        });
    table.row("lattice-bfs", std::to_string(cuts) + " cuts",
              bench::fmtMs(plain), bench::fmtMs(budgeted),
              overhead(plain, budgeted));
  }

  // --- Singular chain cover: one combination charge per CPDHB invocation.
  //     A Theorem-1 gadget of an UNSAT 3-CNF: no selection is consistent,
  //     so the enumeration exhausts its full space and every combination
  //     pays one budget charge.
  {
    Rng gadgetRng(7);  // raw formula is UNSAT at this seed (checked below)
    const sat::Cnf raw = sat::randomKCnf(3, 12, 3, gadgetRng);
    GPD_CHECK(!sat::solveDpll(raw).has_value());
    const auto simplified =
        reduction::simplifyForGadget(sat::toNonMonotone(raw).formula);
    GPD_CHECK(!simplified.unsatisfiable);
    const auto gadget = reduction::buildSatGadget(simplified.formula);
    const VectorClocks vc(*gadget.computation);
    detect::SingularCnfResult res;
    const auto [plain, budgeted] = measure(
        [&] {
          res = detect::detectSingularByChainCover(vc, *gadget.trace,
                                                   gadget.predicate, nullptr);
        },
        [&] {
          control::Budget budget(farDeadline);
          res = detect::detectSingularByChainCover(vc, *gadget.trace,
                                                   gadget.predicate, &budget);
        });
    GPD_CHECK(!res.found && res.complete);  // exhausted, exact No
    table.row("chain-cover", std::to_string(res.combinationsTried) + " combos",
              bench::fmtMs(plain), bench::fmtMs(budgeted),
              overhead(plain, budgeted));
  }

  // --- DPLL: one combination charge per decision, keepGoing per
  //     propagation. One instance solves in ~1 ms, so repeat it to make
  //     the measurement stable.
  {
    constexpr int kReps = 32;
    const sat::Cnf cnf = sat::randomKCnf(48, 204, 3, rng);  // hard ratio
    sat::DpllResult r;
    const auto [plain, budgeted] = measure(
        [&] {
          for (int i = 0; i < kReps; ++i) sat::solveDpllBudgeted(cnf, nullptr);
        },
        [&] {
          for (int i = 0; i < kReps; ++i) {
            control::Budget budget(farDeadline);
            r = sat::solveDpllBudgeted(cnf, &budget);
          }
        });
    table.row("dpll",
              std::to_string(r.stats.decisions) + " decisions x" +
                  std::to_string(kReps),
              bench::fmtMs(plain), bench::fmtMs(budgeted),
              overhead(plain, budgeted));
  }

  // --- Detector facade on a polynomial path (CPDHB conjunctive): the
  //     budgeted overload re-plans and walks the plan; per-query cost,
  //     repeated for stability.
  {
    constexpr int kReps = 64;
    RandomComputationOptions opt;
    opt.processes = 8;
    opt.eventsPerProcess = 256;
    opt.messageProbability = 0.3;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.1, rng);
    ConjunctivePredicate pred;
    for (ProcessId p = 0; p < c.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "x"));
    }
    detect::Detector det(trace);
    const auto [plain, budgeted] = measure(
        [&] {
          for (int i = 0; i < kReps; ++i) det.possibly(pred);
        },
        [&] {
          for (int i = 0; i < kReps; ++i) {
            control::Budget budget(farDeadline);
            det.possibly(pred, budget);
          }
        });
    table.row("detector-cpdhb", std::to_string(kReps) + " queries",
              bench::fmtMs(plain), bench::fmtMs(budgeted),
              overhead(plain, budgeted));
  }

  table.print(std::cout);
  std::cout << "\nShape check: every overhead row within a few percent "
               "(noise-level); the budget layer is one compare per charge "
               "plus an amortized clock read.\n";
  return 0;
}
