// A3 — online monitor overhead versus offline CPDHB on the same trace.
//
// The streaming checker processes one vector timestamp per true event; its
// total comparison count should stay within a small constant factor of the
// offline scan's, and per-notification latency should be microseconds.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("A3 / online monitor overhead",
                "Streaming Garg–Waldecker checker vs offline CPDHB; random "
                "traces, conjunctive predicate over all processes.");

  Rng rng(321);
  Table table({"procs", "events/proc", "true_events", "offline_ms",
               "offline_cmps", "replay_ms", "online_cmps", "verdicts_agree"});
  for (const int procs : {4, 8}) {
    for (const int events : {32, 64, 128}) {
      RandomComputationOptions opt;
      opt.processes = procs;
      opt.eventsPerProcess = events;
      opt.messageProbability = 0.3;
      Rng local = rng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.05, local);  // sparse: rarely detected
      ConjunctivePredicate pred;
      for (ProcessId p = 0; p < procs; ++p) pred.terms.push_back(varTrue(p, "b"));
      const VectorClocks clocks(comp);

      detect::ConjunctiveResult offline;
      const double offlineMs = bench::timeMs([&] {
        offline = detect::detectConjunctive(clocks, trace, pred);
      });

      const auto run = graph::randomLinearExtension(comp.toDag(), local);
      monitor::ConjunctiveMonitor warm(procs);
      monitor::ReplayResult replay;
      const double replayMs = bench::timeMs([&] {
        monitor::ConjunctiveMonitor mon(procs);
        replay = monitor::replayConjunctive(clocks, trace, pred, run, mon);
      });
      monitor::ConjunctiveMonitor mon(procs);
      replay = monitor::replayConjunctive(clocks, trace, pred, run, mon);

      table.row(procs, events, replay.notificationsSent,
                bench::fmtMs(offlineMs), offline.comparisons,
                bench::fmtMs(replayMs), mon.comparisons(),
                replay.detected == offline.found ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: online and offline verdicts always agree; "
               "comparison counts are the same order of magnitude.\n";
  return 0;
}
