// A3 — online monitor overhead versus offline CPDHB on the same trace.
//
// The streaming checker processes one vector timestamp per true event; its
// total comparison count should stay within a small constant factor of the
// offline scan's, and per-notification latency should be microseconds.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("A3 / online monitor overhead",
                "Streaming Garg–Waldecker checker vs offline CPDHB; random "
                "traces, conjunctive predicate over all processes.");

  Rng rng(321);
  Table table({"procs", "events/proc", "true_events", "offline_ms",
               "offline_cmps", "replay_ms", "online_cmps", "verdicts_agree"});
  for (const int procs : {4, 8}) {
    for (const int events : {32, 64, 128}) {
      RandomComputationOptions opt;
      opt.processes = procs;
      opt.eventsPerProcess = events;
      opt.messageProbability = 0.3;
      Rng local = rng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.05, local);  // sparse: rarely detected
      ConjunctivePredicate pred;
      for (ProcessId p = 0; p < procs; ++p) pred.terms.push_back(varTrue(p, "b"));
      const VectorClocks clocks(comp);

      detect::ConjunctiveResult offline;
      const double offlineMs = bench::timeMs([&] {
        offline = detect::detectConjunctive(clocks, trace, pred);
      });

      const auto run = graph::randomLinearExtension(comp.toDag(), local);
      monitor::ConjunctiveMonitor warm(procs);
      monitor::ReplayResult replay;
      const double replayMs = bench::timeMs([&] {
        monitor::ConjunctiveMonitor mon(procs);
        replay = monitor::replayConjunctive(clocks, trace, pred, run, mon);
      });
      monitor::ConjunctiveMonitor mon(procs);
      replay = monitor::replayConjunctive(clocks, trace, pred, run, mon);

      table.row(procs, events, replay.notificationsSent,
                bench::fmtMs(offlineMs), offline.comparisons,
                bench::fmtMs(replayMs), mon.comparisons(),
                replay.detected == offline.found ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: online and offline verdicts always agree; "
               "comparison counts are the same order of magnitude.\n";

  // --- Fault sweep: resilience cost of the session layer ---------------------
  // The same replay, but through MonitorSession over a faulty transport at
  // increasing fault rates. Columns show what resilience costs (extra wire
  // deliveries, NACK/retransmit traffic) and what it buys (agreement with
  // the offline verdict whenever recovery succeeds; explicit degradation —
  // never a wrong answer — when it does not).
  bench::banner("A3b / fault-injected session overhead",
                "MonitorSession vs offline CPDHB under seeded drop/duplicate/"
                "reorder faults; 'agree' counts runs where the settled "
                "verdict matches offline, 'degraded' the runs that said "
                "\"unknown\" instead.");

  Table faultTable({"fault_rate", "runs", "replay_ms", "wire/notif", "nacks",
                    "retransmits", "agree", "degraded", "wrong"});
  const int kRuns = 20;
  for (const double rate : {0.0, 0.05, 0.10, 0.20}) {
    int agree = 0, degradedRuns = 0, wrong = 0;
    std::uint64_t notifications = 0, wireDeliveries = 0, nacks = 0,
                  retransmits = 0;
    double totalMs = 0;
    for (int run = 0; run < kRuns; ++run) {
      RandomComputationOptions opt;
      opt.processes = 4;
      opt.eventsPerProcess = 64;
      opt.messageProbability = 0.3;
      Rng local = rng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      // Sparser than A3: most runs end NotDetected, which forces full
      // recovery (a detection can legally end the replay early).
      defineRandomBools(trace, "b", 0.02, local);
      ConjunctivePredicate pred;
      for (ProcessId p = 0; p < 4; ++p) pred.terms.push_back(varTrue(p, "b"));
      const VectorClocks clocks(comp);
      const auto offline = detect::detectConjunctive(clocks, trace, pred);
      const auto order = graph::randomLinearExtension(comp.toDag(), local);

      monitor::FaultOptions faults;
      faults.dropProbability = rate;
      faults.duplicateProbability = rate;
      faults.reorderProbability = rate;
      monitor::SessionOptions sopt;
      sopt.retryTimeout = 16;
      // timeMs repeats the lambda: give every repetition a fresh session and
      // an identical fault schedule (copy of the forked rng).
      const Rng faultRng = local.fork();
      totalMs += bench::timeMs([&] {
        Rng r = faultRng;
        monitor::MonitorSession timed(4, sopt);
        monitor::replayConjunctiveFaulty(clocks, trace, pred, order, timed,
                                         faults, r);
      });
      Rng r = faultRng;
      monitor::MonitorSession session(4, sopt);
      const monitor::ResilientReplayResult res = monitor::replayConjunctiveFaulty(
          clocks, trace, pred, order, session, faults, r);
      notifications += res.notificationsSent;
      wireDeliveries += res.wireDeliveries;
      nacks += res.nacksSent;
      retransmits += res.retransmissions;
      if (res.verdict == monitor::Verdict::Degraded) {
        ++degradedRuns;
      } else if (res.detected == offline.found) {
        ++agree;
      } else {
        ++wrong;  // must stay 0: the layer's whole contract
      }
    }
    std::ostringstream ratio;
    ratio.precision(2);
    ratio << std::fixed
          << (notifications ? double(wireDeliveries) / double(notifications)
                            : 0.0);
    faultTable.row(rate, kRuns, bench::fmtMs(totalMs), ratio.str(), nacks,
                   retransmits, agree, degradedRuns, wrong);
  }
  faultTable.print(std::cout);
  std::cout << "\nShape check: 'wrong' is always 0 — under any fault rate the "
               "session either reproduces the offline verdict or explicitly "
               "degrades; wire amplification grows with the fault rate.\n";
  return 0;
}
