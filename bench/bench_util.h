// Shared helpers for the experiment harnesses.
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "gpd.h"

namespace gpd::bench {

// Median-of-3 wall time in milliseconds.
inline double timeMs(const std::function<void()>& fn) {
  double best[3];
  for (double& t : best) {
    Stopwatch sw;
    fn();
    t = sw.elapsedMillis();
  }
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  if (best[1] > best[2]) std::swap(best[1], best[2]);
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  return best[1];
}

inline std::string fmtMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=== " << id << " ===\n" << claim << "\n\n";
}

}  // namespace gpd::bench
