// A7 — computation slicing (the authors' follow-up line, built here as the
// extension feature): pay |E| linear-detector runs once, then answer
// membership and counting queries about the satisfying sublattice with no
// oracle calls at all.
//
// Expected shape: slice construction scales polynomially; per-query cost is
// microseconds and independent of how many cuts satisfy the predicate,
// while the lattice baseline pays a full enumeration per query.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("A7 / computation slicing (regular predicates)",
                "Conjunctive predicate over all processes; slice built once, "
                "then 100 membership queries.");

  Table table({"procs", "events/proc", "build_ms", "satisfying",
               "query100_ms", "direct100_ms", "latticeCount_ms",
               "count_agrees"});
  Rng rng(8888);
  for (const int procs : {3, 4}) {
    for (const int events : {4, 6, 8}) {
      RandomComputationOptions opt;
      opt.processes = procs;
      opt.eventsPerProcess = events;
      opt.messageProbability = 0.5;
      Rng local = rng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.6, local);
      ConjunctivePredicate pred;
      for (ProcessId p = 0; p < procs; ++p) pred.terms.push_back(varTrue(p, "b"));
      const VectorClocks clocks(comp);

      detect::Slice slice;
      const double buildMs = bench::timeMs([&] {
        slice = detect::computeSlice(clocks, detect::conjunctiveOracle(trace, pred));
      });

      // Query workload: 100 random consistent cuts (random runs' prefixes).
      std::vector<Cut> queries;
      for (int i = 0; i < 100; ++i) {
        const auto run = graph::randomLinearExtension(comp.toDag(), local);
        Cut cut = initialCut(comp);
        const int steps = static_cast<int>(local.index(run.size()));
        int placed = 0;
        for (int node : run) {
          const EventId e = comp.event(node);
          cut.last[e.process] = e.index;
          if (++placed > steps) break;
        }
        // Round down to a consistent cut via the causal histories.
        Cut fixed = initialCut(comp);
        for (ProcessId p = 0; p < procs; ++p) {
          const EventId e{p, cut.last[p]};
          for (ProcessId q = 0; q < procs; ++q) {
            fixed.last[q] = std::max(fixed.last[q], clocks.clock(e, q));
          }
          fixed.last[p] = std::max(fixed.last[p], e.index);
        }
        queries.push_back(fixed);
      }

      int hits = 0;
      const double queryMs = bench::timeMs([&] {
        hits = 0;
        for (const Cut& q : queries) {
          hits += detect::sliceSatisfies(slice, clocks, q);
        }
      });

      int scanHits = 0;
      const double scanMs = bench::timeMs([&] {
        scanHits = 0;
        for (const Cut& q : queries) {
          scanHits += pred.holdsAtCut(trace, q);
        }
      });
      GPD_CHECK(hits == scanHits);

      std::uint64_t viaSlice = detect::countSatisfyingCuts(slice, clocks).count;
      std::uint64_t viaLattice = 0;
      const double latticeMs = bench::timeMs([&] {
        viaLattice = 0;
        lattice::forEachConsistentCut(clocks, [&](const Cut& c) {
          viaLattice += pred.holdsAtCut(trace, c);
          return true;
        });
      });

      table.row(procs, events, bench::fmtMs(buildMs), viaSlice,
                bench::fmtMs(queryMs), bench::fmtMs(scanMs),
                bench::fmtMs(latticeMs),
                viaSlice == viaLattice ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: build cost polynomial; counting through the "
               "slice agrees with full enumeration on every row.\n";

  // A15 — slice-first as the detector's universal pre-pass, A/B benched
  // end to end. Two workloads over the same computations:
  //   regular:    non-singular CNF with a single-process clause per process
  //               (a regular skeleton) → the planner emits a slice-first
  //               step and the search runs inside the carved sublattice;
  //   nonregular: the same multi-process clauses with no single-process
  //               ones → no slice step exists, so enableSlicing(true) must
  //               cost nothing beyond the classifier (< 3% contract).
  // Both modes run under a budget far above the workload so every call
  // completes; progress.cutsVisited is the apples-to-apples work meter (for
  // the sliced mode it includes the slice build's own budgeted charges, so
  // the pre-pass cannot hide its cost). The SLICEBENCH lines feed the CI
  // gate: >= 10x cut reduction on regular, identical cut counts and < 3%
  // overhead (with runner slack) on nonregular, verdicts and witnesses
  // bit-identical throughout.
  std::cout << "\n";
  bench::banner("A15 / slice-first detection (Detector A/B)",
                "Same predicate, slicing on vs off; regular workloads search "
                "the sublattice, non-regular ones must not pay for the "
                "pre-pass.");

  Table ab({"workload", "seeds", "sliced_ms", "unsliced_ms", "sliced_cuts",
            "unsliced_cuts", "reduction", "identical"});
  Rng abRng(42424);
  for (const bool regular : {true, false}) {
    double msSliced = 0, msUnsliced = 0;
    std::uint64_t cutsSliced = 0, cutsUnsliced = 0;
    bool identical = true;
    int seeds = 0;
    for (int trial = 0; trial < 24; ++trial) {
      RandomComputationOptions opt;
      opt.processes = 4;
      opt.eventsPerProcess = 12;
      opt.messageProbability = 0.25;
      Rng local = abRng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      // Sparse skeleton variable: most trials have a tiny (often empty)
      // sublattice, which is exactly where slice-first pays — the unsliced
      // search must enumerate the whole cut lattice to conclude No, while
      // the pre-pass answers from the slice after O(|E|) build work.
      defineRandomBools(trace, "x", 0.05, local);
      defineRandomBools(trace, "b", 0.2, local);

      CnfPredicate cnf;
      if (regular) {
        for (ProcessId p = 0; p < opt.processes; ++p) {
          cnf.clauses.push_back({{p, "x", true}});
        }
      }
      cnf.clauses.push_back({{0, "b", true}, {1, "b", true}});
      cnf.clauses.push_back({{1, "b", true}, {2, "b", true}});
      cnf.clauses.push_back({{2, "b", true}, {3, "b", true}});
      cnf.clauses.push_back({{3, "b", true}, {0, "b", true}});

      detect::Detector sliced(trace);
      detect::Detector plain(trace);
      plain.enableSlicing(false);

      control::BudgetLimits limits;
      limits.maxCuts = 50'000'000;
      detect::Detection a, b;
      {
        // Warm both paths before the timed A/B runs; without this the
        // first-measured mode pays the cold instruction/data caches and the
        // overhead comparison reads a constant ordering bias.
        control::Budget w1(limits);
        control::Budget w2(limits);
        (void)sliced.possibly(cnf, w1);
        (void)plain.possibly(cnf, w2);
      }
      // Each timed sample batches 4 calls: single calls sit at the steady
      // clock's noise floor and the A/B tax reading swings with scheduler
      // jitter instead of the code under test.
      msSliced += bench::timeMs([&] {
        for (int rep = 0; rep < 4; ++rep) {
          control::Budget budget(limits);
          a = sliced.possibly(cnf, budget);
        }
      });
      msUnsliced += bench::timeMs([&] {
        for (int rep = 0; rep < 4; ++rep) {
          control::Budget budget(limits);
          b = plain.possibly(cnf, budget);
        }
      });
      cutsSliced += a.progress.cutsVisited;
      cutsUnsliced += b.progress.cutsVisited;
      identical = identical && a.outcome == b.outcome && a.witness == b.witness;
      GPD_CHECK(a.outcome != detect::Outcome::Unknown);
      GPD_CHECK(regular == a.slice.has_value());
      ++seeds;
    }
    const double reduction =
        cutsSliced == 0 ? 0.0
                        : static_cast<double>(cutsUnsliced) /
                              static_cast<double>(cutsSliced);
    const char* name = regular ? "regular" : "nonregular";
    ab.row(name, seeds, bench::fmtMs(msSliced), bench::fmtMs(msUnsliced),
           cutsSliced, cutsUnsliced,
           cutsSliced == 0 ? "inf" : bench::fmtMs(reduction) + "x",
           identical ? "yes" : "NO");
    GPD_CHECK(identical);
    std::printf("SLICEBENCH mode=sliced workload=%s ms=%.3f cuts=%llu\n", name,
                msSliced, static_cast<unsigned long long>(cutsSliced));
    std::printf("SLICEBENCH mode=unsliced workload=%s ms=%.3f cuts=%llu\n",
                name, msUnsliced,
                static_cast<unsigned long long>(cutsUnsliced));
  }
  ab.print(std::cout);
  std::cout << "\nShape check: regular rows search the sublattice (>= 10x "
               "fewer cuts); non-regular rows carry no slice step, so both "
               "modes do identical work.\n";
  return 0;
}
