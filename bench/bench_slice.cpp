// A7 — computation slicing (the authors' follow-up line, built here as the
// extension feature): pay |E| linear-detector runs once, then answer
// membership and counting queries about the satisfying sublattice with no
// oracle calls at all.
//
// Expected shape: slice construction scales polynomially; per-query cost is
// microseconds and independent of how many cuts satisfy the predicate,
// while the lattice baseline pays a full enumeration per query.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("A7 / computation slicing (regular predicates)",
                "Conjunctive predicate over all processes; slice built once, "
                "then 100 membership queries.");

  Table table({"procs", "events/proc", "build_ms", "satisfying",
               "query100_ms", "direct100_ms", "latticeCount_ms",
               "count_agrees"});
  Rng rng(8888);
  for (const int procs : {3, 4}) {
    for (const int events : {4, 6, 8}) {
      RandomComputationOptions opt;
      opt.processes = procs;
      opt.eventsPerProcess = events;
      opt.messageProbability = 0.5;
      Rng local = rng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.6, local);
      ConjunctivePredicate pred;
      for (ProcessId p = 0; p < procs; ++p) pred.terms.push_back(varTrue(p, "b"));
      const VectorClocks clocks(comp);

      detect::Slice slice;
      const double buildMs = bench::timeMs([&] {
        slice = detect::computeSlice(clocks, detect::conjunctiveOracle(trace, pred));
      });

      // Query workload: 100 random consistent cuts (random runs' prefixes).
      std::vector<Cut> queries;
      for (int i = 0; i < 100; ++i) {
        const auto run = graph::randomLinearExtension(comp.toDag(), local);
        Cut cut = initialCut(comp);
        const int steps = static_cast<int>(local.index(run.size()));
        int placed = 0;
        for (int node : run) {
          const EventId e = comp.event(node);
          cut.last[e.process] = e.index;
          if (++placed > steps) break;
        }
        // Round down to a consistent cut via the causal histories.
        Cut fixed = initialCut(comp);
        for (ProcessId p = 0; p < procs; ++p) {
          const EventId e{p, cut.last[p]};
          for (ProcessId q = 0; q < procs; ++q) {
            fixed.last[q] = std::max(fixed.last[q], clocks.clock(e, q));
          }
          fixed.last[p] = std::max(fixed.last[p], e.index);
        }
        queries.push_back(fixed);
      }

      int hits = 0;
      const double queryMs = bench::timeMs([&] {
        hits = 0;
        for (const Cut& q : queries) {
          hits += detect::sliceSatisfies(slice, clocks, q);
        }
      });

      int scanHits = 0;
      const double scanMs = bench::timeMs([&] {
        scanHits = 0;
        for (const Cut& q : queries) {
          scanHits += pred.holdsAtCut(trace, q);
        }
      });
      GPD_CHECK(hits == scanHits);

      std::uint64_t viaSlice = detect::countSatisfyingCuts(slice, clocks);
      std::uint64_t viaLattice = 0;
      const double latticeMs = bench::timeMs([&] {
        viaLattice = 0;
        lattice::forEachConsistentCut(clocks, [&](const Cut& c) {
          viaLattice += pred.holdsAtCut(trace, c);
          return true;
        });
      });

      table.row(procs, events, bench::fmtMs(buildMs), viaSlice,
                bench::fmtMs(queryMs), bench::fmtMs(scanMs),
                bench::fmtMs(latticeMs),
                viaSlice == viaLattice ? "yes" : "NO");
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: build cost polynomial; counting through the "
               "slice agrees with full enumeration on every row.\n";
  return 0;
}
