// E9 — Sec. 4.3: symmetric predicates detected as exact-sum disjunctions.
//
// Expected shape: detection time grows with |T| (the number of true-count
// disjuncts) times the polynomial exact-sum cost — far below the lattice —
// and verdicts match the exhaustive baseline wherever it is run.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("E9 / Sec. 4.3 — symmetric predicates",
                "XOR, majority-absence, exactly-k, not-all-equal on voting "
                "and random boolean traces.");

  Rng rng(606);
  Table table({"predicate", "|T|", "procs", "events/proc", "detect_ms",
               "lattice_ms", "agree"});

  for (const int procs : {4, 6}) {
    for (const int events : {8, 16, 32}) {
      RandomComputationOptions opt;
      opt.processes = procs;
      opt.eventsPerProcess = events;
      opt.messageProbability = 0.35;
      Rng local = rng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.3, local);
      const VectorClocks clocks(comp);
      std::vector<SumTerm> vars;
      for (ProcessId p = 0; p < procs; ++p) vars.push_back({p, "b"});

      for (const SymmetricPredicate& pred :
           {exclusiveOr(vars), absenceOfSimpleMajority(vars),
            absenceOfTwoThirdsMajority(vars), exactlyK(vars, procs / 2),
            notAllEqual(vars)}) {
        std::optional<Cut> witness;
        const double ms = bench::timeMs([&] {
          witness = detect::possiblySymmetric(clocks, trace, pred);
        });
        std::string latticeMs = "-";
        std::string agree = "(baseline skipped)";
        if (events <= 8) {
          bool latticeFound = false;
          latticeMs = bench::fmtMs(bench::timeMs([&] {
            latticeFound =
                lattice::possiblyExhaustive(clocks, [&](const Cut& c) {
                  return pred.holdsAtCut(trace, c);
                });
          }));
          agree = latticeFound == witness.has_value() ? "yes" : "NO";
        }
        table.row(pred.name, pred.trueCounts.size(), procs, events,
                  bench::fmtMs(ms), latticeMs, agree);
      }
    }
  }
  table.print(std::cout);

  std::cout << "\nOn the voting workload (semantic check):\n\n";
  Table vote({"seed", "final_yes", "possibly(no-majority)",
              "possibly(no-2/3-majority)"});
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::VotingOptions vopt;
    vopt.processes = 7;  // 6 voters
    vopt.seed = seed;
    const sim::SimResult run = sim::voting(vopt);
    const VectorClocks clocks(*run.computation);
    std::vector<SumTerm> yes;
    for (ProcessId p = 1; p < 7; ++p) yes.push_back({p, "yes"});
    int tally = 0;
    for (const auto& t : yes) {
      tally +=
          run.trace->valueAtCut(finalCut(*run.computation), t.process, t.var) != 0;
    }
    const auto noMaj =
        detect::possiblySymmetric(clocks, *run.trace, absenceOfSimpleMajority(yes));
    const auto noTwoThirds = detect::possiblySymmetric(
        clocks, *run.trace, absenceOfTwoThirdsMajority(yes));
    vote.row(seed, tally, noMaj ? "yes" : "no", noTwoThirds ? "yes" : "no");
  }
  vote.print(std::cout);
  std::cout << "\nShape check: detect_ms scales with |T| and polynomially "
               "with events/proc; agreement wherever the baseline ran.\n";
  return 0;
}
