// Microbenchmarks (google-benchmark) for the detector hot paths at a fixed
// realistic size — the regression-tracking companion to the shape-oriented
// experiment tables.
#include <benchmark/benchmark.h>

#include "gpd.h"

namespace {

using namespace gpd;

struct Fixture {
  Computation comp;
  VariableTrace trace;
  VectorClocks clocks;

  Fixture() : comp(make()), trace(comp), clocks(comp) {
    Rng rng(99);
    defineRandomBools(trace, "b", 0.2, rng);
    defineRandomCounters(trace, "x", 0, 1, rng);
  }

  static Computation make() {
    RandomComputationOptions opt;
    opt.processes = 6;
    opt.eventsPerProcess = 40;
    opt.messageProbability = 0.4;
    Rng rng(42);
    return randomComputation(opt, rng);
  }

  ConjunctivePredicate conjunctive() const {
    ConjunctivePredicate pred;
    for (ProcessId p = 0; p < comp.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "b"));
    }
    return pred;
  }

  CnfPredicate singular() const {
    CnfPredicate pred;
    for (int g = 0; g < 3; ++g) {
      pred.clauses.push_back(
          {{2 * g, "b", true}, {2 * g + 1, "b", true}});
    }
    return pred;
  }

  std::vector<SumTerm> terms() const {
    std::vector<SumTerm> out;
    for (ProcessId p = 0; p < comp.processCount(); ++p) out.push_back({p, "x"});
    return out;
  }
};

const Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_Cpdhb(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto pred = f.conjunctive();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detect::detectConjunctive(f.clocks, f.trace, pred).found);
  }
}
BENCHMARK(BM_Cpdhb);

void BM_SingularChainCover(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto pred = f.singular();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detect::detectSingularByChainCover(f.clocks, f.trace, pred).found);
  }
}
BENCHMARK(BM_SingularChainCover);

void BM_SingularViaSat(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto pred = f.singular();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detect::detectSingularViaSat(f.clocks, f.trace, pred).cut.has_value());
  }
}
BENCHMARK(BM_SingularViaSat);

void BM_SumExtrema(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto terms = f.terms();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detect::sumExtrema(f.clocks, f.trace, terms).maxSum);
  }
}
BENCHMARK(BM_SumExtrema);

void BM_Theorem7ExactSum(benchmark::State& state) {
  const Fixture& f = fixture();
  SumPredicate pred{f.terms(), Relop::Equal, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detect::possiblySum(f.clocks, f.trace, pred).has_value());
  }
}
BENCHMARK(BM_Theorem7ExactSum);

void BM_SymmetricXor(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto pred = exclusiveOr(f.terms());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detect::possiblySymmetric(f.clocks, f.trace, pred).has_value());
  }
}
BENCHMARK(BM_SymmetricXor);

void BM_DefinitelyConjunctive(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto pred = f.conjunctive();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        detect::definitelyConjunctive(f.clocks, f.trace, pred).holds);
  }
}
BENCHMARK(BM_DefinitelyConjunctive);

void BM_LinearTermination(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto oracle = detect::channelsEmptyOracle(f.comp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect::detectLinear(f.clocks, oracle).oracleCalls);
  }
}
BENCHMARK(BM_LinearTermination);

void BM_SliceBuild(benchmark::State& state) {
  const Fixture& f = fixture();
  const auto pred = f.conjunctive();
  const auto oracle = detect::conjunctiveOracle(f.trace, pred);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detect::computeSlice(f.clocks, oracle).satisfiable);
  }
}
BENCHMARK(BM_SliceBuild);

void BM_TraceRoundTrip(benchmark::State& state) {
  const Fixture& f = fixture();
  for (auto _ : state) {
    std::stringstream buffer;
    io::writeTrace(buffer, f.comp, f.trace);
    benchmark::DoNotOptimize(io::readTrace(buffer).computation->totalEvents());
  }
}
BENCHMARK(BM_TraceRoundTrip);

}  // namespace

BENCHMARK_MAIN();
