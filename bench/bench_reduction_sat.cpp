// E3 + E4 — Theorem 1 and Corollary 2 as experiments.
//
// E3: random formulas flow through the Figure 3 gadget; the detector's
// verdict must equal DPLL's on every instance, with detection paying the
// exponential enumeration exactly on unsatisfiable gadgets (the NP-hardness
// shape).
// E4: inequality-clause predicates (Corollary 2) lower to singular 2-CNF
// and are detected by the same machinery.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("E3 / Thm 1 — SAT via predicate detection",
                "Random mixed 2/3-CNF; gadget size, verdict agreement, and "
                "timing of detector vs DPLL.");

  Rng rng(777);
  Table e3({"vars", "clauses", "gadget_procs", "verdict", "detect_ms",
            "dpll_ms", "agree"});
  int agreeAll = 0;
  int total = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const int vars = 3 + static_cast<int>(rng.index(4));
    const int clauses = 3 + static_cast<int>(rng.index(8));
    sat::Cnf cnf;
    cnf.numVars = vars;
    for (int i = 0; i < clauses; ++i) {
      const int width = rng.chance(0.7) ? 2 : 3;
      cnf.addClause(sat::randomKCnf(vars, 1, width, rng).clauses[0]);
    }
    const auto probe =
        reduction::simplifyForGadget(sat::toNonMonotone(cnf).formula);
    if (!probe.unsatisfiable && probe.formula.clauses.size() > 13) continue;

    std::optional<sat::Assignment> viaDetection;
    const double detectMs = bench::timeMs(
        [&] { viaDetection = reduction::solveSatViaDetection(cnf); });
    std::optional<sat::Assignment> viaDpll;
    const double dpllMs =
        bench::timeMs([&] { viaDpll = sat::solveDpll(cnf); });
    const bool agree = viaDetection.has_value() == viaDpll.has_value();
    agreeAll += agree;
    ++total;
    e3.row(vars, clauses, 2 * probe.formula.clauses.size(),
           viaDetection ? "SAT" : "UNSAT", bench::fmtMs(detectMs),
           bench::fmtMs(dpllMs), agree ? "yes" : "NO");
  }
  e3.print(std::cout);
  std::cout << "\nagreement: " << agreeAll << "/" << total
            << " (must be all)\n\n";

  bench::banner("E4 / Cor. 2 — inequality clauses via singular 2-CNF",
                "(x relop a) ∨ (y relop b) conjunctions lowered to derived "
                "boolean variables and detected; lattice cross-check.");
  Table e4({"events/proc", "clauses", "lowered_singular", "detect_ms",
            "lattice_ms", "agree"});
  for (const int events : {6, 10, 14}) {
    RandomComputationOptions opt;
    opt.processes = 6;
    opt.eventsPerProcess = events;
    opt.messageProbability = 0.4;
    Rng local = rng.fork();
    const Computation comp = randomComputation(opt, local);
    VariableTrace trace(comp);
    defineRandomCounters(trace, "v", 0, 2, local);
    IneqClausePredicate pred;
    const Relop ops[] = {Relop::Less, Relop::LessEq, Relop::Greater,
                         Relop::GreaterEq, Relop::NotEqual};
    for (int g = 0; g < 3; ++g) {
      pred.clauses.push_back(
          {{2 * g, "v", ops[local.index(5)], local.uniform(4, 7)},
           {2 * g + 1, "v", ops[local.index(5)], local.uniform(4, 7)}});
    }
    const CnfPredicate lowered = lowerToCnf(trace, pred);
    const VectorClocks clocks(comp);
    detect::SingularCnfResult res;
    const double detectMs = bench::timeMs([&] {
      res = detect::detectSingularByChainCover(clocks, trace, lowered);
    });
    bool latticeFound = false;
    const double latticeMs = bench::timeMs([&] {
      latticeFound = lattice::possiblyExhaustive(clocks, [&](const Cut& c) {
        return pred.holdsAtCut(trace, c);
      });
    });
    e4.row(events, pred.clauses.size(), lowered.isSingular() ? "yes" : "NO",
           bench::fmtMs(detectMs), bench::fmtMs(latticeMs),
           res.found == latticeFound ? "yes" : "NO");
  }
  e4.print(std::cout);
  return 0;
}
