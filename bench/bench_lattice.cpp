// A4 — lattice growth: why naive enumeration explodes.
//
// The number of consistent cuts grows as the product of per-process event
// counts, tempered by message density (each message prunes cuts). This is
// the cost every exhaustive possibly/definitely pays and the quantity the
// paper's algorithms avoid.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("A4 / lattice growth",
                "Consistent-cut count vs processes, events, and message "
                "density; grid = Π(events+1) is the no-message bound.");

  Table table({"procs", "events/proc", "msgProb", "messages", "cuts", "grid",
               "prune", "enumerate_ms"});
  Rng rng(1);
  for (const int procs : {2, 3, 4, 5}) {
    for (const int events : {4, 8, 12}) {
      for (const double prob : {0.0, 0.3, 0.8}) {
        RandomComputationOptions opt;
        opt.processes = procs;
        opt.eventsPerProcess = events;
        opt.messageProbability = prob;
        Rng local = rng.fork();
        const Computation comp = randomComputation(opt, local);
        const VectorClocks clocks(comp);
        lattice::LatticeStats stats;
        const double ms =
            bench::timeMs([&] { stats = lattice::latticeStats(clocks); });
        double grid = 1;
        for (ProcessId p = 0; p < procs; ++p) grid *= comp.eventCount(p);
        char prune[16];
        std::snprintf(prune, sizeof(prune), "%.2fx",
                      grid / static_cast<double>(stats.cutCount));
        table.row(procs, events, prob, comp.messages().size(), stats.cutCount,
                  static_cast<long long>(grid), prune, bench::fmtMs(ms));
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: cuts grow exponentially in the process count "
               "and shrink with message density.\n";
  return 0;
}
