// A11 — parallel detection speedup (gpd::par).
//
// The acceptance workload: a Theorem-1 gadget of an UNSAT formula whose
// Π cⱼ chain-cover enumeration takes ≥ 1 s sequentially (UNSAT means no
// selection is consistent, so the enumeration exhausts its entire
// combination space — the worst case, and the one that parallelizes
// perfectly). The same detection then runs through pools of 1, 2, 4, and 8
// workers; every run must produce the bit-identical result (same verdict,
// same combination totals, same complete flag) and the table records the
// speedup trajectory. Target: ≥ 3× at 8 threads on hardware with ≥ 4
// physical cores — on fewer cores the pool rows degrade toward 1× (plus
// dispatch overhead), which is expected and printed, not hidden.
//
// The gadget is found by a deterministic seed scan: raw 3-CNF formulas are
// rejected until one is UNSAT and its gadget's combination space lands in
// the target range. If the scan comes up empty (it does not at the sizes
// below, but the guard keeps the bench honest), the known seed-7 A9 gadget
// (65536 combinations, ~25 ms) is repeated enough times to pass 1 s.
#include <cinttypes>
#include <optional>

#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner(
      "A11 / parallel detection speedup (gpd::par)",
      "Chain-cover exhaustion of a Theorem-1 gadget, sequential vs pool "
      "workers. Verdicts are asserted bit-identical across thread counts; "
      "speedup scales with physical cores (target >= 3x at 8 threads on "
      ">= 4 cores).");

  // --- Pick the gadget: UNSAT raw formula, combination space in
  //     [2^21, 2^25] (~0.8-30 s sequential at ~0.4 us per combination).
  constexpr std::uint64_t kMinCombos = std::uint64_t{1} << 21;
  constexpr std::uint64_t kMaxCombos = std::uint64_t{1} << 25;
  std::optional<reduction::SatGadget> gadget;
  std::uint64_t total = 0;
  int reps = 1;
  for (const int vars : {4, 5}) {
    for (std::uint32_t seed = 1; seed <= 40 && !gadget.has_value(); ++seed) {
      Rng rng(seed);
      const sat::Cnf raw = sat::randomKCnf(vars, 6 * vars, 3, rng);
      if (sat::solveDpll(raw).has_value()) continue;  // need exhaustion
      const auto simplified =
          reduction::simplifyForGadget(sat::toNonMonotone(raw).formula);
      if (simplified.unsatisfiable) continue;
      auto candidate = reduction::buildSatGadget(simplified.formula);
      const VectorClocks vc(*candidate.computation);
      const auto covers =
          detect::clauseChainCovers(vc, *candidate.trace, candidate.predicate);
      std::uint64_t combos = 1;
      for (const auto& cover : covers) {
        if (cover.empty() || combos > kMaxCombos) {
          combos = 0;
          break;
        }
        combos *= cover.size();
      }
      if (combos < kMinCombos || combos > kMaxCombos) continue;
      gadget.emplace(std::move(candidate));
      total = combos;
      std::printf("gadget: vars=%d seed=%u combinations=%" PRIu64 "\n\n",
                  vars, seed, total);
    }
    if (gadget.has_value()) break;
  }
  if (!gadget.has_value()) {
    // Fallback: the A9 seed-7 gadget, repeated to reach the 1 s floor.
    Rng rng(7);
    const sat::Cnf raw = sat::randomKCnf(3, 12, 3, rng);
    GPD_CHECK(!sat::solveDpll(raw).has_value());
    const auto simplified =
        reduction::simplifyForGadget(sat::toNonMonotone(raw).formula);
    GPD_CHECK(!simplified.unsatisfiable);
    gadget.emplace(reduction::buildSatGadget(simplified.formula));
    reps = 48;  // 48 × ~25 ms ≈ 1.2 s sequential
    std::printf("gadget: fallback seed=7, reps=%d\n\n", reps);
  }

  const VectorClocks vc(*gadget->computation);
  const auto runDetect = [&](par::Pool* pool) {
    detect::SingularCnfResult res;
    for (int r = 0; r < reps; ++r) {
      res = detect::detectSingularByChainCover(vc, *gadget->trace,
                                               gadget->predicate, nullptr,
                                               pool);
    }
    return res;
  };

  // Sequential reference — the acceptance criterion requires >= 1 s here.
  Stopwatch seqWatch;
  const detect::SingularCnfResult seq = runDetect(nullptr);
  const double seqMs = seqWatch.elapsedMillis();
  GPD_CHECK(!seq.found && seq.complete);  // UNSAT: exhausted, exact No

  Table table({"threads", "time_s", "speedup", "verdict", "combos"});
  const auto fmtS = [](double ms) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", ms / 1000.0);
    return std::string(buf);
  };
  table.row("seq", fmtS(seqMs), "1.00", "no (exact)",
            std::to_string(seq.combinationsTotal));

  for (const int threads : {1, 2, 4, 8}) {
    par::Pool pool(threads);
    Stopwatch sw;
    const detect::SingularCnfResult par = runDetect(&pool);
    const double ms = sw.elapsedMillis();
    // Bit-identical result contract: same verdict, same totals, same
    // completeness — a violated check here is a determinism bug, not noise.
    GPD_CHECK(par.found == seq.found);
    GPD_CHECK(par.complete == seq.complete);
    GPD_CHECK(par.combinationsTotal == seq.combinationsTotal);
    GPD_CHECK(par.combinationsTried == seq.combinationsTried);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2f", seqMs / ms);
    table.row(std::to_string(threads), fmtS(ms), speedup, "no (exact)",
              std::to_string(par.combinationsTotal));
  }
  table.print(std::cout);

  std::cout << "\nShape check: sequential time >= 1 s; speedup at 8 "
               "threads >= 3x given >= 4 physical cores (near 1x on a "
               "single-core container, bounded pool overhead).\n";
  return 0;
}
