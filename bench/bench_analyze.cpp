// A8 — static-analysis throughput and the planner as a cost oracle.
//
// Two tables:
//   (1) lint + plan wall time per trace size — the analysis passes must be
//       cheap enough to run before every detection;
//   (2) predicted vs actual CPDHB invocation counts for the Sec. 3.3
//       enumerations — the plan's predicted budget must equal the
//       combinationsTotal the detector reports (predicted/actual == 1).
#include <sstream>

#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("A8 / analyze: lint + plan",
                "Lint throughput over serialized traces, and planner "
                "predictions checked against the detectors' own counters.");

  Table lintTable({"procs", "events", "trace_bytes", "lint_ms", "plan_ms",
                   "diags"});
  Rng rng(811);
  for (const int procs : {4, 8, 16}) {
    for (const int events : {16, 64}) {
      RandomComputationOptions opt;
      opt.processes = procs;
      opt.eventsPerProcess = events;
      Rng local = rng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.4, local);
      std::ostringstream os;
      io::writeTrace(os, comp, trace);
      const std::string text = os.str();

      analyze::LintResult lint;
      const double lintMs = bench::timeMs([&] {
        std::istringstream is(text);
        lint = analyze::lintTrace(is, {});
      });
      GPD_CHECK(lint.ok());

      const VectorClocks clocks(comp);
      ConjunctivePredicate conj;
      for (ProcessId p = 0; p < procs; ++p) {
        conj.terms.push_back(varTrue(p, "b"));
      }
      analyze::AnalysisReport report;
      const double planMs = bench::timeMs([&] {
        report = analyze::planConjunctive(clocks, trace, conj,
                                          analyze::Modality::Possibly);
      });
      GPD_CHECK(report.chosen().algorithm == analyze::Algorithm::Cpdhb);

      lintTable.row(procs, events, text.size(), bench::fmtMs(lintMs),
                    bench::fmtMs(planMs), lint.diagnostics.size());
    }
  }
  lintTable.print(std::cout);

  std::cout << "\n";
  Table oracle({"groups", "k", "events", "ordered", "chosen",
                "predicted_combos", "actual_combos", "exact"});
  for (const int groups : {2, 3, 4}) {
    for (const auto discipline :
         {OrderingDiscipline::None, OrderingDiscipline::ReceiveOrdered}) {
      GroupedComputationOptions opt;
      opt.groups = groups;
      opt.groupSize = 2;
      opt.eventsPerProcess = 8;
      opt.discipline = discipline;
      Rng local = rng.fork();
      const Computation comp = randomGroupedComputation(opt, local);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.3, local);
      CnfPredicate pred;
      for (int g = 0; g < groups; ++g) {
        pred.clauses.push_back({{2 * g, "b", true}, {2 * g + 1, "b", true}});
      }
      const VectorClocks clocks(comp);

      const analyze::AnalysisReport report = analyze::planCnf(
          clocks, trace, pred, analyze::Modality::Possibly);
      std::uint64_t predicted = 0;
      for (const analyze::PlanStep& s : report.steps) {
        if (s.algorithm == analyze::Algorithm::SingularChainCover) {
          predicted = s.predictedCpdhbInvocations.value_or(0);
        }
      }
      const auto actual =
          detect::detectSingularByChainCover(clocks, trace, pred);
      GPD_CHECK(predicted == actual.combinationsTotal);

      oracle.row(groups, 2, opt.eventsPerProcess,
                 discipline == OrderingDiscipline::ReceiveOrdered ? "recv"
                                                                  : "none",
                 toString(report.chosen().algorithm), predicted,
                 actual.combinationsTotal,
                 predicted == actual.combinationsTotal ? "yes" : "NO");
    }
  }
  oracle.print(std::cout);
  std::cout << "\nShape check: lint/plan stay in the low milliseconds; the "
               "exact column is all-yes (the plan is an oracle, not an "
               "estimate), and ordered computations route to "
               "cpdsc-special-case.\n";
  return 0;
}
