// E7 — Theorem 2: possibly(Σxᵢ = K) with arbitrary Δ is NP-complete.
//
// Subset-sum instances compiled into the paper's gadget: detection must
// search the 2ⁿ-cut lattice, while the pseudo-polynomial DP solver cruises.
// Expected shape: detection time doubles per element on "no" instances; the
// DP solver grows with n·K only. Verdicts always agree.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("E7 / Thm 2 — exact sum with arbitrary Δ (subset sum)",
                "Detection (lattice over the 2^n gadget) vs subset-sum DP; "
                "targets chosen unreachable to force full search.");

  Rng rng(4096);
  Table table({"elements", "target", "answer", "detect_ms", "dp_ms",
               "lattice_cuts", "agree"});
  for (const int n : {8, 10, 12, 14, 16}) {
    std::vector<std::int64_t> sizes(n);
    for (auto& s : sizes) s = 2 * rng.uniform(1, 30);  // all even
    // Odd target: unreachable, forcing both solvers to exhaust.
    const std::int64_t target = 2 * rng.uniform(10, 60) + 1;

    std::optional<std::vector<int>> viaDetection;
    const double detectMs = bench::timeMs([&] {
      viaDetection = reduction::solveSubsetSumViaDetection(sizes, target);
    });
    std::optional<std::vector<int>> viaDp;
    const double dpMs =
        bench::timeMs([&] { viaDp = sat::solveSubsetSum(sizes, target); });

    table.row(n, target, viaDetection ? "yes" : "no", bench::fmtMs(detectMs),
              bench::fmtMs(dpMs), (1ULL << n),
              viaDetection.has_value() == viaDp.has_value() ? "yes" : "NO");
  }
  table.print(std::cout);

  std::cout << "\nAnd on satisfiable instances (early exit possible):\n\n";
  Table sat({"elements", "target", "answer", "detect_ms", "dp_ms", "agree"});
  for (const int n : {8, 10, 12, 14}) {
    std::vector<std::int64_t> sizes(n);
    for (auto& s : sizes) s = rng.uniform(1, 30);
    std::int64_t target = 0;  // sum of a random half: reachable
    for (int i = 0; i < n; i += 2) target += sizes[i];

    std::optional<std::vector<int>> viaDetection;
    const double detectMs = bench::timeMs([&] {
      viaDetection = reduction::solveSubsetSumViaDetection(sizes, target);
    });
    std::optional<std::vector<int>> viaDp;
    const double dpMs =
        bench::timeMs([&] { viaDp = sat::solveSubsetSum(sizes, target); });
    sat.row(n, target, viaDetection ? "yes" : "no", bench::fmtMs(detectMs),
            bench::fmtMs(dpMs),
            viaDetection.has_value() == viaDp.has_value() ? "yes" : "NO");
  }
  sat.print(std::cout);
  std::cout << "\nShape check: detect_ms roughly doubles per extra element "
               "on 'no' instances (2^n lattice) while dp_ms stays "
               "pseudo-polynomial.\n";
  return 0;
}
