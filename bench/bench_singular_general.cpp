// E6 — Sec. 3.3: the general singular k-CNF algorithms versus naive lattice
// enumeration, and process-enumeration (k^m) versus chain covers (Π cⱼ).
//
// Expected shape: both Sec. 3.3 algorithms beat the lattice by orders of
// magnitude (their exponential is in the number of *clauses*, the lattice's
// in total events); the chain-cover variant never tries more combinations
// than process enumeration and wins when messages chain true events.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("E6 / Sec. 3.3 general singular k-CNF",
                "Unsatisfied predicates (worst case: full enumeration). "
                "combos = CPDHB invocations; lattice pays cuts instead.");

  Table table({"groups", "k", "events", "verdict", "lattice_cuts",
               "lattice_ms", "procEnum_combos", "procEnum_ms", "chain_combos",
               "chain_ms", "sat_ms", "speedup_vs_lattice"});
  Rng rng(2718);

  for (const int groups : {2, 3, 4, 5}) {
    for (const int events : {6, 10}) {
      GroupedComputationOptions opt;
      opt.groups = groups;
      opt.groupSize = 2;
      opt.eventsPerProcess = events;
      opt.messageProbability = 0.9;  // dense causality → many inconsistencies
      Rng local = rng.fork();
      const Computation comp = randomGroupedComputation(opt, local);
      VariableTrace trace(comp);
      // Sparse-but-present truth: every process contributes candidate events
      // so the enumerations run, but dense causality keeps witnesses rare.
      for (ProcessId p = 0; p < comp.processCount(); ++p) {
        std::vector<bool> values(comp.eventCount(p));
        for (std::size_t i = 0; i < values.size(); ++i) {
          values[i] = local.chance(0.12);
        }
        values[1 + local.index(values.size() - 1)] = true;
        trace.defineBool(p, "b", values);
      }
      CnfPredicate pred;
      for (int g = 0; g < groups; ++g) {
        pred.clauses.push_back(
            {{2 * g, "b", true}, {2 * g + 1, "b", true}});
      }
      const VectorClocks clocks(comp);

      // The lattice baseline is the whole point of the comparison, but its
      // state count is (events+1)^(2·groups); skip it once the grid bound
      // leaves the few-million range.
      double grid = 1;
      for (ProcessId p = 0; p < comp.processCount(); ++p) {
        grid *= comp.eventCount(p);
      }
      const bool runLattice = grid <= 1.2e7;
      bool latticeFound = false;
      std::uint64_t cuts = 0;
      double latticeMs = 0;
      if (runLattice) {
        latticeMs = bench::timeMs([&] {
          cuts = 0;
          latticeFound = false;
          lattice::forEachConsistentCut(clocks, [&](const Cut& cut) {
            ++cuts;
            if (pred.holdsAtCut(trace, cut)) {
              latticeFound = true;
              return false;
            }
            return true;
          });
        });
      }

      detect::SingularCnfResult byProc;
      const double procMs = bench::timeMs([&] {
        byProc = detect::detectSingularByProcessEnumeration(clocks, trace, pred);
      });
      detect::SingularCnfResult byChain;
      const double chainMs = bench::timeMs([&] {
        byChain = detect::detectSingularByChainCover(clocks, trace, pred);
      });
      detect::SatEncodingResult bySat;
      const double satMs = bench::timeMs([&] {
        bySat = detect::detectSingularViaSat(clocks, trace, pred);
      });
      GPD_CHECK(byProc.found == byChain.found);
      GPD_CHECK(bySat.cut.has_value() == byChain.found);
      if (runLattice) GPD_CHECK(byChain.found == latticeFound);

      char speedup[16];
      std::snprintf(speedup, sizeof(speedup), "%.0fx",
                    latticeMs / std::max(1e-6, chainMs));
      table.row(groups, 2, events, byChain.found ? "found" : "absent",
                runLattice ? std::to_string(cuts) : std::string(">1e7"),
                runLattice ? bench::fmtMs(latticeMs) : std::string("-"),
                byProc.combinationsTried, bench::fmtMs(procMs),
                byChain.combinationsTried, bench::fmtMs(chainMs),
                bench::fmtMs(satMs),
                runLattice ? std::string(speedup) : std::string("inf"));
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: Sec. 3.3 combos stay ≤ k^m = 2^groups while "
               "lattice cuts grow with (events+1)^(2·groups); chain combos "
               "≤ process-enumeration combos.\n";
  return 0;
}
