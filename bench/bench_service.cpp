// A12 — gpdd service engine throughput and recovery cost (`bench_service`).
//
// Three questions a service operator asks before trusting gpdd with a
// fleet of monitored computations:
//   1. How fast is the framing layer? (encode + decode, MB/s)
//   2. What does one pump cost at multi-tenant scale, and does handing the
//      shards to a par::Pool pay off? (sessions/s, bit-identical check)
//   3. What does crash recovery cost — manifest write, restore, and the
//      re-serialization equality that the recovery property test pins?
//
// Everything here is the in-process Engine (no sockets, no forks): the
// numbers isolate engine cost from transport cost, and the chaos soak
// (tools/gpdd_loadgen) covers the full-stack path.
#include <cinttypes>
#include <sstream>

#include "bench_util.h"

namespace {

using namespace gpd;

// One tenant-sharded wave of clean sessions: OPEN, E notifications per
// process (own-component clocks, no gaps), END, CLOSE.
std::vector<std::string> makeWave(int sessions, int processes, int events) {
  std::vector<std::string> cmds;
  cmds.reserve(static_cast<std::size_t>(sessions) *
               (static_cast<std::size_t>(processes) * (events + 1) + 2));
  for (int i = 0; i < sessions; ++i) {
    std::string ts = "t";
    ts += std::to_string(i % 16);
    ts += " s";
    ts += std::to_string(i);
    cmds.push_back("OPEN " + ts + " " + std::to_string(processes));
    for (int p = 0; p < processes; ++p) {
      for (int e = 0; e < events; ++e) {
        std::ostringstream os;
        os << "EV " << ts << ' ' << p << ' ' << e;
        for (int q = 0; q < processes; ++q) os << ' ' << (q == p ? e + 1 : 0);
        cmds.push_back(os.str());
      }
      cmds.push_back("END " + ts + " " + std::to_string(p) + " " +
                     std::to_string(events));
    }
    cmds.push_back("CLOSE " + ts);
  }
  return cmds;
}

std::string runWave(const std::vector<std::string>& cmds,
                    const service::EngineOptions& opt, par::Pool* pool) {
  service::Engine eng(opt);
  for (const std::string& c : cmds) eng.submit(c);
  std::vector<service::Response> out;
  eng.pump(out, pool);
  std::string transcript;
  for (const service::Response& r : out) {
    transcript += r.payload;
    transcript += '\n';
  }
  return transcript;
}

}  // namespace

int main() {
  using namespace gpd;
  bench::banner(
      "A12 / gpdd service engine (gpd::service)",
      "Framing throughput, multi-tenant pump cost sequential vs pooled "
      "(responses asserted bit-identical), and manifest write/restore "
      "latency for crash recovery.");

  // --- 1. Framing layer -------------------------------------------------
  {
    const int kFrames = 200000;
    std::string wire;
    for (int i = 0; i < kFrames; ++i) {
      wire += service::encodeFrame("EV t7 s42 2 " + std::to_string(i) +
                                   " 17 4 93");
    }
    const double encMs = bench::timeMs([&] {
      std::string w;
      w.reserve(wire.size());
      for (int i = 0; i < kFrames; ++i) {
        w += service::encodeFrame("EV t7 s42 2 " + std::to_string(i) +
                                  " 17 4 93");
      }
    });
    std::uint64_t decoded = 0;
    const double decMs = bench::timeMs([&] {
      service::FrameDecoder dec;
      std::string_view rest(wire);
      while (!rest.empty()) {  // 64 KiB reads, like the server's read loop
        const std::size_t n = std::min<std::size_t>(rest.size(), 64 * 1024);
        dec.feed(rest.substr(0, n));
        rest.remove_prefix(n);
        while (dec.pop().has_value()) ++decoded;
      }
    });
    const double mb = static_cast<double>(wire.size()) / (1024.0 * 1024.0);
    std::printf("frame codec: %d frames, %.1f MiB wire\n", kFrames, mb);
    std::printf("  encode  %8s ms   %7.0f MiB/s\n", bench::fmtMs(encMs).c_str(),
                mb / (encMs / 1000.0));
    std::printf("  decode  %8s ms   %7.0f MiB/s\n\n",
                bench::fmtMs(decMs).c_str(), mb / (decMs / 1000.0));
  }

  // --- 2. Multi-tenant pump, sequential vs pooled shards ----------------
  {
    const int kSessions = 2048, kProcesses = 3, kEvents = 12;
    const auto cmds = makeWave(kSessions, kProcesses, kEvents);
    service::EngineOptions opt;
    opt.shards = 16;
    const std::string seqTranscript = runWave(cmds, opt, nullptr);
    const double seqMs = bench::timeMs([&] { runWave(cmds, opt, nullptr); });
    std::printf("pump: %d sessions x %d procs x %d events (%zu commands)\n",
                kSessions, kProcesses, kEvents, cmds.size());
    std::printf("  threads  1 (inline)  %8s ms  %7.0f sessions/s\n",
                bench::fmtMs(seqMs).c_str(), kSessions / (seqMs / 1000.0));
    for (const int threads : {2, 4, 8}) {
      par::Pool pool(threads);
      const std::string t = runWave(cmds, opt, &pool);
      GPD_CHECK_MSG(t == seqTranscript,
                    "pooled transcript diverged at " << threads << " threads");
      const double ms = bench::timeMs([&] { runWave(cmds, opt, &pool); });
      std::printf(
          "  threads %2d           %8s ms  %7.0f sessions/s  (%.2fx, "
          "bit-identical)\n",
          threads, bench::fmtMs(ms).c_str(), kSessions / (ms / 1000.0),
          seqMs / ms);
    }
    std::printf("\n");
  }

  // --- 3. Manifest write / restore (the crash-recovery path) ------------
  {
    std::printf("manifest (open sessions with buffered state):\n");
    for (const int kSessions : {256, 1024, 4096}) {
      service::Engine eng{service::EngineOptions{}};
      for (int i = 0; i < kSessions; ++i) {
        std::string ts = "t";
        ts += std::to_string(i % 16);
        ts += " s";
        ts += std::to_string(i);
        eng.submit("OPEN " + ts + " 3");
        // One parked notification (gap at seq 0) keeps the reorder buffer
        // non-empty, so the manifest carries real per-session state.
        eng.submit("EV " + ts + " 0 1 2 0 0");
      }
      std::vector<service::Response> out;
      eng.pump(out);
      std::ostringstream first;
      eng.writeManifest(first);
      const std::string manifest = first.str();
      const double writeMs = bench::timeMs([&] {
        std::ostringstream os;
        eng.writeManifest(os);
      });
      const double restoreMs = bench::timeMs([&] {
        std::istringstream is(manifest);
        auto restored = service::Engine::restoreManifest(is, {});
        GPD_CHECK(restored->openSessions() ==
                  static_cast<std::size_t>(kSessions));
      });
      std::istringstream is(manifest);
      const auto restored = service::Engine::restoreManifest(is, {});
      std::ostringstream second;
      restored->writeManifest(second);
      GPD_CHECK_MSG(second.str() == manifest,
                    "manifest re-serialization diverged");
      std::printf(
          "  %5d sessions  %7.1f KiB  write %8s ms  restore %8s ms  "
          "(round-trip byte-identical)\n",
          kSessions, static_cast<double>(manifest.size()) / 1024.0,
          bench::fmtMs(writeMs).c_str(), bench::fmtMs(restoreMs).c_str());
    }
  }
  return 0;
}
