// A1 — ablation: chain covers versus per-process queues (Sec. 3.3).
//
// The chain-cover enumeration tries Π cⱼ combinations against k^m for
// process enumeration. Messages that causally chain a group's true events
// shrink cⱼ below k, so the advantage should grow with message density.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("A1 / chain-cover ablation",
                "Average minimum chain-cover size per group (k = 3) and the "
                "resulting enumeration sizes, as message density varies.");

  Rng rng(112358);
  Table table({"msgProb", "avg_cover_size", "procEnum_combos", "chain_combos",
               "shrinkage"});
  for (const double prob : {0.0, 0.2, 0.4, 0.6, 0.9}) {
    double coverSum = 0;
    double coverCount = 0;
    double procCombos = 0;
    double chainCombos = 0;
    const int trials = 20;
    for (int trial = 0; trial < trials; ++trial) {
      GroupedComputationOptions opt;
      opt.groups = 3;
      opt.groupSize = 3;
      opt.eventsPerProcess = 10;
      opt.messageProbability = prob;
      Rng local = rng.fork();
      const Computation comp = randomGroupedComputation(opt, local);
      VariableTrace trace(comp);
      // One true event per process: the group's cover size is the maximum
      // antichain among three events, which message-induced orderings merge.
      for (ProcessId p = 0; p < comp.processCount(); ++p) {
        std::vector<bool> values(comp.eventCount(p), false);
        values[1 + local.index(values.size() - 1)] = true;
        trace.defineBool(p, "b", values);
      }
      CnfPredicate pred;
      for (int g = 0; g < 3; ++g) {
        pred.clauses.push_back({{3 * g, "b", true},
                                {3 * g + 1, "b", true},
                                {3 * g + 2, "b", true}});
      }
      const VectorClocks clocks(comp);
      const auto covers = detect::clauseChainCovers(clocks, trace, pred);
      double proc = 1;
      double chain = 1;
      for (const auto& cover : covers) {
        coverSum += static_cast<double>(cover.size());
        coverCount += 1;
        chain *= static_cast<double>(cover.size());
        proc *= 3;  // one queue per process of the group
      }
      procCombos += proc;
      chainCombos += chain;
    }
    char avg[16];
    std::snprintf(avg, sizeof(avg), "%.2f", coverSum / coverCount);
    char shrink[16];
    std::snprintf(shrink, sizeof(shrink), "%.2fx", procCombos / chainCombos);
    table.row(prob, avg, procCombos / trials, chainCombos / trials, shrink);
  }
  table.print(std::cout);
  std::cout << "\nShape check: the average cover size falls from k = 3 "
               "toward 1 as message density rises, shrinking the "
               "enumeration multiplicatively per group.\n";
  return 0;
}
