// E8 + E10 — Theorems 4–7: exact-sum detection with |Δ| ≤ 1.
//
// E8: possibly(Σxᵢ = K) via the Theorem 7 reduction (two min-cut solves +
// an intermediate-value walk) against exhaustive lattice search. Expected
// shape: polynomial vs exponential, with identical verdicts.
// E10: definitely(Σxᵢ = K) via Theorem 7(2) against the direct
// lattice-definitely of the equality itself — verdicts must coincide.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("E8 / Thms 4-7 — exact sum, |Δ| ≤ 1",
                "possibly(Σx = K) on ±1 counters; theorem-7 vs lattice.");

  Rng rng(1618);
  Table e8({"procs", "events/proc", "K", "thm7_ms", "lattice_ms", "speedup",
            "verdicts_agree"});
  for (const int procs : {4, 6}) {
    for (const int events : {8, 16, 32, 64}) {
      RandomComputationOptions opt;
      opt.processes = procs;
      opt.eventsPerProcess = events;
      opt.messageProbability = 0.4;
      Rng local = rng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      defineRandomCounters(trace, "x", 0, 1, local);
      const VectorClocks clocks(comp);
      std::vector<SumTerm> terms;
      for (ProcessId p = 0; p < procs; ++p) terms.push_back({p, "x"});
      SumPredicate pred{terms, Relop::Equal, 2 + events / 8};

      std::optional<Cut> viaThm;
      const double thmMs = bench::timeMs(
          [&] { viaThm = detect::possiblySum(clocks, trace, pred); });

      std::string latticeMs = "-";
      std::string speedup = "-";
      std::string agree = "(baseline skipped)";
      if (procs <= 4 && events <= 16) {
        std::optional<Cut> viaLattice;
        const double lm = bench::timeMs([&] {
          viaLattice = detect::detectExactSumExhaustive(clocks, trace, pred);
        });
        latticeMs = bench::fmtMs(lm);
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.0fx", lm / std::max(1e-6, thmMs));
        speedup = buf;
        agree = viaThm.has_value() == viaLattice.has_value() ? "yes" : "NO";
      }
      e8.row(procs, events, pred.k, bench::fmtMs(thmMs), latticeMs, speedup,
             agree);
    }
  }
  e8.print(std::cout);

  std::cout << '\n';
  bench::banner("E10 / Thm 7(2) — definitely(Σx = K)",
                "Theorem 7(2) reduction vs direct lattice-definitely.");
  Table e10({"procs", "events/proc", "K", "thm7(2)_ms", "direct_ms",
             "verdicts_agree"});
  for (const int events : {4, 6, 8}) {
    RandomComputationOptions opt;
    opt.processes = 3;
    opt.eventsPerProcess = events;
    opt.messageProbability = 0.4;
    Rng local = rng.fork();
    const Computation comp = randomComputation(opt, local);
    VariableTrace trace(comp);
    defineRandomCounters(trace, "x", 0, 1, local);
    const VectorClocks clocks(comp);
    std::vector<SumTerm> terms;
    for (ProcessId p = 0; p < 3; ++p) terms.push_back({p, "x"});
    SumPredicate pred{terms, Relop::Equal, 1};

    bool viaThm = false;
    const double thmMs = bench::timeMs(
        [&] { viaThm = detect::definitelySum(clocks, trace, pred); });
    bool direct = false;
    const double directMs = bench::timeMs([&] {
      direct = lattice::definitelyExhaustive(clocks, [&](const Cut& c) {
        return pred.sumAtCut(trace, c) == pred.k;
      });
    });
    e10.row(3, events, pred.k, bench::fmtMs(thmMs), bench::fmtMs(directMs),
            viaThm == direct ? "yes" : "NO");
  }
  e10.print(std::cout);
  std::cout << "\nShape check: thm7_ms stays flat while lattice_ms explodes "
               "with events/proc; all verdict columns must read yes.\n";
  return 0;
}
