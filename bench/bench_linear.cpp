// A6 — linear predicates: the greedy forbidden-process detector.
//
// The introduction's remaining polynomial class. Expected shape: oracle
// calls bounded by |E|, runtime linear-ish in the trace, verdicts identical
// to CPDHB (conjunctive instance) and to exhaustive search (termination
// instance).
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("A6 / linear predicates",
                "Greedy least-cut detector: conjunctive instance vs CPDHB, "
                "termination instance vs lattice.");

  Table table({"instance", "procs", "events/proc", "oracle_calls", "linear_ms",
               "reference_ms", "agree"});
  Rng rng(777);

  for (const int events : {16, 32, 64, 128}) {
    // Conjunctive instance, reference = CPDHB.
    {
      RandomComputationOptions opt;
      opt.processes = 6;
      opt.eventsPerProcess = events;
      opt.messageProbability = 0.4;
      Rng local = rng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.15, local);
      ConjunctivePredicate pred;
      for (ProcessId p = 0; p < 6; ++p) pred.terms.push_back(varTrue(p, "b"));
      const VectorClocks clocks(comp);
      detect::LinearResult linear;
      const double linearMs = bench::timeMs([&] {
        linear = detect::detectLinear(clocks, detect::conjunctiveOracle(trace, pred));
      });
      detect::ConjunctiveResult cpdhb;
      const double refMs = bench::timeMs(
          [&] { cpdhb = detect::detectConjunctive(clocks, trace, pred); });
      table.row("conjunctive", 6, events, linear.oracleCalls,
                bench::fmtMs(linearMs), bench::fmtMs(refMs),
                linear.cut.has_value() == cpdhb.found ? "yes" : "NO");
    }
    // Termination instance, reference = lattice (small sizes only).
    {
      RandomComputationOptions opt;
      opt.processes = 4;
      opt.eventsPerProcess = events;
      opt.messageProbability = 0.5;
      Rng local = rng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      for (ProcessId p = 0; p < 4; ++p) {
        std::vector<std::int64_t> act(comp.eventCount(p), 1);
        for (int i = comp.eventCount(p) / 2; i < comp.eventCount(p); ++i) {
          act[i] = 0;
        }
        trace.define(p, "active", std::move(act));
      }
      const VectorClocks clocks(comp);
      const auto oracle = detect::terminationOracle(trace, "active");
      detect::LinearResult linear;
      const double linearMs =
          bench::timeMs([&] { linear = detect::detectLinear(clocks, oracle); });
      std::string refMs = "-";
      std::string agree = "(baseline skipped)";
      if (events <= 16) {
        bool expected = false;
        refMs = bench::fmtMs(bench::timeMs([&] {
          expected = lattice::possiblyExhaustive(clocks, [&](const Cut& c) {
            return !oracle(c).has_value();
          });
        }));
        agree = expected == linear.cut.has_value() ? "yes" : "NO";
      }
      table.row("termination", 4, events, linear.oracleCalls,
                bench::fmtMs(linearMs), refMs, agree);
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: oracle calls stay ≤ |E|+1; runtime linear-ish "
               "in the trace length for the conjunctive instance.\n";
  return 0;
}
