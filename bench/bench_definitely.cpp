// A5 — definitely(conjunctive): the Garg–Waldecker interval algorithm
// versus exhaustive lattice search.
//
// The interval algorithm decides the strong modality from pairwise causal
// tests on maximal true intervals — polynomial — while the lattice must
// explore every ¬φ-reachable cut. Verdicts must agree everywhere the
// baseline runs.
#include "bench_util.h"

int main() {
  using namespace gpd;
  bench::banner("A5 / definitely(conjunctive)",
                "Interval algorithm vs exhaustive lattice definitely; "
                "conjunction over all processes, random boolean traces.");

  Table table({"procs", "events/proc", "verdict", "intervals_ms",
               "lattice_ms", "speedup", "agree"});
  Rng rng(5151);
  for (const int procs : {3, 4, 6}) {
    for (const int events : {8, 16, 32, 64}) {
      RandomComputationOptions opt;
      opt.processes = procs;
      opt.eventsPerProcess = events;
      opt.messageProbability = 0.5;
      Rng local = rng.fork();
      const Computation comp = randomComputation(opt, local);
      VariableTrace trace(comp);
      defineRandomBools(trace, "b", 0.7, local);  // dense: definitely can hold
      ConjunctivePredicate pred;
      for (ProcessId p = 0; p < procs; ++p) pred.terms.push_back(varTrue(p, "b"));
      const VectorClocks clocks(comp);

      detect::DefinitelyResult res;
      const double intervalMs = bench::timeMs([&] {
        res = detect::definitelyConjunctive(clocks, trace, pred);
      });

      std::string latticeMs = "-";
      std::string speedup = "-";
      std::string agree = "(baseline skipped)";
      if (procs <= 4 && events <= 16) {
        bool direct = false;
        const double lm = bench::timeMs([&] {
          direct = lattice::definitelyExhaustive(clocks, [&](const Cut& cut) {
            return pred.holdsAtCut(trace, cut);
          });
        });
        latticeMs = bench::fmtMs(lm);
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.0fx",
                      lm / std::max(1e-6, intervalMs));
        speedup = buf;
        agree = direct == res.holds ? "yes" : "NO";
      }
      table.row(procs, events, res.holds ? "holds" : "fails",
                bench::fmtMs(intervalMs), latticeMs, speedup, agree);
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: interval_ms stays microseconds across the "
               "sweep; the lattice baseline is dropped beyond 4x16.\n";
  return 0;
}
