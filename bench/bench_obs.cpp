// A10 — observability overhead: the gpd::obs default-on contract.
//
// Instrumentation is only free to leave on if a disarmed span costs one
// relaxed atomic load and a counter bump one relaxed add. This harness
// measures three layers:
//
//   1. primitive costs (ns/op): counter add, histogram observe, a span
//      open/close while disarmed, and while armed;
//   2. the A9 gadget kernels (chain-cover exhaustion of a Theorem-1
//      gadget, lattice BFS) in the shipping state — obs compiled in but
//      disarmed — printed as machine-readable `OBSBENCH` lines keyed by
//      the build mode, so CI can diff a default-on build against a
//      -DGPD_OBS_DISABLED=ON build of the same tree (target: < 2%);
//   3. the armed tax: the same kernels with the tracer collecting, which
//      bounds what `--trace-out` costs when actually used.
//
// Rounds are interleaved and the minimum is kept (robust to scheduler
// bursts, like bench_budget).
#include "bench_util.h"

namespace {

#ifndef GPD_OBS_DISABLED
constexpr const char* kMode = "default-on";
#else
constexpr const char* kMode = "disabled";
#endif

double nsPerOp(const std::function<void()>& fn, std::uint64_t ops) {
  double best = 1e300;
  for (int round = 0; round < 5; ++round) {
    gpd::Stopwatch sw;
    fn();
    best = std::min(best, sw.elapsedMillis());
  }
  return best * 1e6 / static_cast<double>(ops);
}

}  // namespace

int main() {
  using namespace gpd;
  bench::banner(
      "A10 / observability overhead",
      "gpd::obs primitives and the A9 gadget kernels with obs compiled "
      "in. Compare OBSBENCH lines across a default-on and a "
      "-DGPD_OBS_DISABLED=ON build: target < 2% on every kernel row.");

  obs::tracer().stop();
  obs::tracer().clear();
  obs::registry().reset();

  // --- 1. Primitive costs.
  {
    Table table({"primitive", "ns_per_op"});
    constexpr std::uint64_t kOps = 1 << 20;
    const auto fmt = [](double ns) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", ns);
      return std::string(buf);
    };
    table.row("counter-add", fmt(nsPerOp(
                                 [&] {
                                   for (std::uint64_t i = 0; i < kOps; ++i) {
                                     GPD_OBS_COUNTER_ADD("cpdhb_comparisons",
                                                         1);
                                   }
                                 },
                                 kOps)));
    table.row("histogram-observe",
              fmt(nsPerOp(
                  [&] {
                    for (std::uint64_t i = 0; i < kOps; ++i) {
                      GPD_OBS_HISTOGRAM("enumeration_combinations", i);
                    }
                  },
                  kOps)));
    table.row("span-disarmed", fmt(nsPerOp(
                                   [&] {
                                     for (std::uint64_t i = 0; i < kOps;
                                          ++i) {
                                       GPD_TRACE_SPAN("bench.disarmed");
                                     }
                                   },
                                   kOps)));
#ifndef GPD_OBS_DISABLED
    obs::tracer().start();
    constexpr std::uint64_t kArmedOps = 1 << 18;
    table.row("span-armed", fmt(nsPerOp(
                                [&] {
                                  for (std::uint64_t i = 0; i < kArmedOps;
                                       ++i) {
                                    GPD_TRACE_SPAN("bench.armed");
                                  }
                                },
                                kArmedOps)));
    obs::tracer().stop();
    obs::tracer().clear();
#endif
    table.print(std::cout);
    std::cout << '\n';
  }
  obs::registry().reset();

  // --- 2 + 3. Gadget kernels: disarmed (shipping state) and armed.
  const auto kernelRow = [&](const char* name,
                             const std::function<void()>& kernel) {
    kernel();  // warm-up, untimed
    double disarmed = 1e300;
    [[maybe_unused]] double armed = 1e300;  // only read when obs is compiled in
    for (int round = 0; round < 7; ++round) {
      {
        obs::tracer().stop();
        Stopwatch sw;
        kernel();
        disarmed = std::min(disarmed, sw.elapsedMillis());
      }
#ifndef GPD_OBS_DISABLED
      {
        obs::tracer().clear();
        obs::tracer().start();
        Stopwatch sw;
        kernel();
        armed = std::min(armed, sw.elapsedMillis());
        obs::tracer().stop();
      }
#endif
    }
    obs::tracer().clear();
    // The cross-build comparison key: same kernel label in both builds.
    std::printf("OBSBENCH mode=%s kernel=%s ms=%.3f\n", kMode, name,
                disarmed);
#ifndef GPD_OBS_DISABLED
    std::printf("OBSBENCH mode=armed kernel=%s ms=%.3f armed_tax=%+.2f%%\n",
                name, armed,
                disarmed > 0 ? (armed - disarmed) / disarmed * 100.0 : 0.0);
#endif
  };

  Rng rng(1010);

  // Chain-cover exhaustion of a Theorem-1 gadget (UNSAT formula: every
  // selection tried, every combination bumps the obs counters).
  {
    Rng gadgetRng(7);
    const sat::Cnf raw = sat::randomKCnf(3, 12, 3, gadgetRng);
    GPD_CHECK(!sat::solveDpll(raw).has_value());
    const auto simplified =
        reduction::simplifyForGadget(sat::toNonMonotone(raw).formula);
    GPD_CHECK(!simplified.unsatisfiable);
    const auto gadget = reduction::buildSatGadget(simplified.formula);
    const VectorClocks vc(*gadget.computation);
    kernelRow("chain-cover", [&] {
      const auto res = detect::detectSingularByChainCover(
          vc, *gadget.trace, gadget.predicate, nullptr);
      GPD_CHECK(!res.found && res.complete);
    });

    // The same exhaustion through the --threads 1 pool path: the A10 gate
    // bounds what the pool dispatch (chunk claiming, worker spans, the
    // atomic short-circuit watermark) adds when parallelism is requested
    // but one worker does all the work.
    par::Pool pool(1);
    kernelRow("chain-cover-pool1", [&] {
      const auto res = detect::detectSingularByChainCover(
          vc, *gadget.trace, gadget.predicate, nullptr, &pool);
      GPD_CHECK(!res.found && res.complete);
    });
  }

  // Lattice BFS over a dense random computation (one span per
  // exploration, counters amortized to one bump per run).
  {
    RandomComputationOptions opt;
    opt.processes = 5;
    opt.eventsPerProcess = 10;
    opt.messageProbability = 0.2;
    const Computation c = randomComputation(opt, rng);
    const VectorClocks vc(c);
    const auto visit = [](const Cut&) { return true; };
    kernelRow("lattice-bfs", [&] {
      for (int i = 0; i < 8; ++i) {
        lattice::exploreConsistentCuts(vc, visit, nullptr);
      }
    });
  }

  // Detector facade (plan + CPDHB), the hot dispatch path.
  {
    RandomComputationOptions opt;
    opt.processes = 8;
    opt.eventsPerProcess = 256;
    opt.messageProbability = 0.3;
    const Computation c = randomComputation(opt, rng);
    VariableTrace trace(c);
    defineRandomBools(trace, "x", 0.1, rng);
    ConjunctivePredicate pred;
    for (ProcessId p = 0; p < c.processCount(); ++p) {
      pred.terms.push_back(varTrue(p, "x"));
    }
    detect::Detector det(trace);
    kernelRow("detector-cpdhb", [&] {
      for (int i = 0; i < 64; ++i) det.possibly(pred);
    });
  }

  obs::registry().reset();
  std::cout << "\nShape check: disarmed kernel rows within 2% of the "
               "GPD_OBS_DISABLED build; the armed tax stays small because "
               "spans sit at kernel granularity, never per-cut.\n";
  return 0;
}
